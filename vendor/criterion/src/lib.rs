//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion::benchmark_group`], group configuration
//! (`sample_size` / `measurement_time` / `throughput`),
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then run for
//! `sample_size` samples within roughly `measurement_time`; the mean,
//! minimum and maximum per-iteration wall-clock times are printed, plus
//! element throughput when configured. There is no statistical analysis,
//! HTML report or baseline comparison.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for reporting throughput alongside per-iteration times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target wall-clock budget for the whole sampling phase.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Reports throughput (per iteration) alongside timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: find how many iterations fit one sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let warm = b.elapsed.max(Duration::from_nanos(1));
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / warm.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut times_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        let mean = times_ns.iter().sum::<f64>() / times_ns.len() as f64;
        let min = times_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times_ns.iter().cloned().fold(0.0f64, f64::max);
        print!(
            "{}/{:<24} time: [{} {} {}]",
            self.name,
            id,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = count as f64 / (mean * 1e-9);
            print!("  thrpt: {} {unit}/s", fmt_count(per_sec));
        }
        println!();
        self
    }

    /// Ends the group (upstream writes reports here; this prints nothing).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.4} ns")
    }
}

fn fmt_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.3}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.3}K", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Top-level benchmark harness state.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// True when the binary was invoked by `cargo test` rather than
/// `cargo bench` — benches then run a single no-op pass so the test
/// harness stays fast.
pub fn invoked_as_test() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups (skipped under `--test`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if $crate::invoked_as_test() {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).map(black_box).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn format_helpers() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_count(5e6).ends_with('M'));
    }
}
