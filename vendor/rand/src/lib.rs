//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! implements exactly the API subset the workspace uses: [`SeedableRng`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`rngs::SmallRng`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic and
//! statistically solid for simulation purposes, though the streams differ
//! from upstream `rand`'s `SmallRng`.

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire-style widening multiply avoids modulo bias enough
                // for simulation use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full-width range
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl SmallRng {
        /// Returns the raw xoshiro256++ state word vector.
        ///
        /// Together with [`SmallRng::from_state`] this lets simulation
        /// checkpoints capture and later resume a generator mid-stream,
        /// which `seed_from_u64` cannot do (it always restarts the
        /// stream from the beginning).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state vector previously obtained
        /// via [`SmallRng::state`]. The resumed stream continues exactly
        /// where the captured one left off.
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is the one fixed point of
        /// xoshiro256++ (the generator would emit zeros forever). Seeding
        /// through SplitMix64 never produces it.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s.iter().any(|&w| w != 0),
                "all-zero xoshiro256++ state is invalid"
            );
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_and_stay_inside() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.gen_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
