//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! implements the subset of proptest's API the workspace uses: the
//! [`Strategy`] trait (with `prop_map` and `boxed`), range / tuple /
//! [`Just`] / boolean strategies, `prop::collection::{vec, hash_set}`, the
//! [`proptest!`] macro with `#![proptest_config]`, `prop_oneof!` and the
//! `prop_assert*` macros.
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` random
//! cases drawn from a deterministic per-test RNG (seeded from the test
//! name, overridable via `PROPTEST_SEED`; case count overridable via
//! `PROPTEST_CASES`). There is **no shrinking** — a failing case panics
//! with the values visible in the assertion message.
//!
//! Like upstream, failing cases are **persisted**: the RNG state that
//! produced the failure is appended to
//! `<crate>/proptest-regressions/<test>.txt`, and every persisted state is
//! replayed ahead of the random cases on subsequent runs. Commit those
//! files so a once-found failure stays in the suite as a regression test.

use std::collections::HashSet;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator behind all strategies (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Creates a generator seeded from a test name (and `PROPTEST_SEED`,
    /// if set, so failures can be varied or pinned externally).
    pub fn from_name(name: &str) -> Self {
        let env: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mut h: u64 = 0xcbf29ce484222325 ^ env;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The current internal state, for regression persistence.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a persisted state.
    pub fn from_state(s: [u64; 4]) -> Self {
        TestRng { s }
    }
}

/// Failing-case persistence (`proptest-regressions/` files).
///
/// The format mirrors upstream's spirit: one line per failure, here the
/// four xoshiro256++ state words that produced it, as
/// `xs <hex16> <hex16> <hex16> <hex16>`. Lines starting with `#` are
/// comments.
pub mod regressions {
    use std::io::Write;
    use std::path::PathBuf;

    fn file_for(manifest_dir: &str, test_name: &str) -> PathBuf {
        // Test names arrive as module paths; keep them filesystem-safe.
        let sanitized: String = test_name
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '-' })
            .collect();
        PathBuf::from(manifest_dir)
            .join("proptest-regressions")
            .join(format!("{sanitized}.txt"))
    }

    /// Loads all persisted failing states for `test_name`, oldest first.
    /// Missing or unreadable files mean no regressions.
    pub fn load(manifest_dir: &str, test_name: &str) -> Vec<[u64; 4]> {
        let Ok(text) = std::fs::read_to_string(file_for(manifest_dir, test_name)) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            if parts.next() != Some("xs") {
                continue;
            }
            let words: Vec<u64> = parts
                .filter_map(|w| u64::from_str_radix(w, 16).ok())
                .collect();
            if let [a, b, c, d] = words[..] {
                out.push([a, b, c, d]);
            }
        }
        out
    }

    /// Appends a failing state to `test_name`'s regression file (deduped;
    /// creates the directory and file on first use). Persistence is
    /// best-effort: I/O errors are swallowed so they cannot mask the
    /// original test failure.
    pub fn persist(manifest_dir: &str, test_name: &str, state: [u64; 4]) {
        if load(manifest_dir, test_name).contains(&state) {
            return;
        }
        let path = file_for(manifest_dir, test_name);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let fresh = !path.exists();
        let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        else {
            return;
        };
        if fresh {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past.\n\
                 # It is automatically read and these particular cases re-run before\n\
                 # any novel cases are generated. Commit this file to source control."
            );
        }
        let _ = writeln!(
            f,
            "xs {:016x} {:016x} {:016x} {:016x}",
            state[0], state[1], state[2], state[3]
        );
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy that post-processes every drawn value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe view of [`Strategy`], for heterogeneous collections.
pub trait DynStrategy<V> {
    /// Draws one value.
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.as_ref().sample_dyn(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64) - (start as u64) + 1;
                (start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

impl<V> std::fmt::Debug for OneOf<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneOf({} arms)", self.arms.len())
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// A uniformly random boolean.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection::{vec, hash_set}`).
pub mod collection {
    use super::{HashSet, Range, Strategy, TestRng};

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates hash sets with target sizes in `size`. If the element
    /// domain is too small the set may come out smaller than requested.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded attempts so tiny domains cannot loop forever.
            for _ in 0..n.saturating_mul(20).max(64) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, after applying the `PROPTEST_CASES` override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the offline suite fast while
        // still exploring the space. Override with PROPTEST_CASES.
        ProptestConfig { cases: 64 }
    }
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times over freshly drawn values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                // Replay persisted failures first, then explore new cases.
                // Each case's pre-sampling RNG state is recorded so a fresh
                // failure can be persisted and replayed on the next run.
                let __persisted = $crate::regressions::load(env!("CARGO_MANIFEST_DIR"), __test_name);
                let mut rng = $crate::TestRng::from_name(__test_name);
                let __fresh = config.resolved_cases();
                for __case in 0..(__persisted.len() as u64 + __fresh as u64) {
                    let __state = match __persisted.get(__case as usize) {
                        Some(&s) => s,
                        None => rng.state(),
                    };
                    let mut __case_rng = $crate::TestRng::from_state(__state);
                    if (__case as usize) >= __persisted.len() {
                        // Advance the exploring RNG exactly as the case will.
                        rng = $crate::TestRng::from_state(__state);
                        $(let _ = $crate::Strategy::sample(&($strat), &mut rng);)*
                    }
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __case_rng);)*
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body)
                    );
                    if let Err(e) = __result {
                        $crate::regressions::persist(
                            env!("CARGO_MANIFEST_DIR"), __test_name, __state,
                        );
                        eprintln!(
                            "proptest: persisted failing case for {} (state xs {:016x} {:016x} {:016x} {:016x})",
                            __test_name, __state[0], __state[1], __state[2], __state[3],
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        OneOf, ProptestConfig, Strategy, TestRng,
    };

    /// Namespace mirror of upstream's `prop::` module tree.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Op {
        Touch(u16),
        Insert(u16, u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_vecs(
            ways in 1u16..12,
            ops in prop::collection::vec((0u64..64, prop::bool::ANY), 0..50),
        ) {
            prop_assert!((1..12).contains(&ways));
            prop_assert!(ops.len() < 50);
            for (v, _b) in ops {
                prop_assert!(v < 64);
            }
        }

        #[test]
        fn oneof_and_map(
            op in prop_oneof![
                (0u16..8).prop_map(Op::Touch),
                ((0u16..8), 0u8..4).prop_map(|(w, p)| Op::Insert(w, p)),
            ],
            pick in prop_oneof![Just(64u64), Just(1024), Just(4096)],
        ) {
            match op {
                Op::Touch(w) => prop_assert!(w < 8),
                Op::Insert(w, p) => { prop_assert!(w < 8); prop_assert!(p < 4); }
            }
            prop_assert!(pick == 64 || pick == 1024 || pick == 4096);
        }

        #[test]
        fn hash_sets_respect_bounds(lines in prop::collection::hash_set(0u64..1000, 1..32)) {
            prop_assert!(!lines.is_empty() && lines.len() < 32);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_ranges_sample_inside() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..1000 {
            let x = Strategy::sample(&(0.1f64..0.6), &mut rng);
            assert!((0.1..0.6).contains(&x));
        }
    }

    #[test]
    fn state_round_trips() {
        let mut a = TestRng::from_name("state");
        let s = a.state();
        let mut b = TestRng::from_state(s);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn regressions_persist_and_load() {
        let dir = std::env::temp_dir().join(format!("proptest-regr-test-{}", std::process::id()));
        let manifest = dir.to_str().unwrap();
        let name = "mod::case_a";
        assert!(crate::regressions::load(manifest, name).is_empty());
        crate::regressions::persist(manifest, name, [1, 2, 3, 0xdead_beef]);
        crate::regressions::persist(manifest, name, [1, 2, 3, 0xdead_beef]); // dedup
        crate::regressions::persist(manifest, name, [9, 8, 7, 6]);
        assert_eq!(
            crate::regressions::load(manifest, name),
            vec![[1, 2, 3, 0xdead_beef], [9, 8, 7, 6]]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
