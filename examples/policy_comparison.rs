//! Compare every cooperation policy on one four-application mix — the
//! Fig. 8 experiment in miniature, including the paper's ablation variants.
//!
//! Run with: `cargo run --release -p ascc-examples --bin policy_comparison`

use ascc::{AsccConfig, AvgccConfig};
use cmp_cache::{LlcPolicy, PrivateBaseline};
use cmp_sim::{run_mix, weighted_speedup_improvement, RunResult, SystemConfig};
use cmp_trace::four_app_mixes;

fn main() {
    let cfg = SystemConfig::table2(4);
    let mix = four_app_mixes().remove(4); // 458+444+401+471
    let (instrs, warmup, seed) = (12_000_000, 4_000_000, 42);
    let (cores, sets, ways) = (cfg.cores, cfg.l2.sets(), cfg.l2.ways());

    println!("mix {mix}, {instrs} measured instructions/core\n");
    let run = |policy: Box<dyn LlcPolicy>| -> RunResult {
        run_mix(&cfg, &mix, policy, instrs, warmup, seed)
    };
    let base = run(Box::new(PrivateBaseline::new()));

    let policies: Vec<Box<dyn LlcPolicy>> = vec![
        Box::new(spill_baselines::CcPolicy::new(cores, 1)),
        Box::new(spill_baselines::DsrConfig::dsr(cores, sets).build()),
        Box::new(spill_baselines::DsrDipPolicy::new(cores, sets)),
        Box::new(spill_baselines::EccConfig::ecc(cores, ways).build()),
        Box::new(AsccConfig::lms(cores, sets, ways).build()),
        Box::new(AsccConfig::ascc(cores, sets, ways).build()),
        Box::new(AvgccConfig::avgcc(cores, sets, ways).build()),
        Box::new(AvgccConfig::qos_avgcc(cores, sets, ways).build()),
    ];
    println!(
        "{:12} {:>9} {:>10} {:>12}",
        "policy", "speedup", "spills", "hits/spill"
    );
    for p in policies {
        let name = p.name().to_string();
        let r = run(p);
        println!(
            "{:12} {:>8.2}% {:>10} {:>12.2}",
            name,
            100.0 * weighted_speedup_improvement(&r, &base),
            r.spills + r.swaps,
            r.hits_per_spill()
        );
    }
}
