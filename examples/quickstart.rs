//! Quickstart: simulate a 2-core CMP where a capacity-hungry application
//! (471.omnetpp) runs beside one with spare cache (444.namd), first with
//! plain private LLCs and then under AVGCC.
//!
//! Run with: `cargo run --release -p ascc-examples --bin quickstart`

use ascc::AvgccConfig;
use cmp_cache::PrivateBaseline;
use cmp_sim::{run_mix, weighted_speedup_improvement, SystemConfig};
use cmp_trace::{SpecBench, WorkloadMix};

fn main() {
    // The paper's baseline architecture (Table 2), two cores.
    let cfg = SystemConfig::table2(2);
    let mix = WorkloadMix::new(vec![SpecBench::Omnetpp, SpecBench::Namd]);
    // omnetpp's capacity bursts recur every ~7M instructions: simulate
    // long enough to cover a few cycles.
    let (instrs, warmup, seed) = (12_000_000, 4_000_000, 42);

    println!("mix {mix} on {} + private L1s", cfg.l2);

    // 1. Private baseline: the two applications cannot interact.
    let base = run_mix(
        &cfg,
        &mix,
        Box::new(PrivateBaseline::new()),
        instrs,
        warmup,
        seed,
    );

    // 2. AVGCC: omnetpp's saturated sets spill last-copy victims into
    //    namd's underutilized same-index sets; reuse becomes 25-cycle
    //    remote hits instead of 460-cycle memory misses.
    let policy = AvgccConfig::avgcc(cfg.cores, cfg.l2.sets(), cfg.l2.ways()).build();
    let avgcc = run_mix(&cfg, &mix, Box::new(policy), instrs, warmup, seed);

    for (b, a) in base.cores.iter().zip(&avgcc.cores) {
        println!(
            "  {:14} CPI {:.3} -> {:.3}   (L2: {} remote hits, {} fewer memory misses)",
            b.label,
            b.cpi(),
            a.cpi(),
            a.l2_remote_hits,
            b.l2_mem.saturating_sub(a.l2_mem),
        );
    }
    println!(
        "  spills {}  swaps {}  hits/spill {:.2}",
        avgcc.spills,
        avgcc.swaps,
        avgcc.hits_per_spill()
    );
    println!(
        "  weighted speedup improvement: {:+.2}%",
        100.0 * weighted_speedup_improvement(&avgcc, &base)
    );
}
