//! Implement your own cooperation policy against the `LlcPolicy` trait and
//! race it against ASCC.
//!
//! The example policy, *EagerSpill*, spills every last-copy victim to the
//! next core round-robin — no stress tracking at all — and demonstrates
//! why the paper's set-level classification matters: EagerSpill moves far
//! more lines for far fewer remote hits.
//!
//! Run with: `cargo run --release -p ascc-examples --bin custom_policy`

use ascc::AsccConfig;
use cmp_cache::{
    AccessOutcome, CoreId, LlcPolicy, PrivateBaseline, SetIdx, SpillDecision, SpillVictim,
};
use cmp_sim::{run_mix, weighted_speedup_improvement, SystemConfig};
use cmp_trace::four_app_mixes;

/// Spills everything, round-robin, no questions asked.
#[derive(Debug)]
struct EagerSpill {
    cores: usize,
    next: usize,
}

impl EagerSpill {
    fn new(cores: usize) -> Self {
        EagerSpill { cores, next: 0 }
    }
}

impl LlcPolicy for EagerSpill {
    fn name(&self) -> &str {
        "EagerSpill"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, _core: CoreId, _set: SetIdx, _outcome: AccessOutcome) {}

    fn spill_decision(&mut self, from: CoreId, _set: SetIdx, victim: SpillVictim) -> SpillDecision {
        if self.cores < 2 || victim.spilled {
            return SpillDecision::NotSpiller;
        }
        // Round-robin over the peers.
        self.next = (self.next + 1) % self.cores;
        if self.next == from.index() {
            self.next = (self.next + 1) % self.cores;
        }
        SpillDecision::Spill(CoreId(self.next as u8))
    }
}

fn main() {
    let cfg = SystemConfig::table2(4);
    let mix = four_app_mixes().remove(4); // 458+444+401+471
    let (instrs, warmup, seed) = (12_000_000, 4_000_000, 42);

    let base = run_mix(
        &cfg,
        &mix,
        Box::new(PrivateBaseline::new()),
        instrs,
        warmup,
        seed,
    );
    let eager = run_mix(
        &cfg,
        &mix,
        Box::new(EagerSpill::new(cfg.cores)),
        instrs,
        warmup,
        seed,
    );
    let ascc = run_mix(
        &cfg,
        &mix,
        Box::new(AsccConfig::ascc(cfg.cores, cfg.l2.sets(), cfg.l2.ways()).build()),
        instrs,
        warmup,
        seed,
    );

    println!("mix {mix}:");
    for r in [&eager, &ascc] {
        println!(
            "  {:10} speedup {:+.2}%  spills {:>8}  hits/spill {:.2}",
            r.policy,
            100.0 * weighted_speedup_improvement(r, &base),
            r.spills + r.swaps,
            r.hits_per_spill()
        );
    }
    println!(
        "\nEagerSpill moves lines blindly; ASCC's SSL classification spills \
         fewer lines with much better reuse per spill — the paper's central \
         point (and §6.4's metric)."
    );
}
