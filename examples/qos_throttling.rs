//! Watch the §8 QoS mechanism throttle AVGCC.
//!
//! Two streaming applications gain nothing from spilling — AVGCC's spills
//! only move useless lines around (and can evict a neighbour's few useful
//! ones). The QoS extension detects that the measured misses exceed the
//! baseline estimate and collapses the `QoSRatio`, inhibiting the SSL
//! growth that drives spilling.
//!
//! Run with: `cargo run --release -p ascc-examples --bin qos_throttling`

use ascc::AvgccConfig;
use cmp_cache::{CoreId, PrivateBaseline};
use cmp_sim::{mix_workloads, run_mix, weighted_speedup_improvement, CmpSystem, SystemConfig};
use cmp_trace::{SpecBench, WorkloadMix};

fn main() {
    let cfg = SystemConfig::table2(2);
    // Two streaming codes: nobody can provide, nobody benefits (the paper's
    // "nobody benefits" mix category).
    let mix = WorkloadMix::new(vec![SpecBench::Milc, SpecBench::Lbm]);
    let (instrs, warmup, seed) = (4_000_000, 1_500_000, 7);

    let base = run_mix(
        &cfg,
        &mix,
        Box::new(PrivateBaseline::new()),
        instrs,
        warmup,
        seed,
    );
    let shape = |qos: bool| {
        let mut c = AvgccConfig::avgcc(cfg.cores, cfg.l2.sets(), cfg.l2.ways());
        c.qos = qos;
        c
    };
    let plain = run_mix(
        &cfg,
        &mix,
        Box::new(shape(false).build()),
        instrs,
        warmup,
        seed,
    );
    let qos = run_mix(
        &cfg,
        &mix,
        Box::new(shape(true).build()),
        instrs,
        warmup,
        seed,
    );

    println!("mix {mix}:");
    println!(
        "  AVGCC     : {:+.2}% speedup, {} spills",
        100.0 * weighted_speedup_improvement(&plain, &base),
        plain.spills + plain.swaps
    );
    println!(
        "  QoS-AVGCC : {:+.2}% speedup, {} spills",
        100.0 * weighted_speedup_improvement(&qos, &base),
        qos.spills + qos.swaps
    );

    // Peek at the live ratio: drive a fresh system a while, then read the
    // typed policy snapshot (no downcasting needed).
    let mut sys = CmpSystem::new(
        cfg.clone(),
        Box::new(shape(true).build()),
        mix_workloads(&mix, seed),
    );
    sys.run(1_000_000, 200_000);
    let snap = sys.policy().snapshot();
    for core in 0..cfg.cores {
        let ratio = snap
            .core(CoreId(core as u8))
            .and_then(|c| c.qos_ratio)
            .expect("QoS-AVGCC exposes its ratio");
        println!("  core {core}: QoSRatio = {ratio:.3} (1.0 = uninhibited)");
    }
}
