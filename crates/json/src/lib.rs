//! A small, dependency-free JSON library for the workspace's result
//! records and observability dumps.
//!
//! [`Value`] is the document model (objects preserve insertion order so
//! written files are stable and diffable), [`Value::parse`] reads a JSON
//! document, and [`Value::pretty`] / `Display` write one back out.
//! Numbers are `f64`, which covers every counter this workspace records
//! exactly up to 2^53.

use std::fmt;

/// A JSON document or fragment.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved as inserted.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object, for building with [`Value::insert`].
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) a key in an object, returning `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn insert(mut self, key: impl Into<String>, value: impl Into<Value>) -> Value {
        let Value::Object(fields) = &mut self else {
            panic!("insert on non-object JSON value");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            fields.push((key, value));
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key/value pairs in insertion order, if this is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders with two-space indentation and a trailing newline —
    /// suitable for writing straight to a `.json` file.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Arrays of scalars stay on one line; nested structures
                // get one element per line.
                let nested = items
                    .iter()
                    .any(|v| matches!(v, Value::Array(_) | Value::Object(_)));
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty && nested {
                        newline_indent(out, indent + 1);
                    } else if i > 0 {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty && nested {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    } else if i > 0 {
                        out.push(' ');
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        f.write_str(&out)
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value { Value::Number(n as f64) }
        }
    )*};
}
impl_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A parse failure with its byte offset in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_record_shape() {
        let v = Value::object()
            .insert("id", "fig08")
            .insert("title", "speedup \"4-core\"")
            .insert("columns", vec!["DSR", "ASCC"])
            .insert("values", Value::Array(vec![vec![0.05f64, 0.078].into()]))
            .insert("count", 12u64)
            .insert("flag", true)
            .insert("missing", Value::Null);
        let text = v.pretty();
        let back = Value::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.get("id").and_then(Value::as_str), Some("fig08"));
        assert_eq!(back.get("count").and_then(Value::as_u64), Some(12));
        let vals = back.get("values").and_then(Value::as_array).unwrap();
        let row = vals[0].as_array().unwrap();
        assert_eq!(row[1].as_f64(), Some(0.078));
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(Value::Number(42.0).to_string(), "42");
        assert_eq!(Value::Number(-3.0).to_string(), "-3");
        assert_eq!(Value::Number(0.5).to_string(), "0.5");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}".into());
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_external_whitespace_and_nesting() {
        let text = r#"
          { "a" : [ 1 , 2.5 , { "b" : null } ],
            "c" : "xAy", "d": false }
        "#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("xAy"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn insert_replaces_existing_key() {
        let v = Value::object().insert("k", 1u32).insert("k", 2u32);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
        let Value::Object(fields) = &v else { panic!() };
        assert_eq!(fields.len(), 1);
    }

    #[test]
    fn bool_and_entries_accessors() {
        let v = Value::object().insert("on", true).insert("n", 3u32);
        assert_eq!(v.get("on").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Value::as_bool), None);
        let entries = v.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "on");
        assert_eq!(entries[1].0, "n");
        assert!(Value::Null.entries().is_none());
        assert!(Value::Bool(false).as_bool() == Some(false));
    }
}
