//! End-to-end simulator throughput: instructions simulated per second for a
//! small 2-core mix under the baseline and under AVGCC.

use ascc_bench::Policy;
use cmp_sim::{mix_sources, CmpSystem, SystemConfig};
use cmp_trace::two_app_mixes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    const INSTRS: u64 = 200_000;
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .throughput(Throughput::Elements(INSTRS * 2));
    for policy in [Policy::Baseline, Policy::Avgcc] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                let cfg = SystemConfig::table2(2);
                let mix = &two_app_mixes()[0];
                let mut sys =
                    CmpSystem::from_sources(cfg.clone(), policy.build(&cfg), mix_sources(mix, 7));
                sys.run(INSTRS, 20_000)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
