//! Microbenchmarks of the cache substrate: lookup/fill throughput of the
//! set-associative model and the fully-associative LRU.

use cmp_cache::{
    CacheGeometry, CacheLine, FillKind, FullyAssocLru, InsertPos, LineAddr, MesiState,
    RecencyStack, SetAssocCache, WayIdx,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_set_assoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("access_hit", |b| {
        let geom = CacheGeometry::from_capacity(1 << 20, 8, 32).unwrap();
        let mut cache = SetAssocCache::new(geom);
        for i in 0..4096u64 {
            let la = LineAddr::new(i);
            let set = geom.set_of(la);
            let way = cache.set(set).default_victim();
            cache.fill(
                set,
                way,
                CacheLine::demand(la, MesiState::Exclusive),
                InsertPos::Mru,
                FillKind::Demand,
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(cache.access(LineAddr::new(i)))
        });
    });
    group.bench_function("miss_and_fill", |b| {
        let geom = CacheGeometry::from_capacity(1 << 20, 8, 32).unwrap();
        let mut cache = SetAssocCache::new(geom);
        let mut i = 0u64;
        b.iter(|| {
            i += 4096; // always a fresh line, same-set pressure
            let la = LineAddr::new(i);
            if cache.access(la).is_none() {
                let set = geom.set_of(la);
                let way = cache.set(set).default_victim();
                black_box(cache.fill(
                    set,
                    way,
                    CacheLine::demand(la, MesiState::Exclusive),
                    InsertPos::Mru,
                    FillKind::Demand,
                ));
            }
        });
    });
    group.finish();
}

fn bench_recency(c: &mut Criterion) {
    let mut group = c.benchmark_group("recency");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("touch_mru_8way", |b| {
        let mut r = RecencyStack::new(8);
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 3) % 8;
            r.touch_mru(WayIdx(i));
            black_box(r.lru())
        });
    });
    group.finish();
}

fn bench_fully_assoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fully_assoc");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("access_64k_lines", |b| {
        let mut lru = FullyAssocLru::new(65536);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9) % 100_000;
            black_box(lru.access(LineAddr::new(i)))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_set_assoc, bench_recency, bench_fully_assoc);
criterion_main!(benches);
