//! Per-access cost of each LLC policy's bookkeeping: `record_access` plus a
//! periodic `spill_decision`, the two hooks on the simulator's hot path —
//! in `trace_front_end`, the per-access cost of both workload front-ends
//! (live streaming generation vs warm materialized-chunk replay) — and, in
//! `system_per_access`, the full per-access cost of a real 2-core
//! [`CmpSystem`] (workload front-end, L1/L2 arena lookups, snoop bus,
//! policy hooks) so layout changes in the cache crate show up end to end.

use ascc::{AsccConfig, AvgccConfig};
use ascc_bench::Policy;
use cmp_cache::{AccessOutcome, CoreId, LlcPolicy, PrivateBaseline, SetIdx, SpillVictim};
use cmp_sim::{mix_sources, CmpSystem, SystemConfig};
use cmp_trace::{two_app_mixes, AccessStream, SharedTrace, SpecBench};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spill_baselines::{DsrConfig, EccConfig};

fn drive(policy: &mut dyn LlcPolicy, i: &mut u32) {
    *i = i.wrapping_add(0x9E37_79B9);
    let core = CoreId((*i >> 30) as u8 % 4);
    let set = SetIdx(*i % 4096);
    let outcome = if (*i).is_multiple_of(3) {
        AccessOutcome::Miss
    } else {
        AccessOutcome::Hit {
            spilled: false,
            depth: (*i % 8) as u16,
        }
    };
    policy.record_access(core, set, outcome);
    if (*i).is_multiple_of(8) {
        black_box(policy.spill_decision(core, set, SpillVictim::default()));
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_per_access");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let mut cases: Vec<(&str, Box<dyn LlcPolicy>)> = vec![
        ("baseline", Box::new(PrivateBaseline::new())),
        ("DSR", Box::new(DsrConfig::dsr(4, 4096).build())),
        ("ECC", Box::new(EccConfig::ecc(4, 8).build())),
        ("ASCC", Box::new(AsccConfig::ascc(4, 4096, 8).build())),
        ("AVGCC", Box::new(AvgccConfig::avgcc(4, 4096, 8).build())),
        (
            "QoS-AVGCC",
            Box::new(AvgccConfig::qos_avgcc(4, 4096, 8).build()),
        ),
    ];
    for (name, policy) in &mut cases {
        let mut i = 0u32;
        group.bench_function(*name, |b| b.iter(|| drive(&mut **policy, &mut i)));
    }
    group.finish();
}

/// Streaming generation vs materialized-chunk replay, per access, for a
/// RNG-heavy benchmark (mcf's bursty mixture) and a simpler one (bzip2) —
/// regressions in either front-end path show up here.
fn bench_front_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_front_end");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    for bench in [SpecBench::Mcf, SpecBench::Bzip2] {
        let mut stream = bench.workload(0, 7).stream;
        group.bench_function(format!("streaming:{}", bench.name()), |b| {
            b.iter(|| black_box(stream.next_access()))
        });

        let shared = SharedTrace::new(move || bench.workload(0, 7).stream);
        // Warm a few chunks so the measured cursor replays instead of
        // paying first-touch materialization.
        let mut warm = shared.cursor();
        for _ in 0..4 * cmp_trace::CHUNK_ACCESSES {
            black_box(warm.next_access());
        }
        let mut cursor = shared.cursor();
        let mut n = 0usize;
        group.bench_function(format!("replay:{}", bench.name()), |b| {
            b.iter(|| {
                // Stay inside the warmed prefix: restart the cursor before
                // it would materialize a fifth chunk.
                n += 1;
                if n == 4 * cmp_trace::CHUNK_ACCESSES {
                    cursor = shared.cursor();
                    n = 0;
                }
                black_box(cursor.next_access())
            })
        });
    }
    group.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_per_access");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let cfg = SystemConfig::table2(2);
    let mix = &two_app_mixes()[0];
    for policy in [
        Policy::Baseline,
        Policy::Ascc,
        Policy::Avgcc,
        Policy::QosAvgcc,
    ] {
        let mut sys = CmpSystem::from_sources(cfg.clone(), policy.build(&cfg), mix_sources(mix, 7));
        // Fill the hierarchy so the measurement sees the steady-state mix
        // of hits, spills and evictions rather than cold compulsory misses.
        for i in 0..200_000 {
            sys.step(i & 1);
        }
        let mut i = 0usize;
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                sys.step(i & 1);
                i = i.wrapping_add(1);
            })
        });
        black_box(sys.lifetime_result());
    }
    group.finish();
}

criterion_group!(benches, bench_policies, bench_front_end, bench_system);
criterion_main!(benches);
