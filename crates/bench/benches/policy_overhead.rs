//! Per-access cost of each LLC policy's bookkeeping: `record_access` plus a
//! periodic `spill_decision`, the two hooks on the simulator's hot path.

use ascc::{AsccConfig, AvgccConfig};
use cmp_cache::{AccessOutcome, CoreId, LlcPolicy, PrivateBaseline, SetIdx};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spill_baselines::{DsrConfig, EccConfig};

fn drive(policy: &mut dyn LlcPolicy, i: &mut u32) {
    *i = i.wrapping_add(0x9E37_79B9);
    let core = CoreId((*i >> 30) as u8 % 4);
    let set = SetIdx(*i % 4096);
    let outcome = if (*i).is_multiple_of(3) {
        AccessOutcome::Miss
    } else {
        AccessOutcome::Hit {
            spilled: false,
            depth: (*i % 8) as u16,
        }
    };
    policy.record_access(core, set, outcome);
    if (*i).is_multiple_of(8) {
        black_box(policy.spill_decision(core, set, false));
    }
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_per_access");
    group
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let mut cases: Vec<(&str, Box<dyn LlcPolicy>)> = vec![
        ("baseline", Box::new(PrivateBaseline::new())),
        ("DSR", Box::new(DsrConfig::dsr(4, 4096).build())),
        ("ECC", Box::new(EccConfig::ecc(4, 8).build())),
        ("ASCC", Box::new(AsccConfig::ascc(4, 4096, 8).build())),
        ("AVGCC", Box::new(AvgccConfig::avgcc(4, 4096, 8).build())),
        (
            "QoS-AVGCC",
            Box::new(AvgccConfig::qos_avgcc(4, 4096, 8).build()),
        ),
    ];
    for (name, policy) in &mut cases {
        let mut i = 0u32;
        group.bench_function(*name, |b| b.iter(|| drive(&mut **policy, &mut i)));
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
