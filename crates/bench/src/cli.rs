//! Unified command-line surface for the experiment binaries.
//!
//! Every bin that takes arguments (`run_all`, `trace_tool`,
//! `sim_throughput`, `obs_dynamics`, `ascc_serve`) builds a [`Cli`]
//! describing its flags, so `--only`, `--out`, `--jobs` and `--resume`
//! parse identically everywhere (`--flag value` and `--flag=value` both
//! accepted, unknown flags die with usage on stderr and exit 2) and
//! `--help` is generated — flag list first, then the
//! [`RunConfig`](crate::RunConfig) flag/env/JSON table so the environment
//! compatibility layer is documented in every binary, not just the README.
//!
//! Diagnostics (usage errors, "no experiment matches" listings) go to
//! **stderr**: stdout of these binaries is experiment output that gets
//! piped and diffed, and a stray diagnostic on stdout poisons
//! byte-identity checks. A regression test pins this
//! (`crates/bench/tests/cli_args.rs`).

use crate::RunConfig;

/// One flag's specification.
#[derive(Clone, Copy, Debug)]
struct FlagSpec {
    /// Flag name including dashes, e.g. `"--only"`.
    name: &'static str,
    /// Metavariable for value-taking flags (`Some("<substring>")`), or
    /// `None` for boolean flags.
    value: Option<&'static str>,
    /// One-line help.
    help: &'static str,
    /// Whether the flag may be given more than once.
    repeatable: bool,
}

/// A binary's argument grammar; build with the fluent setters, then call
/// [`parse`](Cli::parse).
#[derive(Debug)]
pub struct Cli {
    bin: &'static str,
    about: &'static str,
    flags: Vec<FlagSpec>,
    /// Usage tail for binaries with positional arguments/subcommands,
    /// e.g. `"<command> [args...]"`. Empty = no positionals accepted.
    positional_usage: &'static str,
}

/// Parse result: flag occurrences in order, plus positionals.
#[derive(Debug, Default)]
pub struct Parsed {
    values: Vec<(&'static str, String)>,
    /// Non-flag arguments, in order.
    pub positionals: Vec<String>,
}

impl Cli {
    /// A grammar with no flags yet (besides the implicit `--help`).
    pub fn new(bin: &'static str, about: &'static str) -> Self {
        Cli {
            bin,
            about,
            flags: Vec::new(),
            positional_usage: "",
        }
    }

    /// Adds a boolean flag.
    pub fn flag(mut self, name: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec {
            name,
            value: None,
            help,
            repeatable: false,
        });
        self
    }

    /// Adds a value-taking flag.
    pub fn option(mut self, name: &'static str, metavar: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec {
            name,
            value: Some(metavar),
            help,
            repeatable: false,
        });
        self
    }

    /// Adds a repeatable value-taking flag.
    pub fn repeated(
        mut self,
        name: &'static str,
        metavar: &'static str,
        help: &'static str,
    ) -> Self {
        self.flags.push(FlagSpec {
            name,
            value: Some(metavar),
            help,
            repeatable: true,
        });
        self
    }

    /// Declares that positional arguments are accepted, with the given
    /// usage tail (e.g. `"<command> [args...]"`).
    pub fn positionals(mut self, usage: &'static str) -> Self {
        self.positional_usage = usage;
        self
    }

    /// The standard harness flags: `--jobs`, `--cores`, `--out`,
    /// `--resume`, wired to [`RunConfig`] by [`Parsed::run_config`].
    /// Shared so the flags cannot drift in spelling or semantics between
    /// binaries.
    pub fn harness_flags(self) -> Self {
        self.option(
            "--jobs",
            "<n>",
            "sweep worker count (0 or unset: all cores; 1 runs inline)",
        )
        .option(
            "--cores",
            "<n>",
            "simulated core count 1..=64 (unset: the binary's default)",
        )
        .option("--out", "<path>", "result artifact destination")
        .flag(
            "--resume",
            "resume: restore checkpoints, skip manifest-done work",
        )
    }

    /// One-line usage string.
    pub fn usage(&self) -> String {
        let mut u = format!("usage: {}", self.bin);
        for f in &self.flags {
            match f.value {
                Some(m) => {
                    let rep = if f.repeatable { "..." } else { "" };
                    u.push_str(&format!(" [{} {m}]{rep}", f.name));
                }
                None => u.push_str(&format!(" [{}]", f.name)),
            }
        }
        if !self.positional_usage.is_empty() {
            u.push(' ');
            u.push_str(self.positional_usage);
        }
        u
    }

    /// Full `--help` text: about, usage, per-flag help, then the
    /// [`RunConfig`] knob table.
    pub fn help(&self) -> String {
        let mut h = format!("{}: {}\n\n{}\n", self.bin, self.about, self.usage());
        if !self.flags.is_empty() {
            h.push_str("\nflags:\n");
            for f in &self.flags {
                let head = match f.value {
                    Some(m) => format!("{} {m}", f.name),
                    None => f.name.to_string(),
                };
                h.push_str(&format!("  {head:<22} {}\n", f.help));
            }
            h.push_str("  --help                 print this help\n");
        }
        h.push('\n');
        h.push_str(&RunConfig::help_table());
        h
    }

    /// Parses `args` (without the program name). `Err` is a diagnostic
    /// for stderr; `--help` is reported as a special error so [`parse`]
    /// can print to stdout and exit 0.
    pub fn try_parse(&self, args: &[String]) -> Result<Parsed, String> {
        let mut out = Parsed::default();
        let mut it = args.iter();
        'outer: while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                return Err("--help".into());
            }
            if arg.starts_with("--") {
                for f in &self.flags {
                    let rest = match arg.strip_prefix(f.name) {
                        Some(r) => r,
                        None => continue,
                    };
                    let value = match (f.value, rest) {
                        (None, "") => String::new(),
                        (Some(_), "") => match it.next() {
                            Some(v) => v.clone(),
                            None => return Err(format!("{} needs an argument", f.name)),
                        },
                        (Some(_), eq) => match eq.strip_prefix('=') {
                            Some(v) if !v.is_empty() => v.to_string(),
                            _ => return Err(format!("{} needs an argument", f.name)),
                        },
                        (None, _) => continue,
                    };
                    if !f.repeatable && out.values.iter().any(|(n, _)| *n == f.name) {
                        return Err(format!("{} given more than once", f.name));
                    }
                    out.values.push((f.name, value));
                    continue 'outer;
                }
                return Err(format!("unknown argument {arg:?}"));
            }
            if self.positional_usage.is_empty() {
                return Err(format!("unexpected argument {arg:?}"));
            }
            out.positionals.push(arg.clone());
        }
        Ok(out)
    }

    /// Parses the process arguments; on `--help` prints help to stdout
    /// and exits 0, on a bad command line prints the diagnostic and usage
    /// to stderr and exits 2.
    pub fn parse(&self) -> Parsed {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match self.try_parse(&args) {
            Ok(p) => p,
            Err(e) if e == "--help" => {
                // write_all, not println!: a closed pipe (`--help | head`)
                // must not panic with a backtrace.
                use std::io::Write;
                let _ = std::io::stdout().write_all(self.help().as_bytes());
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{}: {e}", self.bin);
                eprintln!("{}", self.usage());
                std::process::exit(2);
            }
        }
    }
}

impl Parsed {
    /// Whether a boolean flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.values.iter().any(|(n, _)| *n == name)
    }

    /// The (last) value of a value-taking flag.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable flag, in order.
    pub fn values(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// The value of `name` parsed as `T`; `Err` carries a diagnostic.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("{name} cannot parse {v:?}")),
        }
    }

    /// Environment configuration with the standard flags
    /// (`--jobs`, `--out`, `--resume`) overlaid — the one call that makes
    /// flags and env mean the same thing in every binary.
    pub fn run_config(&self) -> Result<RunConfig, String> {
        let mut cfg = RunConfig::from_env();
        if let Some(jobs) = self.parsed::<usize>("--jobs")? {
            cfg = cfg.with_jobs(Some(jobs));
        }
        if let Some(cores) = self.parsed::<usize>("--cores")? {
            if !(1..=64).contains(&cores) {
                return Err(format!("--cores must be 1..=64, got {cores}"));
            }
            cfg = cfg.with_cores(Some(cores));
        }
        if let Some(out) = self.value("--out") {
            cfg = cfg.with_out(Some(out.into()));
        }
        if self.has("--resume") {
            cfg = cfg.with_resume(true);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn grammar() -> Cli {
        Cli::new("run_all", "test grammar")
            .repeated("--only", "<substring>", "filter")
            .option("--timeout", "<secs>", "limit")
            .harness_flags()
    }

    #[test]
    fn both_flag_value_spellings_parse() {
        let g = grammar();
        let p = g
            .try_parse(&args(&[
                "--only",
                "fig08",
                "--only=table",
                "--jobs=2",
                "--resume",
            ]))
            .unwrap();
        assert_eq!(p.values("--only"), vec!["fig08", "table"]);
        assert_eq!(p.parsed::<usize>("--jobs").unwrap(), Some(2));
        assert!(p.has("--resume"));
        assert!(p.value("--out").is_none());
    }

    #[test]
    fn errors_are_diagnostics() {
        let g = grammar();
        assert!(g
            .try_parse(&args(&["--bogus"]))
            .unwrap_err()
            .contains("unknown"));
        assert!(g
            .try_parse(&args(&["--timeout"]))
            .unwrap_err()
            .contains("needs an argument"));
        assert!(g
            .try_parse(&args(&["--timeout=", "5"]))
            .unwrap_err()
            .contains("needs an argument"));
        assert!(g
            .try_parse(&args(&["--timeout", "5", "--timeout", "6"]))
            .unwrap_err()
            .contains("more than once"));
        assert!(g
            .try_parse(&args(&["stray"]))
            .unwrap_err()
            .contains("unexpected"));
        assert_eq!(g.try_parse(&args(&["--help"])).unwrap_err(), "--help");
    }

    #[test]
    fn positionals_pass_through() {
        let g = Cli::new("trace_tool", "t").positionals("<command> [args...]");
        let p = g.try_parse(&args(&["info", "/tmp/x.trc"])).unwrap();
        assert_eq!(p.positionals, vec!["info", "/tmp/x.trc"]);
    }

    #[test]
    fn run_config_overlays_flags_on_env() {
        let g = grammar();
        let p = g
            .try_parse(&args(&["--jobs", "3", "--out", "o.json", "--resume"]))
            .unwrap();
        let cfg = p.run_config().unwrap();
        assert_eq!(cfg.jobs, Some(3));
        assert_eq!(cfg.out.as_deref(), Some(std::path::Path::new("o.json")));
        assert!(cfg.resume);
        let bad = g.try_parse(&args(&["--jobs", "many"])).unwrap();
        assert!(bad.run_config().unwrap_err().contains("--jobs"));
    }

    #[test]
    fn cores_flag_overlays_and_validates() {
        let g = grammar();
        let p = g.try_parse(&args(&["--cores", "16"])).unwrap();
        assert_eq!(p.run_config().unwrap().cores, Some(16));
        let p = g.try_parse(&args(&["--cores=65"])).unwrap();
        assert!(p.run_config().unwrap_err().contains("1..=64"));
        let p = g.try_parse(&args(&["--cores", "0"])).unwrap();
        assert!(p.run_config().unwrap_err().contains("1..=64"));
    }

    #[test]
    fn help_embeds_the_knob_table() {
        let h = grammar().help();
        assert!(h.contains("usage: run_all"));
        assert!(h.contains("--only <substring>"));
        assert!(h.contains("ASCC_TRACE_ARENA_MB"), "{h}");
        assert!(h.contains("--help"));
    }
}
