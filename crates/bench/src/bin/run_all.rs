//! Runs every experiment binary in paper order and rebuilds EXPERIMENTS.md
//! from the JSON records the binaries drop under `results/`.
//!
//! Usage: `cargo run --release -p ascc-bench --bin run_all` (set
//! `ASCC_QUICK=1` or `ASCC_INSTRS=...` to change the scale).

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table2_arch",
    "table3_characterization",
    "fig01_ways",
    "fig02_sets",
    "fig03_insertion",
    "fig04_breakdown",
    "fig05_neutral",
    "fig06_granularity",
    "table1_gran_sweep",
    "fig07_speedup2",
    "fig08_speedup4",
    "fig09_fairness",
    "fig10_memlat",
    "sens_shared",
    "sens_multithreaded",
    "sens_prefetch",
    "table4_cache_size",
    "behavior_spills",
    "table5_storage",
    "fig11_qos",
    "sect7_limited",
    "ablations",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let started = std::time::Instant::now();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n############ {exp} ############");
        let status = Command::new(bin_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            eprintln!("!! {exp} failed with {status}");
            failures.push(*exp);
        }
    }
    println!(
        "\nall experiments done in {:.1} min; {} failures {:?}",
        started.elapsed().as_secs_f64() / 60.0,
        failures.len(),
        failures
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
