//! Runs every experiment binary in paper order and rebuilds EXPERIMENTS.md
//! from the JSON records the binaries drop under `results/`.
//!
//! Usage: `cargo run --release -p ascc-bench --bin run_all [-- --only <substring>]`
//! (set `ASCC_QUICK=1` or `ASCC_INSTRS=...` to change the scale, `ASCC_JOBS`
//! to bound the per-experiment sweep parallelism).
//!
//! `--only <substring>` keeps just the experiments whose name contains the
//! substring (`--only fig08`, `--only table`); may be repeated. Per-binary
//! wall-clock is printed in a summary table so perf regressions are visible.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "table2_arch",
    "table3_characterization",
    "fig01_ways",
    "fig02_sets",
    "fig03_insertion",
    "fig04_breakdown",
    "fig05_neutral",
    "fig06_granularity",
    "table1_gran_sweep",
    "fig07_speedup2",
    "fig08_speedup4",
    "fig09_fairness",
    "fig10_memlat",
    "sens_shared",
    "sens_multithreaded",
    "sens_prefetch",
    "table4_cache_size",
    "behavior_spills",
    "table5_storage",
    "fig11_qos",
    "sect7_limited",
    "ablations",
];

/// Parses `--only <substring>` filters from the command line.
///
/// Returns the list of substrings; empty means "run everything".
fn parse_filters(args: &[String]) -> Vec<String> {
    let mut filters = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.strip_prefix("--only") {
            Some("") => match it.next() {
                Some(v) => filters.push(v.clone()),
                None => die("--only needs a substring argument"),
            },
            Some(eq) => match eq.strip_prefix('=') {
                Some(v) if !v.is_empty() => filters.push(v.to_string()),
                _ => die("--only needs a substring argument"),
            },
            None => die(&format!(
                "unknown argument {arg:?} (expected --only <substring>)"
            )),
        }
    }
    filters
}

fn die(msg: &str) -> ! {
    eprintln!("run_all: {msg}");
    eprintln!("usage: run_all [--only <substring>]...");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filters = parse_filters(&args);
    let selected: Vec<&str> = EXPERIMENTS
        .iter()
        .copied()
        .filter(|e| filters.is_empty() || filters.iter().any(|f| e.contains(f.as_str())))
        .collect();
    if selected.is_empty() {
        die(&format!("no experiment matches {filters:?}"));
    }

    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let started = std::time::Instant::now();
    let mut failures = Vec::new();
    let mut timings: Vec<(&str, f64)> = Vec::new();
    for exp in &selected {
        println!("\n############ {exp} ############");
        let t0 = std::time::Instant::now();
        let status = Command::new(bin_dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        timings.push((exp, t0.elapsed().as_secs_f64()));
        if !status.success() {
            eprintln!("!! {exp} failed with {status}");
            failures.push(*exp);
        }
    }

    println!("\n== per-experiment wall-clock ==");
    for (exp, secs) in &timings {
        println!("  {exp:<24} {secs:8.2} s");
    }
    println!(
        "\n{} experiment(s) done in {:.1} min; {} failures {:?}",
        selected.len(),
        started.elapsed().as_secs_f64() / 60.0,
        failures.len(),
        failures
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
