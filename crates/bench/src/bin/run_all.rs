//! Fault-tolerant orchestrator: runs every experiment binary in paper
//! order, journaling per-binary status to `results/run_manifest.json`.
//!
//! Usage: `cargo run --release -p ascc-bench --bin run_all [-- OPTIONS]`
//! (set `ASCC_QUICK=1` or `ASCC_INSTRS=...` to change the scale; see
//! `--help` for the full flag ↔ env mapping).
//!
//! This binary is a thin command-line front over
//! [`ascc_bench::orchestrate`] — the `ascc-serve` daemon drives the very
//! same engine, so a sweep behaves identically whether launched from a
//! shell or over HTTP. Every manifest update and results artifact is
//! published atomically (temp file + rename), so a SIGKILL at any instant
//! leaves either the old file or the new one, never a torn write.
//!
//! Diagnostics (including the "no experiment matches" listing) go to
//! stderr; stdout carries only experiment output.

use ascc_bench::cli::Cli;
use ascc_bench::orchestrate::{execute, select, Control, Plan};
use std::time::{Duration, Instant};

fn main() {
    let cli = Cli::new(
        "run_all",
        "run every experiment binary in paper order, with a fault-tolerant journal",
    )
    .repeated(
        "--only",
        "<substring>",
        "keep experiments whose name contains this (case-insensitive); repeatable",
    )
    .option("--timeout", "<secs>", "per-binary wall-clock limit")
    .option(
        "--retries",
        "<n>",
        "extra attempts after a failure or timeout (default 1)",
    )
    .harness_flags();
    let parsed = cli.parse();

    let die = |msg: &str| -> ! {
        eprintln!("run_all: {msg}");
        eprintln!("{}", cli.usage());
        std::process::exit(2);
    };
    let config = parsed.run_config().unwrap_or_else(|e| die(&e));
    let filters: Vec<String> = parsed
        .values("--only")
        .iter()
        .map(|s| s.to_string())
        .collect();
    let selected = select(&filters).unwrap_or_else(|e| {
        eprintln!("run_all: {e}");
        std::process::exit(2);
    });
    let timeout = match parsed.parsed::<u64>("--timeout") {
        Ok(Some(0)) => die("--timeout wants a positive integer, got \"0\""),
        Ok(secs) => secs.map(Duration::from_secs),
        Err(e) => die(&e),
    };
    let retries = parsed
        .parsed::<u32>("--retries")
        .unwrap_or_else(|e| die(&e))
        .unwrap_or(1);

    // Children get the full config through the environment; applying it
    // here too keeps this process's own readers (none today) consistent.
    config.apply();
    let mut plan = Plan::new(selected.iter().map(|s| s.to_string()).collect(), config);
    plan.timeout = timeout;
    plan.retries = retries;

    let started = Instant::now();
    let summary = execute(&plan, &Control::new());

    println!("\n== per-experiment wall-clock ==");
    for t in &summary.timings {
        println!("  {:<24} {:8.2} s  {}", t.name, t.seconds, t.verdict);
    }
    println!(
        "\n{} experiment(s) done in {:.1} min; {} failures {:?} (journal: {})",
        selected.len(),
        started.elapsed().as_secs_f64() / 60.0,
        summary.failures.len(),
        summary.failures,
        plan.workdir
            .join("results")
            .join("run_manifest.json")
            .display()
    );
    if !summary.failures.is_empty() {
        std::process::exit(1);
    }
}
