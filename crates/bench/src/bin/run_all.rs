//! Fault-tolerant orchestrator: runs every experiment binary in paper
//! order, journaling per-binary status to `results/run_manifest.json`.
//!
//! Usage: `cargo run --release -p ascc-bench --bin run_all [-- OPTIONS]`
//! (set `ASCC_QUICK=1` or `ASCC_INSTRS=...` to change the scale, `ASCC_JOBS`
//! to bound the per-experiment sweep parallelism).
//!
//! Options:
//!
//! * `--only <substring>` — keep just the experiments whose name contains
//!   the substring, case-insensitively (`--only fig08`, `--only TABLE`);
//!   may be repeated. A substring matching nothing exits non-zero and
//!   lists the available names.
//! * `--resume` — skip experiments the manifest marks done, and export
//!   `ASCC_RESUME=1` to children so in-flight periodic checkpoints
//!   (`ASCC_CKPT_EVERY`) restore instead of restarting.
//! * `--timeout <secs>` — per-binary wall-clock limit; a binary still
//!   running after the limit is killed and counts as a timeout.
//! * `--retries <n>` — extra attempts after a failure or timeout
//!   (default 1).
//!
//! Every manifest update and results artifact is published atomically
//! (temp file + rename), so a SIGKILL at any instant leaves either the
//! old file or the new one, never a torn write.

use ascc_bench::manifest::{RunManifest, Status};
use std::process::Command;
use std::time::{Duration, Instant};

const EXPERIMENTS: &[&str] = &[
    "table2_arch",
    "table3_characterization",
    "fig01_ways",
    "fig02_sets",
    "fig03_insertion",
    "fig04_breakdown",
    "fig05_neutral",
    "fig06_granularity",
    "table1_gran_sweep",
    "fig07_speedup2",
    "fig08_speedup4",
    "fig09_fairness",
    "fig10_memlat",
    "sens_shared",
    "sens_multithreaded",
    "sens_prefetch",
    "table4_cache_size",
    "behavior_spills",
    "table5_storage",
    "fig11_qos",
    "sect7_limited",
    "ablations",
];

/// Parsed command line.
struct Options {
    /// Case-insensitive `--only` substrings; empty means "run everything".
    filters: Vec<String>,
    /// Skip manifest-done experiments and let children restore checkpoints.
    resume: bool,
    /// Per-binary wall-clock limit.
    timeout: Option<Duration>,
    /// Extra attempts after a failure or timeout.
    retries: u32,
}

fn parse_args(args: &[String]) -> Options {
    let mut opts = Options {
        filters: Vec::new(),
        resume: false,
        timeout: None,
        retries: 1,
    };
    let mut it = args.iter();
    // Accepts both `--flag value` and `--flag=value`.
    let value_of = |arg: &str, name: &str, it: &mut std::slice::Iter<String>| -> String {
        match arg.strip_prefix(name) {
            Some("") => match it.next() {
                Some(v) => v.clone(),
                None => die(&format!("{name} needs an argument")),
            },
            Some(eq) => match eq.strip_prefix('=') {
                Some(v) if !v.is_empty() => v.to_string(),
                _ => die(&format!("{name} needs an argument")),
            },
            None => unreachable!(),
        }
    };
    while let Some(arg) = it.next() {
        if arg == "--resume" {
            opts.resume = true;
        } else if arg.starts_with("--only") {
            opts.filters
                .push(value_of(arg, "--only", &mut it).to_lowercase());
        } else if arg.starts_with("--timeout") {
            let v = value_of(arg, "--timeout", &mut it);
            match v.parse::<u64>() {
                Ok(secs) if secs > 0 => opts.timeout = Some(Duration::from_secs(secs)),
                _ => die(&format!("--timeout wants a positive integer, got {v:?}")),
            }
        } else if arg.starts_with("--retries") {
            let v = value_of(arg, "--retries", &mut it);
            match v.parse::<u32>() {
                Ok(n) => opts.retries = n,
                Err(_) => die(&format!("--retries wants an integer, got {v:?}")),
            }
        } else {
            die(&format!("unknown argument {arg:?}"));
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("run_all: {msg}");
    eprintln!(
        "usage: run_all [--only <substring>]... [--resume] [--timeout <secs>] [--retries <n>]"
    );
    std::process::exit(2);
}

/// One attempt's outcome.
enum Outcome {
    Ok,
    Failed(String),
    TimedOut,
}

/// Launches `exp`, enforcing the optional wall-clock limit by polling.
fn run_one(bin: &std::path::Path, resume: bool, timeout: Option<Duration>) -> Outcome {
    let mut cmd = Command::new(bin);
    if resume {
        cmd.env("ASCC_RESUME", "1");
    }
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => return Outcome::Failed(format!("failed to launch: {e}")),
    };
    let t0 = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => return Outcome::Ok,
            Ok(Some(status)) => return Outcome::Failed(format!("exited with {status}")),
            Ok(None) => {}
            Err(e) => return Outcome::Failed(format!("wait failed: {e}")),
        }
        if timeout.is_some_and(|t| t0.elapsed() >= t) {
            let _ = child.kill();
            let _ = child.wait();
            return Outcome::TimedOut;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args);
    let selected: Vec<&str> = EXPERIMENTS
        .iter()
        .copied()
        .filter(|e| {
            opts.filters.is_empty()
                || opts
                    .filters
                    .iter()
                    .any(|f| e.to_lowercase().contains(f.as_str()))
        })
        .collect();
    if selected.is_empty() {
        eprintln!(
            "run_all: no experiment matches {:?}; available experiments:",
            opts.filters
        );
        for e in EXPERIMENTS {
            eprintln!("  {e}");
        }
        std::process::exit(2);
    }

    let manifest_path = std::path::Path::new("results").join("run_manifest.json");
    let mut manifest = fresh_or_resumed(&manifest_path, opts.resume);

    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let started = Instant::now();
    let mut failures = Vec::new();
    let mut timings: Vec<(&str, f64, &'static str)> = Vec::new();
    for exp in &selected {
        if opts.resume && manifest.is_done(exp) {
            println!("\n############ {exp} ############ (done in manifest, skipped)");
            timings.push((exp, 0.0, "skipped"));
            continue;
        }
        let prior_attempts = manifest.entry(exp).map_or(0, |e| e.attempts);
        let mut outcome = Outcome::Failed("never launched".into());
        let mut secs = 0.0;
        let mut attempt_no = prior_attempts;
        for attempt in 0..=opts.retries {
            attempt_no = prior_attempts + u64::from(attempt) + 1;
            println!(
                "\n############ {exp} ############{}",
                if attempt > 0 {
                    format!(" (retry {attempt}/{})", opts.retries)
                } else {
                    String::new()
                }
            );
            journal(&mut manifest, exp, Status::Running, attempt_no, 0.0);
            let t0 = Instant::now();
            outcome = run_one(&bin_dir.join(exp), opts.resume, opts.timeout);
            secs = t0.elapsed().as_secs_f64();
            match &outcome {
                Outcome::Ok => break,
                Outcome::Failed(why) => {
                    eprintln!("!! {exp} failed after {secs:.1} s: {why}");
                    journal(&mut manifest, exp, Status::Failed, attempt_no, secs);
                }
                Outcome::TimedOut => {
                    eprintln!("!! {exp} timed out after {secs:.1} s; killed");
                    journal(&mut manifest, exp, Status::TimedOut, attempt_no, secs);
                }
            }
        }
        let verdict = match outcome {
            Outcome::Ok => {
                journal(&mut manifest, exp, Status::Done, attempt_no, secs);
                "ok"
            }
            Outcome::Failed(_) => {
                failures.push(*exp);
                "FAILED"
            }
            Outcome::TimedOut => {
                failures.push(*exp);
                "TIMEOUT"
            }
        };
        timings.push((exp, secs, verdict));
    }

    println!("\n== per-experiment wall-clock ==");
    for (exp, secs, verdict) in &timings {
        println!("  {exp:<24} {secs:8.2} s  {verdict}");
    }
    println!(
        "\n{} experiment(s) done in {:.1} min; {} failures {:?} (journal: {})",
        selected.len(),
        started.elapsed().as_secs_f64() / 60.0,
        failures.len(),
        failures,
        manifest_path.display()
    );
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

/// Loads the journal for `--resume`, or starts a blank one (next to the
/// same path) for a fresh run so stale completions never mask new work.
fn fresh_or_resumed(path: &std::path::Path, resume: bool) -> RunManifest {
    if resume {
        RunManifest::load_or_new(path)
    } else {
        let _ = std::fs::remove_file(path);
        RunManifest::load_or_new(path)
    }
}

/// Journals a transition, warning (not dying) on IO trouble — losing the
/// journal must not kill a multi-hour sweep.
fn journal(m: &mut RunManifest, exp: &str, status: Status, attempts: u64, secs: f64) {
    if let Err(e) = m.record(exp, status, attempts, secs) {
        eprintln!("run_all: warning: could not journal {exp}: {e}");
    }
}
