//! `ascc-serve` — the resident cache-as-a-service daemon.
//!
//! Composes the `ascc_serve` HTTP substrate with the
//! [`ascc_bench::serve`] application: accepts sweep/mix jobs as JSON
//! `POST /jobs`, streams progress by tailing each job's
//! `run_manifest.json` journal, serves live `PolicySnapshot` /
//! `EpochRecorder` data at `GET /snapshots/:id`, exposes a Prometheus
//! `GET /metrics` endpoint, and takes runtime toggles (worker count,
//! arena budget, checkpoint cadence) through `PUT /config`. Jobs are
//! crash-resumable: a failed or killed experiment retries with
//! `ASCC_RESUME=1` and restores its periodic checkpoints.
//!
//! ```console
//! ascc_serve --addr 127.0.0.1:7090 --root results/serve
//! curl -s -X POST localhost:7090/jobs -d '{"only": ["fig08"]}'
//! curl -s localhost:7090/jobs/job-1
//! curl -s localhost:7090/metrics
//! ```
//!
//! See DESIGN.md §5g and the README "running as a service" section.

use ascc_bench::serve::{cli, run, DaemonOptions};

fn main() {
    let grammar = cli();
    let parsed = grammar.parse();
    let config = parsed.run_config().unwrap_or_else(|e| {
        eprintln!("ascc_serve: {e}");
        std::process::exit(2);
    });
    // In-process mix jobs read the arena/pool env; republish before any
    // simulation work latches a stale value.
    config.apply();
    let addr = parsed
        .value("--addr")
        .unwrap_or("127.0.0.1:7090")
        .to_string();
    let root = parsed.value("--root").unwrap_or("results/serve").into();
    if let Err(e) = run(DaemonOptions { root, config }, &addr) {
        eprintln!("ascc_serve: {e}");
        std::process::exit(1);
    }
}
