//! Table 5 — storage cost of the baseline vs AVGCC, plus the §7 and §8
//! storage accounting (limited counter counts, QoS extension).

use ascc::StorageModel;
use ascc_bench::{print_table, ExperimentRecord};
use cmp_cache::CacheGeometry;

fn main() {
    let geom = CacheGeometry::from_capacity(1 << 20, 8, 32).expect("valid");
    let m = StorageModel::paper(geom);
    let base = m.baseline();
    let avgcc = m.avgcc(geom.sets() as u64);
    let qos = m.qos_avgcc(geom.sets() as u64);

    println!("== Table 5: storage cost, 1MB/8-way/32B cache, 42-bit addresses ==\n");
    print_table(
        &["item".into(), "baseline".into(), "AVGCC".into()],
        &[
            vec![
                "tag-store entry".into(),
                format!("{} bits", m.tag_bits() + m.state_bits),
                format!("{} bits", m.tag_bits() + m.state_bits),
            ],
            vec!["tag entries".into(), "32768".into(), "32768".into()],
            vec![
                "tag store".into(),
                format!("{} kB", base.tag_store_bits / 8 / 1024),
                format!("{} kB", base.tag_store_bits / 8 / 1024),
            ],
            vec!["data store".into(), "1 MB".into(), "1 MB".into()],
            vec![
                "SSL + insertion bits".into(),
                "-".into(),
                format!("{} B", geom.sets() as u64 * 5 / 8),
            ],
            vec!["A/B/D counters".into(), "-".into(), "4 B".into()],
            vec![
                "total extra".into(),
                "0".into(),
                format!(
                    "{} B ({:.2}%)",
                    avgcc.extra_bytes(),
                    avgcc.overhead_fraction() * 100.0
                ),
            ],
        ],
    );

    println!("\n== §7: limited-counter variants ==\n");
    let mut rows = Vec::new();
    for counters in [128u64, 2048, 4096] {
        let c = m.avgcc(counters);
        rows.push(vec![
            format!("{counters} counters"),
            format!("{} B", c.extra_bytes()),
            format!("{:.3}%", c.overhead_fraction() * 100.0),
        ]);
    }
    print_table(
        &["variant".into(), "extra storage".into(), "overhead".into()],
        &rows,
    );

    println!("\n== §8: QoS-aware AVGCC ==\n");
    print_table(
        &["design".into(), "extra storage".into(), "overhead".into()],
        &[
            vec![
                "AVGCC".into(),
                format!("{} B", avgcc.extra_bytes()),
                format!("{:.2}%", avgcc.overhead_fraction() * 100.0),
            ],
            vec![
                "QoS-AVGCC".into(),
                format!("{} B", qos.extra_bytes()),
                format!("{:.2}%", qos.overhead_fraction() * 100.0),
            ],
        ],
    );

    ExperimentRecord {
        id: "table5".into(),
        title: "Storage cost model (bytes of extra storage, overhead fraction)".into(),
        columns: vec!["extra_bytes".into(), "overhead_fraction".into()],
        rows: vec![
            "AVGCC-4096".into(),
            "AVGCC-2048".into(),
            "AVGCC-128".into(),
            "QoS-AVGCC".into(),
        ],
        values: vec![
            vec![avgcc.extra_bytes() as f64, avgcc.overhead_fraction()],
            vec![
                m.avgcc(2048).extra_bytes() as f64,
                m.avgcc(2048).overhead_fraction(),
            ],
            vec![
                m.avgcc(128).extra_bytes() as f64,
                m.avgcc(128).overhead_fraction(),
            ],
            vec![qos.extra_bytes() as f64, qos.overhead_fraction()],
        ],
        paper_reference:
            "2560B+~4B extra (paper: 0.17%); 2048 counters 1284B; 128 counters ~83B; QoS 0.35%"
                .into(),
    }
    .save();
}
