//! Multi-tenant traffic replay: the full policy zoo on sharded-service
//! scenarios (steady Zipf, tenant churn, scan storms, flash crowds,
//! diurnal phase shifts) from 2 to 64 cores.
//!
//! The paper evaluates on SPEC mixes; this experiment asks how the same
//! designs behave under service-style traffic — per-core sharded key
//! spaces with Zipf popularity at millions-of-keys scale, plus the
//! disturbances (churn, scans, flash crowds, diurnal shifts) that
//! dominate cache behaviour in multi-tenant deployments. Each scenario
//! runs the 13-policy zoo against the private-LLC baseline and reports
//! weighted-speedup improvement.
//!
//! Calibration: `TenantParams::steady()` gives every core 32 tenants x
//! 64 k keys (2 M lines, 128 MB of distinct addresses per core), so the
//! keyed working set exceeds the 1 MB private LLC by two orders of
//! magnitude and only the Zipf head is cacheable — baseline L2 MPKI lands
//! in the 10-40 band of Table 3's memory-bound half. The scan and flash
//! scenarios then perturb exactly the set-pressure statistics the
//! set-granular designs monitor.
//!
//! `--cores N` / `ASCC_CORES=N` restricts the sweep to one width (CI
//! smoke runs 4 under `ASCC_QUICK`). Per-core instructions scale down
//! with width — the `scaling_cores` schedule — so wide rows stay
//! tractable. Results go to `results/tenant_traffic.json`.

use ascc_bench::cli::Cli;
use ascc_bench::{parallel_map, print_improvement_table, ExperimentRecord, Policy, Scale};
use cmp_sim::{run_tenant, weighted_speedup_improvement, SystemConfig};
use cmp_trace::TenantScenario;

fn main() {
    let parsed = Cli::new(
        "tenant_traffic",
        "policy zoo on multi-tenant traffic (churn, scans, flash crowds, diurnal)",
    )
    .harness_flags()
    .parse();
    let config = parsed.run_config().unwrap_or_else(|e| {
        eprintln!("tenant_traffic: {e}");
        std::process::exit(2);
    });
    config.apply();
    let scale = Scale::from_env();
    let widths: Vec<usize> = match config.cores {
        Some(n) => vec![n],
        None => vec![2, 8, 64],
    };
    let per = Policy::ZOO.len() + 1;
    println!(
        "tenant_traffic: widths {:?}, {} scenarios x {} policies + baseline, {} base instrs/core",
        widths,
        TenantScenario::ALL.len(),
        Policy::ZOO.len(),
        scale.instrs
    );

    let labels: Vec<String> = Policy::ZOO.iter().map(|p| p.label()).collect();
    let mut rows: Vec<String> = Vec::new();
    let mut values: Vec<Vec<f64>> = Vec::new();
    for &cores in &widths {
        let cfg = SystemConfig::table2(cores);
        // Per-core work shrinks with width (the coherence-scaling
        // schedule), but the disturbance cadences are access-clock
        // constants — churn every 200 k accesses, diurnal dwell 250 k —
        // so the floor is high enough that every row crosses them: at
        // mem_fraction 0.30, a million instructions is ~300 k accesses,
        // one churn event and one phase shift inside the measured window
        // even at 64 cores.
        let row_scale = Scale {
            instrs: (scale.instrs * 2 / cores as u64).max(1_000_000),
            warmup: (scale.warmup * 2 / cores as u64).max(50_000),
            seed: scale.seed,
        };
        let jobs: Vec<(TenantScenario, Option<Policy>)> = TenantScenario::ALL
            .iter()
            .flat_map(|&s| {
                std::iter::once((s, None)).chain(Policy::ZOO.iter().map(move |&p| (s, Some(p))))
            })
            .collect();
        let runs = parallel_map(jobs, |(s, p)| {
            let policy = p.unwrap_or(Policy::Baseline).build(&cfg);
            run_tenant(
                &cfg,
                s,
                policy,
                row_scale.instrs,
                row_scale.warmup,
                row_scale.seed,
            )
        });

        let mut table: Vec<Vec<f64>> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        println!("\ncalibration at {cores} cores (baseline):");
        for (si, s) in TenantScenario::ALL.iter().enumerate() {
            let base = &runs[si * per];
            let instrs: u64 = base.cores.iter().map(|c| c.instrs).sum();
            let misses: u64 = base.cores.iter().map(|c| c.l2_misses()).sum();
            println!(
                "  {:<12} L2 MPKI {:6.2}  CPI {:5.2}",
                s.name(),
                misses as f64 * 1000.0 / instrs as f64,
                base.cores.iter().map(|c| c.cycles).sum::<f64>() / instrs as f64,
            );
            names.push(s.name().to_string());
            table.push(
                (0..Policy::ZOO.len())
                    .map(|pi| weighted_speedup_improvement(&runs[si * per + 1 + pi], base))
                    .collect(),
            );
        }
        let geo = print_improvement_table(
            &format!("tenant traffic at {cores} cores: weighted-speedup improvement"),
            &names,
            &labels,
            &table,
        );
        for (s, row) in names.iter().zip(&table) {
            rows.push(format!("{cores}c {s}"));
            values.push(row.clone());
        }
        rows.push(format!("{cores}c geomean"));
        values.push(geo);
    }

    ExperimentRecord {
        id: "tenant_traffic".into(),
        title: "Multi-tenant traffic scenarios x policy zoo \
                (weighted-speedup improvement over baseline, %)"
            .into(),
        columns: labels,
        rows,
        values,
        paper_reference: "beyond the paper (2012): service-style traffic; set-granular \
                          designs must track churn/scan/flash set-pressure shifts"
            .into(),
    }
    .save();
}
