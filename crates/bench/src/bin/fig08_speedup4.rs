//! Fig. 8 — performance improvement over the baseline for DSR, DSR+DIP,
//! ECC, ASCC and AVGCC, running four applications.
//!
//! Paper reference: ASCC +5.7% and AVGCC +7.8% geomean; both clearly ahead
//! of DSR, DSR+DIP and ECC; DSR+DIP *degrades* DSR with 4 cores.

use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(4);
    let mixes = four_app_mixes();
    let grid = run_grid(&cfg, &mixes, &Policy::HEADLINE, scale);
    let table = grid.speedup_improvements();
    let geo = print_improvement_table(
        "Fig. 8: weighted-speedup improvement over baseline (4 cores)",
        &grid.mixes,
        &grid.policies,
        &table,
    );
    let mut values = table.clone();
    values.push(geo);
    let mut rows = grid.mixes.clone();
    rows.push("geomean".into());
    ExperimentRecord {
        id: "fig08".into(),
        title: "Performance improvement over baseline, 4 cores (weighted speedup)".into(),
        columns: grid.policies.clone(),
        rows,
        values,
        paper_reference:
            "geomean: DSR < DSR+DIP(< DSR at 4 cores) < ECC < ASCC +5.7% < AVGCC +7.8%".into(),
    }
    .save();
}
