//! Design-choice ablations beyond the paper's own (DESIGN.md §7):
//!
//! * swap on/off (§3.2's requested/victim exchange);
//! * exact minimum search vs the approximate hardware Spill Allocator;
//! * BIP/SABIP ε sweep (the paper fixes ε = 1/32);
//! * SSL saturation-range tuning (§9 future work: `2K-1` vs wider).

use ascc::{AsccConfig, SslTuning, StressMetric};
use ascc_bench::{parallel_map, pct, print_table, ExperimentRecord, Policy, Scale};
use cmp_sim::{geomean_improvement, run_mix, weighted_speedup_improvement, SystemConfig};
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(4);
    let mixes = four_app_mixes();
    let (cores, sets, ways) = (cfg.cores, cfg.l2.sets(), cfg.l2.ways());

    type Variant = (&'static str, Box<dyn Fn() -> ascc::AsccPolicy + Sync>);
    let variants: Vec<Variant> = vec![
        (
            "ASCC",
            Box::new(move || AsccConfig::ascc(cores, sets, ways).build()),
        ),
        (
            "no-swap",
            Box::new(move || {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.swap = false;
                c.build()
            }),
        ),
        (
            "hw-allocator",
            Box::new(move || {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.use_spill_allocator = true;
                c.build()
            }),
        ),
        (
            "eps=1/8",
            Box::new(move || {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.bip_epsilon = 1.0 / 8.0;
                c.build()
            }),
        ),
        (
            "eps=1/128",
            Box::new(move || {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.bip_epsilon = 1.0 / 128.0;
                c.build()
            }),
        ),
        (
            "ssl-max=4K",
            Box::new(move || {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.tuning = SslTuning {
                    max_multiplier: 4.0,
                    ..SslTuning::default()
                };
                c.build()
            }),
        ),
        (
            "ewma-metric",
            Box::new(move || {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.tuning = SslTuning {
                    metric: StressMetric::Ewma { shift: 3 },
                    ..SslTuning::default()
                };
                c.build()
            }),
        ),
    ];

    let jobs: Vec<(usize, usize)> = (0..mixes.len())
        .flat_map(|m| (0..=variants.len()).map(move |v| (m, v)))
        .collect();
    let runs = parallel_map(jobs, |(m, v)| {
        let policy: Box<dyn cmp_cache::LlcPolicy> = if v == 0 {
            Policy::Baseline.build(&cfg)
        } else {
            Box::new(variants[v - 1].1())
        };
        run_mix(
            &cfg,
            &mixes[m],
            policy,
            scale.instrs,
            scale.warmup,
            scale.seed,
        )
    });

    let per = variants.len() + 1;
    println!("== Ablations of ASCC design choices (4 cores, geomean over mixes) ==\n");
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for (vi, (name, _)) in variants.iter().enumerate() {
        let imps: Vec<f64> = (0..mixes.len())
            .map(|m| weighted_speedup_improvement(&runs[m * per + 1 + vi], &runs[m * per]))
            .collect();
        let g = geomean_improvement(&imps);
        rows.push(vec![name.to_string(), pct(g)]);
        values.push(vec![g]);
    }
    print_table(&["variant".into(), "speedup".into()], &rows);
    ExperimentRecord {
        id: "ablations".into(),
        title: "ASCC design-choice ablations (geomean speedup, 4 cores)".into(),
        columns: vec!["geomean_speedup".into()],
        rows: variants.iter().map(|(n, _)| n.to_string()).collect(),
        values,
        paper_reference: "extensions beyond the paper: swap, allocator accuracy, eps, SSL range"
            .into(),
    }
    .save();
}
