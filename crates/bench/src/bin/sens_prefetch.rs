//! §6.3 — stride-prefetcher sensitivity: a 16 kB stride prefetcher per LLC
//! in the multiprogrammed experiments.
//!
//! Paper reference: with prefetchers ASCC still gains +6%/+5.5% and AVGCC
//! +6.4%/+7.6% (2/4 cores) — slightly reduced at 2 cores, nearly unchanged
//! at 4 cores where the bandwidth savings matter more.

use ascc_bench::{pct, print_table, run_grid, ExperimentRecord, GridResult, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::{four_app_mixes, two_app_mixes};

fn main() {
    let scale = Scale::from_env();
    let policies = [Policy::Ascc, Policy::Avgcc];
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for (cores, mixes) in [(2usize, two_app_mixes()), (4, four_app_mixes())] {
        for prefetch in [false, true] {
            let mut cfg = SystemConfig::table2(cores);
            if prefetch {
                cfg.prefetch = Some(cmp_cache::PrefetchConfig::default());
            }
            let grid = run_grid(&cfg, &mixes, &policies, scale);
            let geo = GridResult::geomeans(&grid.speedup_improvements());
            rows.push(vec![
                format!(
                    "{} cores{}",
                    cores,
                    if prefetch { " + prefetch" } else { "" }
                ),
                pct(geo[0]),
                pct(geo[1]),
            ]);
            values.push(geo);
        }
    }
    println!("== §6.3: stride-prefetcher sensitivity ==\n");
    print_table(&["config".into(), "ASCC".into(), "AVGCC".into()], &rows);
    ExperimentRecord {
        id: "sens_prefetch".into(),
        title: "ASCC/AVGCC geomean improvement with per-LLC stride prefetchers".into(),
        columns: vec!["ASCC".into(), "AVGCC".into()],
        rows: vec![
            "2core".into(),
            "2core+pf".into(),
            "4core".into(),
            "4core+pf".into(),
        ],
        values,
        paper_reference: "with prefetch: ASCC +6%/+5.5%, AVGCC +6.4%/+7.6% (2/4 cores)".into(),
    }
    .save();
}
