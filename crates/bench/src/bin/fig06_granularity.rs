//! Fig. 6 — illustration of granularity levels, plus a live demonstration
//! of AVGCC's `A`/`B`/`D` machinery adapting the number of counters.

use ascc::AvgccConfig;
use cmp_cache::{AccessOutcome, CoreId, LlcPolicy, SetIdx};

fn main() {
    println!("== Fig. 6: granularity levels for a 16-set cache ==\n");
    for d in (0..=4).rev() {
        let counters = 16u32 >> d;
        let groups: Vec<String> = (0..counters)
            .map(|c| {
                let lo = c << d;
                let hi = ((c + 1) << d) - 1;
                if lo == hi {
                    format!("[{lo}]")
                } else {
                    format!("[{lo}..{hi}]")
                }
            })
            .collect();
        println!(
            "D={d}: {:2} counter(s)  sets {}",
            counters,
            groups.join(" ")
        );
    }

    println!("\n== AVGCC adapting at run time (16 sets, 4 ways) ==\n");
    let mut cfg = AvgccConfig::avgcc(1, 16, 4);
    cfg.epoch_accesses = 64;
    let mut p = cfg.build();
    let core = CoreId(0);
    println!(
        "start: D={} ({} counter) — \"starting with one counter for the whole cache\"",
        p.granularity_log2(core),
        p.counters_in_use(core)
    );

    // Plenty of hits: most counters stay below K -> B high -> refine.
    for i in 0..512u32 {
        p.record_access(
            core,
            SetIdx(i % 16),
            AccessOutcome::Hit {
                spilled: false,
                depth: 0,
            },
        );
    }
    println!(
        "after a hit-rich phase:  D={} ({} counters) — spare capacity, finer tracking",
        p.granularity_log2(core),
        p.counters_in_use(core)
    );

    // Uniform misses: all counters equal and high -> pairs similar -> coarsen.
    for round in 0..64 {
        for i in 0..16u32 {
            let _ = round;
            p.record_access(core, SetIdx(i), AccessOutcome::Miss);
        }
    }
    println!(
        "after uniform pressure:  D={} ({} counters) — adjacent counters redundant, coarser",
        p.granularity_log2(core),
        p.counters_in_use(core)
    );
    println!("\ntotal granularity changes: {}", p.granularity_changes());
}
