//! Renders the JSON records under `results/` into markdown tables — the
//! mechanical part of EXPERIMENTS.md. Commentary is written by hand around
//! the generated blocks.
//!
//! Usage: `report [results-dir]` (prints to stdout).

use cmp_json::Value;

struct Record {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<String>,
    values: Vec<Vec<f64>>,
    paper_reference: String,
}

impl Record {
    fn from_json(v: &Value) -> Result<Record, String> {
        let string = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let strings = |key: &str| -> Result<Vec<String>, String> {
            v.get(key)
                .and_then(Value::as_array)
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|s| s.as_str().map(str::to_string))
                        .collect()
                })
                .ok_or_else(|| format!("missing array field `{key}`"))
        };
        let values = v
            .get("values")
            .and_then(Value::as_array)
            .map(|rows| {
                rows.iter()
                    .map(|row| {
                        row.as_array()
                            .map(|xs| xs.iter().filter_map(Value::as_f64).collect())
                            .unwrap_or_default()
                    })
                    .collect()
            })
            .ok_or("missing array field `values`")?;
        Ok(Record {
            id: string("id")?,
            title: string("title")?,
            columns: strings("columns")?,
            rows: strings("rows")?,
            values,
            paper_reference: string("paper_reference")?,
        })
    }
}

/// Experiment ids whose values are fractions to print as percentages.
fn is_percent(id: &str) -> bool {
    !matches!(
        id,
        "fig01" | "table3" | "table5" | "behavior_spills" | "scaling_cores"
    )
}

fn fmt(id: &str, col: &str, v: f64) -> String {
    if col.contains("bytes") || col.contains("spill") && !col.contains("per") {
        return format!("{v:.0}");
    }
    if col.contains("fraction") || col.contains("overhead") {
        return format!("{:.2}%", v * 100.0);
    }
    if is_percent(id) && v.abs() < 1.5 {
        format!("{:+.1}%", v * 100.0)
    } else {
        format!("{v:.2}")
    }
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let data = std::fs::read_to_string(&path).expect("readable record");
        let r: Record = match Value::parse(&data)
            .map_err(|e| e.to_string())
            .and_then(|v| {
                Record::from_json(&v).map_err(|e| format!("not an experiment record: {e}"))
            }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        println!("### {} — {}\n", r.id, r.title);
        println!("*Paper:* {}\n", r.paper_reference);
        println!("|  | {} |", r.columns.join(" | "));
        println!("|{}", "---|".repeat(r.columns.len() + 1));
        for (name, vals) in r.rows.iter().zip(&r.values) {
            let cells: Vec<String> = vals
                .iter()
                .zip(&r.columns)
                .map(|(&v, c)| fmt(&r.id, c, v))
                .collect();
            println!("| {} | {} |", name, cells.join(" | "));
        }
        println!();
    }
}
