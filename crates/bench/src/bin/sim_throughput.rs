//! End-to-end simulator throughput: simulated L1 accesses per wall-clock
//! second, per policy, at one worker and at the machine's worker count.
//!
//! This is the engine-level benchmark the cache-arena layout and the
//! [`cmp_sim::SweepPool`] fan-out are aimed at: each row sweeps the same
//! four 2-app mixes under one policy and divides the simulated accesses of
//! the measured windows by the wall-clock of the whole sweep (warmup
//! included, identically in every row). Results go to stdout and to
//! `BENCH_throughput.json` in the current directory.
//!
//! `ASCC_QUICK=1` gives a fast smoke run; `ASCC_INSTRS`/`ASCC_WARMUP`
//! rescale as usual. `ASCC_JOBS` sets the "many workers" worker count
//! (default: available parallelism); the one-worker rows are always
//! measured with an explicit single-worker pool.

use ascc_bench::{print_table, Policy, Scale};
use cmp_json::Value;
use cmp_sim::{run_mix, RunResult, SweepPool, SystemConfig};
use cmp_trace::two_app_mixes;

const POLICIES: [Policy; 4] = [
    Policy::Baseline,
    Policy::Ascc,
    Policy::Avgcc,
    Policy::QosAvgcc,
];
const MIXES: usize = 4;

struct Row {
    policy: String,
    jobs: usize,
    wall_s: f64,
    accesses: u64,
}

impl Row {
    fn per_sec(&self) -> f64 {
        self.accesses as f64 / self.wall_s.max(1e-9)
    }
}

fn simulated_accesses(runs: &[RunResult]) -> u64 {
    runs.iter()
        .flat_map(|r| &r.cores)
        .map(|c| c.l1_accesses)
        .sum()
}

fn sweep(cfg: &SystemConfig, policy: Policy, scale: Scale, pool: SweepPool) -> Row {
    let mixes = two_app_mixes();
    let t0 = std::time::Instant::now();
    let runs = pool.map((0..MIXES).collect(), |m| {
        run_mix(
            cfg,
            &mixes[m],
            policy.build(cfg),
            scale.instrs,
            scale.warmup,
            scale.seed,
        )
    });
    Row {
        policy: policy.label(),
        jobs: pool.jobs(),
        wall_s: t0.elapsed().as_secs_f64(),
        accesses: simulated_accesses(&runs),
    }
}

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(2);
    let many = SweepPool::from_env();
    println!(
        "sim_throughput: {} mixes x {} policies, {} + {} worker(s), {} instrs/core",
        MIXES,
        POLICIES.len(),
        1,
        many.jobs(),
        scale.instrs
    );

    let mut rows = Vec::new();
    for policy in POLICIES {
        rows.push(sweep(&cfg, policy, scale, SweepPool::with_jobs(1)));
        if many.jobs() > 1 {
            rows.push(sweep(&cfg, policy, scale, many));
        }
    }
    if many.jobs() == 1 {
        println!("(single-core host: skipping the many-worker rows)");
    }

    let headers = ["policy", "jobs", "wall s", "accesses", "acc/s"]
        .map(String::from)
        .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.jobs.to_string(),
                format!("{:.2}", r.wall_s),
                r.accesses.to_string(),
                format!("{:.0}", r.per_sec()),
            ]
        })
        .collect();
    println!();
    print_table(&headers, &table);

    let json = Value::object()
        .insert("bench", "sim_throughput")
        .insert(
            "scale",
            Value::object()
                .insert("instrs", scale.instrs as f64)
                .insert("warmup", scale.warmup as f64)
                .insert("seed", scale.seed as f64),
        )
        .insert("mixes", MIXES as f64)
        .insert(
            "rows",
            Value::Array(
                rows.iter()
                    .map(|r| {
                        Value::object()
                            .insert("policy", r.policy.clone())
                            .insert("jobs", r.jobs as f64)
                            .insert("wall_s", r.wall_s)
                            .insert("accesses", r.accesses as f64)
                            .insert("accesses_per_sec", r.per_sec())
                    })
                    .collect(),
            ),
        );
    let path = "BENCH_throughput.json";
    std::fs::write(path, json.pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\n[saved {path}]");
}
