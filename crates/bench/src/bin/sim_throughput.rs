//! End-to-end simulator throughput: simulated L1 accesses per wall-clock
//! second, per policy, per access front-end (streaming generation vs
//! shared materialized-trace replay vs the batched event loop over replay),
//! at one worker and at the machine's worker count.
//!
//! This is the engine-level benchmark the cache-arena layout, the
//! [`cmp_sim::SweepPool`] fan-out and the trace arena are aimed at: each
//! row sweeps the same four 2-app mixes under one policy and divides the
//! simulated accesses of the measured windows by the wall-clock of the
//! whole sweep (warmup included, identically in every row). The
//! `streaming` rows regenerate every access from the workload generator
//! stack (the pre-arena engine); the `arena` rows replay shared
//! materialized chunks through the per-access interleave; the `batched`
//! rows drain those chunks through the batched event loop (DESIGN.md §5h)
//! — all measured with the arena warm (one untimed warming sweep runs
//! first). A generator-only microbenchmark separates front-end cost from
//! engine cost. Per-worker rates are reported next to the aggregate, since
//! the engine target (≥25M acc/s per core) is a per-worker number.
//! Results go to stdout and to `BENCH_throughput.json` (override with
//! `ASCC_BENCH_OUT`). `--check-batched` exits nonzero when the batched
//! front-end is slower than streaming — the CI regression gate.
//!
//! `ASCC_QUICK=1` gives a fast smoke run; `ASCC_INSTRS`/`ASCC_WARMUP`
//! rescale as usual. `--jobs` (or `ASCC_JOBS`) sets the "many workers"
//! worker count (default: available parallelism); the one-worker rows are
//! always measured with an explicit single-worker pool. `--cores` (or
//! `ASCC_CORES`) sets the simulated core count of the main sweep
//! (default 2). `ASCC_TRACE_CACHE=0` disables the arena, making the
//! `arena` rows a second streaming measurement (the JSON records
//! `trace_cache` so the two configurations stay distinguishable in
//! archived results). See `--help` for the full flag ↔ env mapping.
//!
//! A coherence-scaling section follows the main sweep: ASCC at 4/8/16/32
//! cores (or just `--cores` when given) on both coherence fabrics,
//! reporting tag probes per L1 access. Broadcast probes grow with the
//! core count; the sharer-bitmask directory's stay flat — that contrast
//! is the `scaling` block of the JSON artifact, and `--check-batched`
//! also fails if the directory ever probes more than broadcast or falls
//! behind it in throughput.

use ascc_bench::cli::Cli;
use ascc_bench::scaling::{scaling_sweep, scaling_table};
use ascc_bench::{print_table, Policy, Scale};
use cmp_coherence::FabricKind;
use cmp_json::Value;
use cmp_sim::{mix_sources, mix_workloads, CmpSystem, RunResult, SweepPool, SystemConfig};
use cmp_trace::{mixes_for, trace_cache_enabled, AccessStream, WorkloadMix};

const POLICIES: [Policy; 4] = [
    Policy::Baseline,
    Policy::Ascc,
    Policy::Avgcc,
    Policy::QosAvgcc,
];
const MIXES: usize = 4;

#[derive(Clone, Copy, PartialEq)]
enum FrontEnd {
    Streaming,
    Arena,
    Batched,
}

impl FrontEnd {
    fn label(self) -> &'static str {
        match self {
            FrontEnd::Streaming => "streaming",
            FrontEnd::Arena => "arena",
            FrontEnd::Batched => "batched",
        }
    }
}

const FRONT_ENDS: [FrontEnd; 3] = [FrontEnd::Streaming, FrontEnd::Arena, FrontEnd::Batched];

struct Row {
    policy: String,
    policy_enum: Policy,
    front_end: FrontEnd,
    jobs: usize,
    wall_s: f64,
    accesses: u64,
}

impl Row {
    fn per_sec(&self) -> f64 {
        self.accesses as f64 / self.wall_s.max(1e-9)
    }

    /// Engine rate per worker thread — the per-core number the ≥25M
    /// acc/s/core target is stated against.
    fn per_sec_per_worker(&self) -> f64 {
        self.per_sec() / self.jobs.max(1) as f64
    }
}

fn simulated_accesses(runs: &[RunResult]) -> u64 {
    runs.iter()
        .flat_map(|r| &r.cores)
        .map(|c| c.l1_accesses)
        .sum()
}

fn run_one(
    cfg: &SystemConfig,
    mix: &WorkloadMix,
    policy: Policy,
    scale: Scale,
    front_end: FrontEnd,
) -> RunResult {
    // Explicit run_streaming/run_batched (not env-dispatched run()) so all
    // three rows are measured in one process regardless of ASCC_BATCH.
    match front_end {
        FrontEnd::Streaming => CmpSystem::new(
            cfg.clone(),
            policy.build(cfg),
            mix_workloads(mix, scale.seed),
        )
        .run_streaming(scale.instrs, scale.warmup),
        FrontEnd::Arena => {
            CmpSystem::from_sources(cfg.clone(), policy.build(cfg), mix_sources(mix, scale.seed))
                .run_streaming(scale.instrs, scale.warmup)
        }
        FrontEnd::Batched => {
            CmpSystem::from_sources(cfg.clone(), policy.build(cfg), mix_sources(mix, scale.seed))
                .run_batched(scale.instrs, scale.warmup)
        }
    }
}

fn sweep(
    cfg: &SystemConfig,
    mixes: &[WorkloadMix],
    policy: Policy,
    scale: Scale,
    pool: SweepPool,
    front_end: FrontEnd,
) -> Row {
    let t0 = std::time::Instant::now();
    let runs = pool.map((0..MIXES.min(mixes.len())).collect(), |m| {
        run_one(cfg, &mixes[m], policy, scale, front_end)
    });
    Row {
        policy: policy.label(),
        policy_enum: policy,
        front_end,
        jobs: pool.jobs(),
        wall_s: t0.elapsed().as_secs_f64(),
        accesses: simulated_accesses(&runs),
    }
}

/// Pure front-end rates, no simulator behind them: accesses/sec of live
/// generation vs warm materialized replay over the first mix.
fn generator_rates(mix: &WorkloadMix, scale: Scale, accesses: u64) -> (f64, f64) {
    let n = mix.cores() as u64;
    let per_core = (accesses / n).max(1);

    let mut ws = mix_workloads(mix, scale.seed);
    let t0 = std::time::Instant::now();
    let mut sink = 0u64;
    for w in &mut ws {
        for _ in 0..per_core {
            sink = sink.wrapping_add(w.stream.next_access().addr.raw());
        }
    }
    let streaming = (per_core * n) as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Warm pass materializes the chunks; the timed pass replays them.
    for s in &mut mix_sources(mix, scale.seed) {
        for _ in 0..per_core {
            sink = sink.wrapping_add(s.feed.next_access().addr.raw());
        }
    }
    let mut srcs = mix_sources(mix, scale.seed);
    let t1 = std::time::Instant::now();
    for s in &mut srcs {
        for _ in 0..per_core {
            sink = sink.wrapping_add(s.feed.next_access().addr.raw());
        }
    }
    let replay = (per_core * n) as f64 / t1.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(sink);
    (streaming, replay)
}

fn main() {
    let parsed = Cli::new(
        "sim_throughput",
        "simulated accesses per wall-clock second, per policy and front-end",
    )
    .flag(
        "--check-batched",
        "exit nonzero if batched acc/s falls below streaming (CI gate)",
    )
    .harness_flags()
    .parse();
    let config = parsed.run_config().unwrap_or_else(|e| {
        eprintln!("sim_throughput: {e}");
        std::process::exit(2);
    });
    // Republish before the pool and arena latch their first env read.
    config.apply();
    let scale = Scale::from_env();
    let cores = config.cores.unwrap_or(2);
    let cfg = SystemConfig::table2(cores);
    let mixes = mixes_for(cores);
    let many = SweepPool::from_env();
    println!(
        "sim_throughput: {} cores, {} mixes x {} policies x 3 front-ends, {} + {} worker(s), {} instrs/core (trace cache {})",
        cores,
        MIXES.min(mixes.len()),
        POLICIES.len(),
        1,
        many.jobs(),
        scale.instrs,
        if trace_cache_enabled() { "on" } else { "off" },
    );

    let gen_accesses = (scale.instrs / 2).clamp(200_000, 8_000_000);
    let (gen_streaming, gen_replay) = generator_rates(&mixes[0], scale, gen_accesses);
    println!(
        "generator only: streaming {gen_streaming:.0} acc/s, warm replay {gen_replay:.0} acc/s ({:.2}x)",
        gen_replay / gen_streaming.max(1e-9)
    );

    // Warm the arena outside any timed window so the `arena` rows measure
    // replay, not first-touch materialization.
    for mix in mixes.iter().take(MIXES) {
        let _ = run_one(&cfg, mix, Policy::Baseline, scale, FrontEnd::Arena);
    }

    let mut rows = Vec::new();
    for policy in POLICIES {
        for fe in FRONT_ENDS {
            rows.push(sweep(
                &cfg,
                &mixes,
                policy,
                scale,
                SweepPool::with_jobs(1),
                fe,
            ));
            if many.jobs() > 1 {
                rows.push(sweep(&cfg, &mixes, policy, scale, many, fe));
            }
        }
    }
    if many.jobs() == 1 {
        println!("(single-core host: skipping the many-worker rows)");
    }

    let headers = [
        "policy",
        "front end",
        "jobs",
        "wall s",
        "accesses",
        "acc/s",
        "acc/s/worker",
    ]
    .map(String::from)
    .to_vec();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.front_end.label().to_string(),
                r.jobs.to_string(),
                format!("{:.2}", r.wall_s),
                r.accesses.to_string(),
                format!("{:.0}", r.per_sec()),
                format!("{:.0}", r.per_sec_per_worker()),
            ]
        })
        .collect();
    println!();
    print_table(&headers, &table);

    // Before/after per (policy, jobs): each upgraded front-end over its
    // predecessor (arena over streaming, batched over both).
    let pairs = [
        (FrontEnd::Streaming, FrontEnd::Arena),
        (FrontEnd::Streaming, FrontEnd::Batched),
        (FrontEnd::Arena, FrontEnd::Batched),
    ];
    let mut speedups: Vec<Value> = Vec::new();
    let mut batched_regressed = false;
    // The arena gate tolerates a little noise: the batched loop's chunk
    // scheduling costs a few percent on the cheapest policies, and two
    // timed sweeps of the same binary jitter by about as much. Default
    // 0.95, overridable for stricter or looser CI machines. Quick runs
    // (sub-second walls) only enforce the original streaming floor —
    // ratios between 0.05 s measurements are noise, not regressions.
    let quick = std::env::var("ASCC_QUICK").is_ok_and(|v| v != "0");
    let arena_slack = std::env::var("ASCC_BATCHED_SLACK")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| (0.0..=1.0).contains(s))
        .unwrap_or(if quick { 0.0 } else { 0.95 });
    for (base_fe, new_fe) in pairs {
        for after in rows.iter().filter(|r| r.front_end == new_fe) {
            let Some(before) = rows.iter().find(|b| {
                b.front_end == base_fe && b.policy == after.policy && b.jobs == after.jobs
            }) else {
                continue;
            };
            let s = after.per_sec() / before.per_sec().max(1e-9);
            println!(
                "speedup {} over {} {} jobs={}: {:.2}x ({:.0} -> {:.0} acc/s)",
                new_fe.label(),
                base_fe.label(),
                after.policy,
                after.jobs,
                s,
                before.per_sec(),
                after.per_sec()
            );
            if new_fe == FrontEnd::Batched {
                // Gate per policy: batched must beat streaming outright and
                // stay within `arena_slack` of the arena row. Quick smoke
                // runs relax the streaming floor to 0.85: their sub-second
                // walls jitter ~10% on a shared host, so parity engines
                // trip a strict 1.0 floor on noise alone, while a real
                // engine regression (the pre-adaptive batched loop ran at
                // 0.7-0.8x of streaming at 16 cores) still fails.
                let floor = match base_fe {
                    FrontEnd::Streaming if quick => 0.85,
                    FrontEnd::Streaming => 1.0,
                    FrontEnd::Arena => arena_slack,
                    FrontEnd::Batched => continue,
                };
                if s < floor {
                    // One sample below the floor on a shared host is not
                    // yet a regression: re-measure the pair with fresh
                    // paired sweeps and gate on the best ratio observed. A
                    // real slowdown fails every retry; scheduler jitter
                    // and cold-cache bad luck do not.
                    let mut best = s;
                    for retry in 1..=2 {
                        if best >= floor {
                            break;
                        }
                        let pool = SweepPool::with_jobs(after.jobs);
                        let b = sweep(&cfg, &mixes, after.policy_enum, scale, pool, base_fe);
                        let pool = SweepPool::with_jobs(after.jobs);
                        let a = sweep(&cfg, &mixes, after.policy_enum, scale, pool, new_fe);
                        let r = a.per_sec() / b.per_sec().max(1e-9);
                        println!(
                            "  re-measure #{retry} {} over {} {} jobs={}: {:.2}x",
                            new_fe.label(),
                            base_fe.label(),
                            after.policy,
                            after.jobs,
                            r
                        );
                        best = best.max(r);
                    }
                    if best < floor {
                        eprintln!(
                            "regression: batched {best}x of {} on {} jobs={} (floor {floor:.2})",
                            base_fe.label(),
                            after.policy,
                            after.jobs,
                        );
                        batched_regressed = true;
                    }
                }
            }
            speedups.push(
                Value::object()
                    .insert("policy", after.policy.clone())
                    .insert("jobs", after.jobs as f64)
                    .insert("baseline_front_end", base_fe.label())
                    .insert("front_end", new_fe.label())
                    .insert("baseline_acc_per_sec", before.per_sec())
                    .insert("acc_per_sec", after.per_sec())
                    .insert("speedup", s),
            );
        }
    }
    let best_per_worker = rows
        .iter()
        .filter(|r| r.front_end == FrontEnd::Batched)
        .map(|r| r.per_sec_per_worker())
        .fold(0.0f64, f64::max);
    const TARGET_PER_WORKER: f64 = 25_000_000.0;
    println!(
        "batched peak {:.1}M acc/s/worker vs the 25M target: {}",
        best_per_worker / 1e6,
        if best_per_worker >= TARGET_PER_WORKER {
            "met"
        } else {
            "not met"
        }
    );

    // Coherence scaling: broadcast vs directory across core counts.
    let scaling_cores: Vec<usize> = match config.cores {
        Some(n) => vec![n],
        None => vec![4, 8, 16, 32],
    };
    let scaling = scaling_sweep(&scaling_cores, scale);
    println!();
    let (sc_headers, sc_table) = scaling_table(&scaling);
    print_table(&sc_headers, &sc_table);
    let mut directory_regressed = false;
    for d in scaling.iter().filter(|r| r.fabric == FabricKind::Directory) {
        let Some(b) = scaling
            .iter()
            .find(|r| r.fabric == FabricKind::Broadcast && r.cores == d.cores)
        else {
            continue;
        };
        println!(
            "scaling {} cores: directory {:.2}x broadcast throughput, {:.1}% of its probes",
            d.cores,
            d.per_sec() / b.per_sec().max(1e-9),
            100.0 * d.probes as f64 / b.probes.max(1) as f64
        );
        // Probe counts are deterministic and gate everywhere; the
        // throughput comparison is only meaningful at full scale.
        if d.probes > b.probes || (!quick && d.per_sec() < b.per_sec()) {
            eprintln!(
                "regression: directory fabric worse than broadcast at {} cores",
                d.cores
            );
            directory_regressed = true;
        }
    }

    let json = Value::object()
        .insert("bench", "sim_throughput")
        .insert("cores", cores as f64)
        .insert("trace_cache", trace_cache_enabled())
        .insert(
            "scale",
            Value::object()
                .insert("instrs", scale.instrs as f64)
                .insert("warmup", scale.warmup as f64)
                .insert("seed", scale.seed as f64),
        )
        .insert("mixes", MIXES as f64)
        .insert(
            "generator",
            Value::object()
                .insert("accesses", gen_accesses as f64)
                .insert("streaming_acc_per_sec", gen_streaming)
                .insert("replay_acc_per_sec", gen_replay),
        )
        .insert(
            "rows",
            Value::Array(
                rows.iter()
                    .map(|r| {
                        Value::object()
                            .insert("policy", r.policy.clone())
                            .insert("front_end", r.front_end.label())
                            .insert("jobs", r.jobs as f64)
                            .insert("wall_s", r.wall_s)
                            .insert("accesses", r.accesses as f64)
                            .insert("accesses_per_sec", r.per_sec())
                            .insert("accesses_per_sec_per_worker", r.per_sec_per_worker())
                    })
                    .collect(),
            ),
        )
        .insert("speedups", Value::Array(speedups))
        .insert(
            "scaling",
            Value::Array(
                scaling
                    .iter()
                    .map(|r| {
                        Value::object()
                            .insert("cores", r.cores as f64)
                            .insert("fabric", r.fabric.label())
                            .insert("wall_s", r.wall_s)
                            .insert("accesses", r.accesses as f64)
                            .insert("accesses_per_sec", r.per_sec())
                            .insert("snoops", r.snoops as f64)
                            .insert("probes", r.probes as f64)
                            .insert("probes_per_access", r.probes_per_access())
                    })
                    .collect(),
            ),
        )
        .insert(
            "target",
            Value::object()
                .insert("batched_acc_per_sec_per_worker", TARGET_PER_WORKER)
                .insert("best_batched_acc_per_sec_per_worker", best_per_worker)
                .insert("met", best_per_worker >= TARGET_PER_WORKER),
        );
    let path = config
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_throughput.json".into());
    ascc_bench::atomic_write_text(&path, &json.pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\n[saved {}]", path.display());

    if parsed.has("--check-batched") && (batched_regressed || directory_regressed) {
        if batched_regressed {
            eprintln!("sim_throughput: batched front-end regressed (see speedups)");
        }
        if directory_regressed {
            eprintln!("sim_throughput: directory fabric regressed vs broadcast (see scaling)");
        }
        std::process::exit(1);
    }
}
