//! Fig. 5 — the value of the neutral state: ASCC vs a 2-state ASCC, and
//! DSR vs a 3-state DSR, on the six four-application mixes.
//!
//! Paper reference: DSR-3S achieves ~9% more improvement than DSR;
//! ASCC-2S's improvement is ~10% smaller than ASCC's.

use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(4);
    let policies = [Policy::Ascc, Policy::Ascc2s, Policy::Dsr, Policy::Dsr3s];
    let grid = run_grid(&cfg, &four_app_mixes(), &policies, scale);
    let table = grid.speedup_improvements();
    let geo = print_improvement_table(
        "Fig. 5: neutral-state value (4 cores)",
        &grid.mixes,
        &grid.policies,
        &table,
    );
    let mut values = table.clone();
    values.push(geo);
    let mut rows = grid.mixes.clone();
    rows.push("geomean".into());
    ExperimentRecord {
        id: "fig05".into(),
        title: "Neutral state: ASCC vs ASCC-2S, DSR vs DSR-3S".into(),
        columns: grid.policies.clone(),
        rows,
        values,
        paper_reference: "ASCC > ASCC-2S (~10% relative); DSR-3S > DSR (~9% relative)".into(),
    }
    .save();
}
