//! Observability dynamics — per-epoch time series of the mechanisms the
//! end-of-run tables average away: SSL class occupancy (how many sets of
//! each core are Receiver/Neutral/Spiller over time), the core→core
//! spill-flow matrix, and AVGCC's granularity (`D`) trajectory.
//!
//! Not a paper artefact: the paper only reports end-of-run aggregates.
//! This binary attaches an [`EpochRecorder`] probe to the simulator and
//! dumps the full recording as JSON under `results/` (one file per
//! mix × policy), for one two-core and one four-core mix each under ASCC
//! and AVGCC.
//!
//! Epoch length is `ASCC_OBS_EPOCH` global L2 accesses (default scales
//! with `ASCC_INSTRS`).

use ascc_bench::cli::Cli;
use ascc_bench::{parallel_map, print_table, Policy, Scale};
use cmp_json::Value;
use cmp_sim::{mix_sources, CmpSystem, EpochRecorder, SystemConfig};
use cmp_trace::{four_app_mixes, two_app_mixes, WorkloadMix};
use std::path::Path;

fn epoch_len(scale: &Scale) -> u64 {
    std::env::var("ASCC_OBS_EPOCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| (scale.instrs / 50).max(1_000))
}

struct Recording {
    mix: String,
    policy: Policy,
    cores: usize,
    recorder: EpochRecorder,
}

fn record(mix: &WorkloadMix, policy: Policy, scale: Scale, epoch: u64) -> Recording {
    let cfg = SystemConfig::table2(mix.cores());
    let mut recorder = EpochRecorder::new(mix.cores());
    let mut sys = CmpSystem::with_probe_sources(
        cfg.clone(),
        policy.build(&cfg),
        mix_sources(mix, scale.seed),
        &mut recorder,
        epoch,
    );
    sys.run(scale.instrs, scale.warmup);
    drop(sys);
    recorder.finish();
    Recording {
        mix: mix.name.clone(),
        policy,
        cores: mix.cores(),
        recorder,
    }
}

fn save(r: &Recording, scale: Scale, epoch: u64, out_dir: &Path) {
    let doc = Value::object()
        .insert("mix", r.mix.clone())
        .insert("policy", r.policy.label())
        .insert("epoch_accesses", epoch as f64)
        .insert("instrs", scale.instrs as f64)
        .insert("warmup", scale.warmup as f64)
        .insert("seed", scale.seed as f64)
        .insert("recording", r.recorder.to_json());
    let path = out_dir.join(format!(
        "obs_dynamics_{}core_{}.json",
        r.cores,
        r.policy.label().to_lowercase()
    ));
    ascc_bench::atomic_write_text(&path, &doc.pretty())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[saved {}]", path.display());
}

/// Picks at most `n` epoch indices evenly across the closed epochs.
fn sampled(total: usize, n: usize) -> Vec<usize> {
    if total <= n {
        return (0..total).collect();
    }
    (0..n).map(|i| i * (total - 1) / (n - 1)).collect()
}

fn render_roles(r: &Recording) {
    println!(
        "\n== SSL class occupancy over time — {} under {} ==",
        r.mix,
        r.policy.label()
    );
    println!("(sets per class: receiver/neutral/spiller, per core)");
    let epochs = r.recorder.epochs();
    let mut headers = vec!["epoch".to_string()];
    headers.extend((0..r.cores).map(|c| format!("core{c} r/n/s")));
    let rows: Vec<Vec<String>> = sampled(epochs.len(), 12)
        .into_iter()
        .filter_map(|i| {
            let snap = epochs[i].snapshot.as_ref()?;
            let mut row = vec![epochs[i].index.to_string()];
            for pc in &snap.per_core {
                row.push(match pc.roles {
                    Some(h) => format!("{}/{}/{}", h.receiver, h.neutral, h.spiller),
                    None => "-".into(),
                });
            }
            Some(row)
        })
        .collect();
    print_table(&headers, &rows);
}

fn render_spill_matrix(r: &Recording) {
    println!(
        "\n== Spill flow (whole run) — {} under {} ==",
        r.mix,
        r.policy.label()
    );
    let m = &r.recorder.totals().spill_matrix;
    let mut headers = vec!["from\\to".to_string()];
    headers.extend((0..r.cores).map(|c| format!("core{c}")));
    let rows: Vec<Vec<String>> = m
        .iter()
        .enumerate()
        .map(|(from, row)| {
            let mut cells = vec![format!("core{from}")];
            cells.extend(row.iter().map(|x| x.to_string()));
            cells
        })
        .collect();
    print_table(&headers, &rows);
}

fn render_d_trajectory(r: &Recording) {
    println!(
        "\n== AVGCC granularity (D = log2 sets/counter) trajectory — {} ==",
        r.mix
    );
    let epochs = r.recorder.epochs();
    let mut headers = vec!["epoch".to_string()];
    headers.extend((0..r.cores).map(|c| format!("core{c} D")));
    let rows: Vec<Vec<String>> = sampled(epochs.len(), 12)
        .into_iter()
        .filter_map(|i| {
            let snap = epochs[i].snapshot.as_ref()?;
            let mut row = vec![epochs[i].index.to_string()];
            for pc in &snap.per_core {
                row.push(match pc.granularity_log2 {
                    Some(d) => d.to_string(),
                    None => "-".into(),
                });
            }
            Some(row)
        })
        .collect();
    print_table(&headers, &rows);
}

fn main() {
    let parsed = Cli::new(
        "obs_dynamics",
        "per-epoch time series of SSL roles, spill flows and AVGCC granularity",
    )
    .harness_flags()
    .parse();
    let config = parsed.run_config().unwrap_or_else(|e| {
        eprintln!("obs_dynamics: {e}");
        std::process::exit(2);
    });
    // Republish before the pool and arena latch their first env read.
    config.apply();
    // `--out` here names the directory the per-(mix, policy) recordings
    // land in (this binary writes several files, not one).
    let out_dir = config.out.clone().unwrap_or_else(|| "results".into());
    let scale = Scale::from_env();
    let epoch = epoch_len(&scale);
    println!(
        "observation epochs of {epoch} global L2 accesses ({} measured / {} warmup instrs)",
        scale.instrs, scale.warmup
    );
    let mixes = [two_app_mixes().remove(0), four_app_mixes().remove(0)];
    let jobs: Vec<(WorkloadMix, Policy)> = mixes
        .iter()
        .flat_map(|m| [(m.clone(), Policy::Ascc), (m.clone(), Policy::Avgcc)])
        .collect();
    let recordings = parallel_map(jobs, |(mix, policy)| record(&mix, policy, scale, epoch));
    for r in &recordings {
        save(r, scale, epoch, &out_dir);
        println!(
            "\n{} under {}: {} epochs recorded, {} spills, {} insertion-mode switches",
            r.mix,
            r.policy.label(),
            r.recorder.epochs().len(),
            r.recorder.totals().spills(),
            r.recorder.totals().insertion_switches.iter().sum::<u64>(),
        );
        render_roles(r);
        render_spill_matrix(r);
        if r.policy == Policy::Avgcc {
            render_d_trajectory(r);
        }
    }
}
