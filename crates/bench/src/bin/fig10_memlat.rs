//! Fig. 10 — average memory latency (sequential assumption) normalised to
//! the baseline, with the breakdown of L2 accesses into local hits, remote
//! hits and memory, for the two-application mixes.
//!
//! Paper reference (2 cores): DSR −5%, DSR+DIP −12%, ECC −1%, ASCC −18%,
//! AVGCC −22%. For 4 cores (printed as a second table): DSR −10%,
//! DSR+DIP −14%, ECC −11%, ASCC −21%, AVGCC −27%. ASCC/AVGCC degrade
//! 429+401 because local hits become remote hits.

use ascc_bench::{pct, print_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::{geomean_improvement, SystemConfig};
use cmp_trace::{four_app_mixes, two_app_mixes};

fn run_for(cores: usize, scale: Scale) -> (Vec<String>, Vec<String>, Vec<Vec<f64>>) {
    let cfg = SystemConfig::table2(cores);
    let mixes = if cores == 2 {
        two_app_mixes()
    } else {
        four_app_mixes()
    };
    let grid = run_grid(&cfg, &mixes, &Policy::HEADLINE, scale);
    println!("\n== Fig. 10 ({cores} cores): normalised AML and access breakdown ==");
    let lat = (cfg.lat_l2_local, cfg.lat_l2_remote, cfg.lat_mem);
    let mut headers = vec!["workload".to_string()];
    for p in &grid.policies {
        headers.push(format!("{p} AML"));
    }
    headers.push("base local/rem/mem".into());
    headers.push("AVGCC local/rem/mem".into());
    let mut rows = Vec::new();
    let mut improvements: Vec<Vec<f64>> = Vec::new();
    for (m, name) in grid.mixes.iter().enumerate() {
        let base_aml = grid.baselines[m].aml(lat.0, lat.1, lat.2);
        let mut row = vec![name.clone()];
        let mut imp_row = Vec::new();
        for (p, _) in grid.policies.iter().enumerate() {
            let aml = grid.runs[m][p].aml(lat.0, lat.1, lat.2);
            let reduction = 1.0 - aml / base_aml;
            imp_row.push(reduction);
            row.push(pct(reduction));
        }
        let fmt_bd = |r: &cmp_sim::RunResult| {
            let (l, rm, mm) = r.access_breakdown();
            format!("{:.0}/{:.0}/{:.0}%", l * 100.0, rm * 100.0, mm * 100.0)
        };
        row.push(fmt_bd(&grid.baselines[m]));
        row.push(fmt_bd(grid.runs[m].last().expect("AVGCC column")));
        rows.push(row);
        improvements.push(imp_row);
    }
    // Geomean row of AML reductions.
    let geo: Vec<f64> = (0..grid.policies.len())
        .map(|p| geomean_improvement(&improvements.iter().map(|r| -r[p]).collect::<Vec<_>>()))
        .map(|g| -g)
        .collect();
    let mut grow = vec!["geomean".to_string()];
    grow.extend(geo.iter().map(|&g| pct(g)));
    grow.push(String::new());
    grow.push(String::new());
    rows.push(grow);
    print_table(&headers, &rows);

    // §6.2's closing claim: the latency reduction translates into memory-
    // hierarchy power savings (paper: 25% at 2 cores, 29% at 4 for AVGCC).
    let energy = cmp_sim::EnergyModel::default();
    print!("energy-model power reduction (geomean):");
    for (p, label) in grid.policies.iter().enumerate() {
        let per_mix: Vec<f64> = (0..grid.mixes.len())
            .map(|m| -energy.power_reduction(&grid.runs[m][p], &grid.baselines[m]))
            .collect();
        print!("  {label} {}", pct(-geomean_improvement(&per_mix)));
    }
    println!();

    let mut values = improvements;
    values.push(geo);
    let mut row_names = grid.mixes.clone();
    row_names.push("geomean".into());
    (grid.policies.clone(), row_names, values)
}

fn main() {
    let scale = Scale::from_env();
    let (cols, rows, values) = run_for(2, scale);
    ExperimentRecord {
        id: "fig10".into(),
        title: "Average memory latency reduction vs baseline, 2 cores".into(),
        columns: cols,
        rows,
        values,
        paper_reference: "2 cores: DSR 5%, DSR+DIP 12%, ECC 1%, ASCC 18%, AVGCC 22%".into(),
    }
    .save();
    let (cols, rows, values) = run_for(4, scale);
    ExperimentRecord {
        id: "fig10_4core".into(),
        title: "Average memory latency reduction vs baseline, 4 cores (§6.2 text)".into(),
        columns: cols,
        rows,
        values,
        paper_reference: "4 cores: DSR 10%, DSR+DIP 14%, ECC 11%, ASCC 21%, AVGCC 27%".into(),
    }
    .save();
}
