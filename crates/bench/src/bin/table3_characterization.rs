//! Table 3 — benchmark characterisation: L2 MPKI and CPI of every modelled
//! benchmark running alone on the baseline.

use ascc_bench::{parallel_map, print_table, ExperimentRecord, Scale};
use cmp_sim::{run_solo, SystemConfig};
use cmp_trace::SpecBench;

fn main() {
    let scale = Scale::from_env();
    let results = parallel_map(SpecBench::ALL.to_vec(), |b| {
        let cfg = SystemConfig::table2(1);
        let r = run_solo(&cfg, b, scale.instrs, scale.warmup, scale.seed);
        (b, r.l2_mpki(), r.cpi())
    });
    println!("== Table 3: benchmark characterisation (solo, Table 2 baseline) ==\n");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(b, mpki, cpi)| {
            vec![
                b.name().to_string(),
                format!("{mpki:.2}"),
                format!("{:.2}", b.table3_mpki()),
                format!("{cpi:.2}"),
                format!("{:.2}", b.table3_cpi()),
            ]
        })
        .collect();
    print_table(
        &[
            "benchmark".into(),
            "L2 MPKI".into(),
            "paper".into(),
            "CPI".into(),
            "paper".into(),
        ],
        &rows,
    );
    ExperimentRecord {
        id: "table3".into(),
        title: "Benchmark characterisation: measured vs paper (MPKI, CPI)".into(),
        columns: vec![
            "mpki".into(),
            "paper_mpki".into(),
            "cpi".into(),
            "paper_cpi".into(),
        ],
        rows: results
            .iter()
            .map(|(b, _, _)| b.name().to_string())
            .collect(),
        values: results
            .iter()
            .map(|(b, m, c)| vec![*m, b.table3_mpki(), *c, b.table3_cpi()])
            .collect(),
        paper_reference: "13 benchmarks with L2 MPKI >= 1 (Table 3 values)".into(),
    }
    .save();
}
