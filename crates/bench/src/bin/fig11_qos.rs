//! Fig. 11 — QoS-aware AVGCC vs AVGCC over the baseline, 2 cores (plus the
//! §8 4-core claim).
//!
//! Paper reference: QoS-AVGCC recovers the workloads AVGCC degrades and
//! globally outperforms it (2 cores); with 4 cores QoS reaches +8.1% vs
//! +7.8% (AVGCC degrades nothing there).

use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::{four_app_mixes, two_app_mixes};

fn main() {
    let scale = Scale::from_env();
    let policies = [Policy::Avgcc, Policy::QosAvgcc];

    let cfg = SystemConfig::table2(2);
    let grid = run_grid(&cfg, &two_app_mixes(), &policies, scale);
    let table = grid.speedup_improvements();
    let geo = print_improvement_table(
        "Fig. 11: QoS-aware AVGCC vs AVGCC (2 cores)",
        &grid.mixes,
        &grid.policies,
        &table,
    );
    let mut values = table.clone();
    values.push(geo.clone());
    let mut rows = grid.mixes.clone();
    rows.push("geomean".into());
    ExperimentRecord {
        id: "fig11".into(),
        title: "QoS-aware AVGCC vs AVGCC, 2 cores".into(),
        columns: grid.policies.clone(),
        rows,
        values,
        paper_reference: "QoS-AVGCC eliminates degradations and beats AVGCC's geomean".into(),
    }
    .save();

    // §8's 4-core statement.
    let cfg4 = SystemConfig::table2(4);
    let grid4 = run_grid(&cfg4, &four_app_mixes(), &policies, scale);
    let table4 = grid4.speedup_improvements();
    let geo4 = print_improvement_table(
        "§8: QoS-aware AVGCC vs AVGCC (4 cores)",
        &grid4.mixes,
        &grid4.policies,
        &table4,
    );
    let mut values4 = table4.clone();
    values4.push(geo4);
    let mut rows4 = grid4.mixes.clone();
    rows4.push("geomean".into());
    ExperimentRecord {
        id: "fig11_4core".into(),
        title: "QoS-aware AVGCC vs AVGCC, 4 cores (§8 text)".into(),
        columns: grid4.policies.clone(),
        rows: rows4,
        values: values4,
        paper_reference: "4 cores: QoS-AVGCC +8.1% vs AVGCC +7.8%".into(),
    }
    .save();
}
