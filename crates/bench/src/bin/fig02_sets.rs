//! Fig. 2 — percentage of *favored* sets (whose MPKI improves by more than
//! 1% when two more ways are enabled) vs *constant* sets, for astar and
//! milc, as the enabled ways of a 2 MB/16-way cache grow.
//!
//! Paper reference: astar keeps a large favored fraction up to 12–14 ways;
//! milc's sets stop changing between 6 and 12 ways.

use ascc_bench::{parallel_map, print_table, ExperimentRecord, Scale};
use cmp_cache::{CacheGeometry, CoreId};
use cmp_sim::{CmpSystem, SystemConfig};
use cmp_trace::SpecBench;

fn per_set_misses(bench: SpecBench, ways: u16, scale: Scale) -> Vec<u64> {
    let mut cfg = SystemConfig::table2(1);
    cfg.l2 = CacheGeometry::new(4096, ways, 32).expect("valid");
    cfg.track_set_stats = true;
    let w = bench.workload(0, scale.seed);
    let mut sys = CmpSystem::new(cfg, Box::new(cmp_cache::PrivateBaseline::new()), vec![w]);
    sys.run(scale.instrs, scale.warmup);
    sys.l2(CoreId(0))
        .set_stats()
        .expect("enabled")
        .iter()
        .map(|s| s.misses)
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let ways: Vec<u16> = (1..=8).map(|w| 2 * w).collect();
    for bench in [SpecBench::Astar, SpecBench::Milc] {
        let missvecs = parallel_map(ways.clone(), |w| per_set_misses(bench, w, scale));
        println!(
            "\n== Fig. 2 ({}) — favored vs constant sets ==",
            bench.name()
        );
        let mut rows = Vec::new();
        let mut favored_col = Vec::new();
        for i in 1..ways.len() {
            let (prev, cur) = (&missvecs[i - 1], &missvecs[i]);
            let mut favored = 0usize;
            for s in 0..cur.len() {
                // Favored: MPKI decreases by >1% relative to 2 fewer ways.
                if (cur[s] as f64) < prev[s] as f64 * 0.99 {
                    favored += 1;
                }
            }
            let pct_f = 100.0 * favored as f64 / cur.len() as f64;
            favored_col.push(pct_f);
            rows.push(vec![
                format!("{} -> {} ways", ways[i - 1], ways[i]),
                format!("{pct_f:.1}%"),
                format!("{:.1}%", 100.0 - pct_f),
            ]);
        }
        print_table(
            &["transition".into(), "favored".into(), "constant".into()],
            &rows,
        );
        ExperimentRecord {
            id: format!("fig02_{}", bench.name().split('.').nth(1).unwrap_or("x")),
            title: format!("Favored-set percentage per way increase, {}", bench.name()),
            columns: vec!["favored_pct".into()],
            rows: (1..ways.len())
                .map(|i| format!("{}->{}", ways[i - 1], ways[i]))
                .collect(),
            values: favored_col.into_iter().map(|v| vec![v]).collect(),
            paper_reference:
                "astar: high favored fraction up to 12-14 ways; milc: constant from 6-12 ways on"
                    .into(),
        }
        .save();
    }
}
