//! Table 4 — cost-benefit of AVGCC as a function of cache size: average
//! reduction in off-chip accesses (4 and 2 cores) and storage overhead for
//! 1/2/4 MB LLCs.
//!
//! Paper reference: 27%/14% at 1 MB, 12%/9% at 2 MB, 12%/9% at 4 MB, with
//! a constant 0.17% storage overhead — the benefit shrinks as capacity
//! grows because miss rates fall.

use ascc::StorageModel;
use ascc_bench::{parallel_map, print_table, ExperimentRecord, Policy, Scale};
use cmp_sim::{run_mix, SystemConfig};
use cmp_trace::{four_app_mixes, two_app_mixes, WorkloadMix};

fn offchip_reduction(cap: u64, mixes: &[WorkloadMix], cores: usize, scale: Scale) -> f64 {
    let cfg = SystemConfig::table2(cores).with_l2_capacity(cap);
    let jobs: Vec<(usize, bool)> = (0..mixes.len())
        .flat_map(|m| [(m, false), (m, true)])
        .collect();
    let runs = parallel_map(jobs, |(m, avgcc)| {
        let p = if avgcc {
            Policy::Avgcc
        } else {
            Policy::Baseline
        };
        run_mix(
            &cfg,
            &mixes[m],
            p.build(&cfg),
            scale.instrs,
            scale.warmup,
            scale.seed,
        )
        .offchip_accesses()
    });
    let mut reductions = Vec::new();
    for m in 0..mixes.len() {
        let base = runs[2 * m] as f64;
        let avgcc = runs[2 * m + 1] as f64;
        if base > 0.0 {
            reductions.push(1.0 - avgcc / base);
        }
    }
    reductions.iter().sum::<f64>() / reductions.len().max(1) as f64
}

fn main() {
    let scale = Scale::from_env();
    let two = two_app_mixes();
    let four = four_app_mixes();
    let caps = [1u64 << 20, 2 << 20, 4 << 20];
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for &cap in &caps {
        let r4 = offchip_reduction(cap, &four, 4, scale);
        let r2 = offchip_reduction(cap, &two, 2, scale);
        let geom = cmp_cache::CacheGeometry::from_capacity(cap, 8, 32).expect("valid");
        let overhead = StorageModel::paper(geom)
            .avgcc(geom.sets() as u64)
            .overhead_fraction();
        rows.push(vec![
            format!("{}MB", cap >> 20),
            format!("{:.0}% / {:.0}%", r4 * 100.0, r2 * 100.0),
            format!("{:.2}%", overhead * 100.0),
        ]);
        values.push(vec![r4, r2, overhead]);
    }
    println!("== Table 4: AVGCC cost-benefit vs cache size ==\n");
    print_table(
        &[
            "cache size".into(),
            "avg off-chip access reduction (4/2 cores)".into(),
            "storage overhead".into(),
        ],
        &rows,
    );
    ExperimentRecord {
        id: "table4".into(),
        title: "Off-chip access reduction and overhead vs LLC capacity".into(),
        columns: vec![
            "reduction_4core".into(),
            "reduction_2core".into(),
            "overhead".into(),
        ],
        rows: caps.iter().map(|c| format!("{}MB", c >> 20)).collect(),
        values,
        paper_reference: "1MB: 27%/14%, 2MB: 12%/9%, 4MB: 12%/9%; overhead 0.17%".into(),
    }
    .save();
}
