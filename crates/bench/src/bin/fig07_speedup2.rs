//! Fig. 7 — performance improvement over the baseline for DSR, DSR+DIP,
//! ECC, ASCC and AVGCC, running two applications.
//!
//! Paper reference: geomean ASCC +6.4%, AVGCC +7.0%; DSR+DIP > DSR with 2
//! cores; ECC modest.

use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::two_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(2);
    let grid = run_grid(&cfg, &two_app_mixes(), &Policy::HEADLINE, scale);
    let table = grid.speedup_improvements();
    let geo = print_improvement_table(
        "Fig. 7: weighted-speedup improvement over baseline (2 cores)",
        &grid.mixes,
        &grid.policies,
        &table,
    );
    let mut values = table.clone();
    values.push(geo);
    let mut rows = grid.mixes.clone();
    rows.push("geomean".into());
    ExperimentRecord {
        id: "fig07".into(),
        title: "Performance improvement over baseline, 2 cores (weighted speedup)".into(),
        columns: grid.policies.clone(),
        rows,
        values,
        paper_reference: "geomean: DSR < DSR+DIP < ASCC +6.4% < AVGCC +7.0%; ECC modest".into(),
    }
    .save();
}
