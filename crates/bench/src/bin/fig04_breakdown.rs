//! Fig. 4 — design breakdown: LRS, LMS, GMS, LMS+BIP, GMS+SABIP, DSR and
//! ASCC on the six four-application mixes.
//!
//! Paper reference: LMS > LRS (minimum selection), LMS > GMS (per-set
//! management), ASCC > LMS+BIP (SABIP), GMS+SABIP > DSR (capacity policy
//! with half DSR's storage).

use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(4);
    let policies = [
        Policy::Lrs,
        Policy::Lms,
        Policy::Gms,
        Policy::LmsBip,
        Policy::GmsSabip,
        Policy::Dsr,
        Policy::Ascc,
    ];
    let grid = run_grid(&cfg, &four_app_mixes(), &policies, scale);
    let table = grid.speedup_improvements();
    let geo = print_improvement_table(
        "Fig. 4: intermediate designs of ASCC (4 cores)",
        &grid.mixes,
        &grid.policies,
        &table,
    );
    let mut values = table.clone();
    values.push(geo);
    let mut rows = grid.mixes.clone();
    rows.push("geomean".into());
    ExperimentRecord {
        id: "fig04".into(),
        title: "Design breakdown: LRS/LMS/GMS/LMS+BIP/GMS+SABIP/DSR/ASCC".into(),
        columns: grid.policies.clone(),
        rows,
        values,
        paper_reference: "LMS>LRS, LMS>GMS, ASCC>LMS+BIP, GMS+SABIP ~30% more speedup than DSR"
            .into(),
    }
    .save();
}
