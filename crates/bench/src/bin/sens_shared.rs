//! §6.1 (text) — the shared interleaved LLC of the same aggregate capacity.
//!
//! Paper reference: the shared cache outperforms the private baseline by
//! only 1.8% (2 cores) / 3% (4 cores), far below ASCC/AVGCC: private
//! designs with sharing mechanisms beat an outright shared cache.

use ascc_bench::{parallel_map, pct, print_table, ExperimentRecord, Policy, Scale};
use cmp_sim::{
    fairness_improvement, geomean_improvement, mix_sources, run_mix, weighted_speedup_improvement,
    SharedConfig, SharedLlcSystem, SystemConfig,
};
use cmp_trace::{four_app_mixes, two_app_mixes, WorkloadMix};

fn eval(cores: usize, mixes: &[WorkloadMix], scale: Scale) -> (f64, f64, f64) {
    let cfg = SystemConfig::table2(cores);
    let jobs: Vec<(usize, u8)> = (0..mixes.len())
        .flat_map(|m| [(m, 0), (m, 1), (m, 2)])
        .collect();
    let runs = parallel_map(jobs, |(m, kind)| match kind {
        0 => run_mix(
            &cfg,
            &mixes[m],
            Policy::Baseline.build(&cfg),
            scale.instrs,
            scale.warmup,
            scale.seed,
        ),
        1 => {
            let shared = SharedConfig::from_private(&cfg);
            let mut sys = SharedLlcSystem::from_sources(shared, mix_sources(&mixes[m], scale.seed));
            sys.run(scale.instrs, scale.warmup)
        }
        _ => run_mix(
            &cfg,
            &mixes[m],
            Policy::Avgcc.build(&cfg),
            scale.instrs,
            scale.warmup,
            scale.seed,
        ),
    });
    let mut ws = Vec::new();
    let mut fair = Vec::new();
    let mut avgcc_ws = Vec::new();
    for m in 0..mixes.len() {
        let base = &runs[3 * m];
        ws.push(weighted_speedup_improvement(&runs[3 * m + 1], base));
        fair.push(fairness_improvement(&runs[3 * m + 1], base));
        avgcc_ws.push(weighted_speedup_improvement(&runs[3 * m + 2], base));
    }
    (
        geomean_improvement(&ws),
        geomean_improvement(&fair),
        geomean_improvement(&avgcc_ws),
    )
}

fn main() {
    let scale = Scale::from_env();
    let (s2, f2, a2) = eval(2, &two_app_mixes(), scale);
    let (s4, f4, a4) = eval(4, &four_app_mixes(), scale);
    println!("== §6.1: shared interleaved LLC vs private baseline ==\n");
    print_table(
        &[
            "config".into(),
            "shared speedup".into(),
            "shared fairness".into(),
            "AVGCC speedup".into(),
        ],
        &[
            vec!["2 cores, 2MB shared".into(), pct(s2), pct(f2), pct(a2)],
            vec!["4 cores, 4MB shared".into(), pct(s4), pct(f4), pct(a4)],
        ],
    );
    ExperimentRecord {
        id: "sens_shared".into(),
        title: "Shared interleaved LLC vs private baseline (geomean improvements)".into(),
        columns: vec!["shared_ws".into(), "shared_fair".into(), "avgcc_ws".into()],
        rows: vec!["2core".into(), "4core".into()],
        values: vec![vec![s2, f2, a2], vec![s4, f4, a4]],
        paper_reference: "shared: +1.8%/+1.7% (2 cores), +3%/+3% (4 cores) — well below AVGCC"
            .into(),
    }
    .save();
}
