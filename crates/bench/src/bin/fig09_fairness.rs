//! Fig. 9 — fairness improvement (harmonic mean of normalised IPCs) over
//! the baseline, running four applications.
//!
//! Paper reference: same ordering as the performance analysis; ECC ahead of
//! DSR/DSR+DIP; AVGCC leads. ASCC/AVGCC never trade fairness for speed.

use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(4);
    let grid = run_grid(&cfg, &four_app_mixes(), &Policy::HEADLINE, scale);
    let table = grid.fairness_improvements();
    let geo = print_improvement_table(
        "Fig. 9: fairness (hmean of normalised IPCs) improvement, 4 cores",
        &grid.mixes,
        &grid.policies,
        &table,
    );
    let mut values = table.clone();
    values.push(geo);
    let mut rows = grid.mixes.clone();
    rows.push("geomean".into());
    ExperimentRecord {
        id: "fig09".into(),
        title: "Fairness improvement over baseline, 4 cores".into(),
        columns: grid.policies.clone(),
        rows,
        values,
        paper_reference: "ordering mirrors Fig. 8; AVGCC leads; ASCC/AVGCC do not hurt fairness"
            .into(),
    }
    .save();
}
