//! Sharing-degree sweep: how the policy zoo responds as a multithreaded
//! workload's accesses shift from private partitions into a shared pool.
//!
//! The §6.3 study fixes each benchmark's sharing pattern; this experiment
//! makes sharing a swept parameter ([`cmp_trace::SharingSpec`]): a
//! fraction `d` of every thread's accesses is redirected into one shared
//! 2 MB Zipf pool, in a read-mostly (5% stores) or read-write (35%
//! stores) flavour. Rising `d` grows the compulsory/coherence miss
//! component — shared lines are fetched or invalidated across cores — so
//! the baseline L2 MPKI column must rise monotonically with `d`, which is
//! the calibration check printed below. The 13-policy zoo then shows
//! which designs convert the shared reuse into local hits.
//!
//! `--cores N` / `ASCC_CORES=N` restricts the sweep to one thread count
//! (CI smoke runs 4 under `ASCC_QUICK`); default widths are 4 and 16
//! threads on the §6.3 512 kB-LLC system. Results go to
//! `results/sharing_degree.json` with the baseline MPKI as the first
//! column and improvements (%) after it.

use ascc_bench::cli::Cli;
use ascc_bench::{parallel_map, print_improvement_table, ExperimentRecord, Policy, Scale};
use cmp_sim::{run_sharing, weighted_speedup_improvement, SystemConfig};
use cmp_trace::{ParallelBench, SharingSpec};

const BENCH: ParallelBench = ParallelBench::Fft;
const DEGREES: [f64; 3] = [0.10, 0.25, 0.50];

fn main() {
    let parsed = Cli::new(
        "sharing_degree",
        "policy zoo vs tunable sharing degree (read-mostly and read-write pools)",
    )
    .harness_flags()
    .parse();
    let config = parsed.run_config().unwrap_or_else(|e| {
        eprintln!("sharing_degree: {e}");
        std::process::exit(2);
    });
    config.apply();
    let scale = Scale::from_env();
    let widths: Vec<usize> = match config.cores {
        Some(n) => vec![n],
        None => vec![4, 16],
    };
    // d=0 is mode-independent (the pool is never sampled), so it appears
    // once per width as the private-partition anchor row.
    let mut specs: Vec<(String, SharingSpec)> =
        vec![("d0.00".into(), SharingSpec::read_mostly(0.0))];
    for &d in &DEGREES {
        specs.push((format!("rm d{d:.2}"), SharingSpec::read_mostly(d)));
    }
    for &d in &DEGREES {
        specs.push((format!("rw d{d:.2}"), SharingSpec::read_write(d)));
    }
    let per = Policy::ZOO.len() + 1;
    println!(
        "sharing_degree: {} at {:?} threads, {} sharing points x {} policies + baseline",
        BENCH.name(),
        widths,
        specs.len(),
        Policy::ZOO.len()
    );

    let mut columns = vec!["baseline MPKI".to_string()];
    columns.extend(Policy::ZOO.iter().map(|p| p.label()));
    let mut rows: Vec<String> = Vec::new();
    let mut values: Vec<Vec<f64>> = Vec::new();
    for &threads in &widths {
        let cfg = SystemConfig::multithreaded(threads);
        let row_scale = Scale {
            instrs: (scale.instrs * 2 / threads as u64).max(50_000),
            warmup: (scale.warmup * 2 / threads as u64).max(10_000),
            seed: scale.seed,
        };
        let jobs: Vec<(SharingSpec, Option<Policy>)> = specs
            .iter()
            .flat_map(|(_, spec)| {
                std::iter::once((*spec, None))
                    .chain(Policy::ZOO.iter().map(move |&p| (*spec, Some(p))))
            })
            .collect();
        let runs = parallel_map(jobs, |(spec, p)| {
            let policy = p.unwrap_or(Policy::Baseline).build(&cfg);
            run_sharing(
                &cfg,
                BENCH,
                spec,
                policy,
                row_scale.instrs,
                row_scale.warmup,
                row_scale.seed,
            )
        });

        let mut table: Vec<Vec<f64>> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut mpkis: Vec<f64> = Vec::new();
        println!("\ncalibration at {threads} threads (baseline — MPKI must rise with d):");
        for (si, (name, _)) in specs.iter().enumerate() {
            let base = &runs[si * per];
            let instrs: u64 = base.cores.iter().map(|c| c.instrs).sum();
            let misses: u64 = base.cores.iter().map(|c| c.l2_misses()).sum();
            let mpki = misses as f64 * 1000.0 / instrs as f64;
            println!("  {name:<8} L2 MPKI {mpki:6.2}");
            names.push(name.clone());
            mpkis.push(mpki);
            table.push(
                (0..Policy::ZOO.len())
                    .map(|pi| weighted_speedup_improvement(&runs[si * per + 1 + pi], base))
                    .collect(),
            );
        }
        print_improvement_table(
            &format!(
                "{} sharing sweep at {threads} threads: weighted-speedup improvement",
                BENCH.name()
            ),
            &names,
            &columns[1..],
            &table,
        );
        for ((name, row), mpki) in names.iter().zip(&table).zip(&mpkis) {
            rows.push(format!("{threads}t {name}"));
            let mut v = vec![*mpki];
            v.extend_from_slice(row);
            values.push(v);
        }
    }

    ExperimentRecord {
        id: "sharing_degree".into(),
        title: "Tunable sharing degree x policy zoo (baseline L2 MPKI, then \
                weighted-speedup improvement over baseline, %)"
            .into(),
        columns,
        rows,
        values,
        paper_reference: "extends §6.3: sharing as a swept parameter; compulsory/coherence \
                          misses grow with degree and squeeze spill headroom"
            .into(),
    }
    .save();
}
