//! Table 2 — the simulated architecture, as configured in `cmp-sim`.

use ascc_bench::print_table;
use cmp_sim::{SharedConfig, SystemConfig};

fn main() {
    let cfg = SystemConfig::table2(4);
    println!("== Table 2: architecture ==\n");
    print_table(
        &["parameter".into(), "value".into()],
        &[
            vec!["Frequency".into(), "4 GHz (latencies in cycles)".into()],
            vec![
                "Cores".into(),
                format!("{} (analytical timing model)", cfg.cores),
            ],
            vec!["L1 d-cache".into(), format!("{} / LRU / WT", cfg.l1)],
            vec![
                "L2 (unified, inclusive)".into(),
                format!("{} / LRU / WB", cfg.l2),
            ],
            vec![
                "L2 latency".into(),
                format!(
                    "{} cycles local hits, {} remote hits",
                    cfg.lat_l2_local, cfg.lat_l2_remote
                ),
            ],
            vec![
                "Main memory latency".into(),
                format!("{} cycles (115 ns at 4 GHz)", cfg.lat_mem),
            ],
            vec![
                "Coherence protocol".into(),
                "MESI-based broadcasting".into(),
            ],
        ],
    );
    let shared = SharedConfig::from_private(&cfg);
    println!(
        "\nShared-LLC comparison (§6.1): {} at {} cycles average bank latency",
        shared.llc, shared.lat_llc
    );
}
