//! Table 1 — ASCC at static granularities from 4096 counters (one per set)
//! down to a single counter per cache, plus AVGCC for comparison (§4.1
//! quotes AVGCC at +7.8% vs +6.9% for the best static configuration).
//!
//! Paper reference: no static granularity wins everywhere; intermediate
//! granularities (64–256 counters) have the best geomean; some mixes prefer
//! the global metric, others the finest.

use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(4);
    let policies = [
        Policy::Ascc, // 4096 counters
        Policy::AsccN(1024),
        Policy::AsccN(256),
        Policy::AsccN(64),
        Policy::AsccN(16),
        Policy::AsccN(4),
        Policy::AsccN(1),
        Policy::Avgcc,
    ];
    let grid = run_grid(&cfg, &four_app_mixes(), &policies, scale);
    let table = grid.speedup_improvements();
    let geo = print_improvement_table(
        "Table 1: ASCC granularity sweep (counters per cache), 4 cores",
        &grid.mixes,
        &grid.policies,
        &table,
    );
    let mut values = table.clone();
    values.push(geo);
    let mut rows = grid.mixes.clone();
    rows.push("geomean".into());
    ExperimentRecord {
        id: "table1".into(),
        title: "Static granularity sweep: 4096..1 counters + AVGCC".into(),
        columns: grid.policies.clone(),
        rows,
        values,
        paper_reference: "geomeans: ASCC +5.7, ASCC1024 +5.2, ASCC256 +6.2, ASCC64 +6.9, ASCC16 +6.8, ASCC4 +6.5, ASCC1 +4.5; AVGCC +7.8".into(),
    }
    .save();
}
