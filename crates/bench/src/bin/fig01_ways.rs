//! Fig. 1 — MPKI and CPI for SPEC benchmarks as the number of enabled ways
//! of a 2 MB/16-way cache varies (2..=16, plus full associativity).
//!
//! Paper reference: the upper row (milc, sphinx3, namd, sjeng) is barely
//! affected by extra ways; the lower row (bzip2, mcf/soplex, omnetpp,
//! astar) improves gradually; full associativity still removes misses for
//! several benchmarks.

use ascc_bench::{parallel_map, print_table, ExperimentRecord, Scale};
use cmp_cache::CacheGeometry;
use cmp_sim::{SoloRun, SystemConfig};
use cmp_trace::SpecBench;

/// The eight benchmarks of Fig. 1 (upper row then lower row).
const BENCHES: [SpecBench; 8] = [
    SpecBench::Milc,
    SpecBench::Sphinx3,
    SpecBench::Namd,
    SpecBench::Sjeng,
    SpecBench::Bzip2,
    SpecBench::Soplex,
    SpecBench::Omnetpp,
    SpecBench::Astar,
];

fn main() {
    let scale = Scale::from_env();
    let ways: Vec<u16> = (1..=8).map(|w| 2 * w).collect();
    let jobs: Vec<(SpecBench, Option<u16>)> = BENCHES
        .iter()
        .flat_map(|&b| {
            ways.iter()
                .map(move |&w| (b, Some(w)))
                .chain(std::iter::once((b, None))) // None = fully associative
        })
        .collect();
    let results = parallel_map(jobs.clone(), |(b, w)| {
        let mut cfg = SystemConfig::table2(1);
        let spec = SoloRun::new(b)
            .instructions(scale.instrs)
            .warmup(scale.warmup)
            .seed(scale.seed);
        let r = match w {
            Some(w) => {
                // 2 MB/16-way has 4096 sets; enabling w ways keeps the sets.
                cfg.l2 = CacheGeometry::new(4096, w, 32).expect("valid");
                spec.run(&cfg)
            }
            None => spec.run_fully_assoc(&cfg, (2 << 20) / 32),
        };
        (r.l2_mpki(), r.cpi())
    });

    let cols: Vec<String> = ways
        .iter()
        .map(|w| format!("{w}w"))
        .chain(std::iter::once("FA".into()))
        .collect();
    let per_bench = cols.len();
    for metric in ["MPKI", "CPI"] {
        println!("\n== Fig. 1 ({metric}) — 2MB/16-way L2, 2..16 enabled ways + full assoc ==");
        let mut rows = Vec::new();
        for (bi, b) in BENCHES.iter().enumerate() {
            let mut row = vec![b.name().to_string()];
            for ci in 0..per_bench {
                let (mpki, cpi) = results[bi * per_bench + ci];
                row.push(format!("{:.2}", if metric == "MPKI" { mpki } else { cpi }));
            }
            rows.push(row);
        }
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(cols.iter().cloned());
        print_table(&headers, &rows);
    }

    ExperimentRecord {
        id: "fig01".into(),
        title: "MPKI vs enabled ways (2MB/16-way, 4096 sets) + full associativity".into(),
        columns: cols,
        rows: BENCHES.iter().map(|b| b.name().to_string()).collect(),
        values: (0..BENCHES.len())
            .map(|bi| (0..per_bench).map(|ci| results[bi * per_bench + ci].0).collect())
            .collect(),
        paper_reference: "upper row (milc/sphinx3/namd/sjeng) flat; lower row (bzip2/soplex/omnetpp/astar) declines with ways".into(),
    }
    .save();
}
