//! Record and inspect workload traces (`cmp_trace::RecordedTrace`).
//!
//! ```console
//! trace_tool record 473 100000 /tmp/astar.trc       # record 100k accesses of 473.astar
//! trace_tool materialize 473 100000 /tmp/astar.trc  # same, via the SharedTrace chunk path
//! trace_tool info /tmp/astar.trc                    # summarise a trace file
//! trace_tool repro target/diff-failures/diff-X.case # replay a differential-fuzz repro
//! ```
//!
//! `record` pulls straight from the streaming generator; `materialize`
//! routes through [`cmp_trace::SharedTrace`] chunk replay — the sweep's
//! front-end — so a problematic materialized pattern can be captured to the
//! same `ASCCTRC1` format and shared. The two commands must produce
//! byte-identical files (replay is access-for-access equal to streaming).
//!
//! `repro` replays a `.case` file dumped by the differential fuzzer
//! (`tests/tests/differential.rs`): it reruns the optimized engine and the
//! spec-literal oracle in lockstep on the recorded script and reports the
//! first state divergence, or confirms the case now passes.
//!
//! `snapshot` inspects a `.snap` checkpoint written by the periodic
//! checkpointer (`ASCC_CKPT_EVERY`) or [`cmp_sim::CmpSystem::snapshot`]:
//! it decodes the envelope, fingerprint and per-core progress without
//! constructing a system, and prints the section layout.

use ascc_bench::cli::Cli;
use cmp_trace::{RecordedTrace, SharedTrace, SpecBench};
use std::collections::HashSet;
use std::path::Path;
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: trace_tool record <spec-id> <accesses> <file>");
    eprintln!("       trace_tool materialize <spec-id> <accesses> <file>");
    eprintln!("       trace_tool info <file>");
    eprintln!("       trace_tool repro <case-file>");
    eprintln!("       trace_tool snapshot <snap-file>");
    exit(2);
}

fn parse_bench(arg: &str) -> SpecBench {
    let id: u16 = arg.parse().unwrap_or_else(|_| usage());
    SpecBench::from_id(id).unwrap_or_else(|| {
        eprintln!("unknown SPEC id {id}; known ids:");
        for b in SpecBench::ALL {
            eprintln!("  {} = {}", b.id(), b.name());
        }
        exit(2);
    })
}

fn main() {
    // The unified grammar handles `--help` (with the RunConfig knob
    // table) and rejects stray flags; subcommands stay positional.
    let args = Cli::new(
        "trace_tool",
        "record and inspect workload traces, fuzz repros and checkpoints",
    )
    .positionals("<command> [args...]")
    .parse()
    .positionals;
    match args.first().map(String::as_str) {
        Some("record") if args.len() == 4 => {
            let bench = parse_bench(&args[1]);
            let n: usize = args[2].parse().unwrap_or_else(|_| usage());
            let mut w = bench.workload(0, 42);
            let trace = RecordedTrace::record(w.stream.as_mut(), n);
            trace.save(Path::new(&args[3])).unwrap_or_else(|e| {
                eprintln!("cannot save: {e}");
                exit(1);
            });
            println!("recorded {} accesses of {} to {}", n, bench, args[3]);
        }
        Some("materialize") if args.len() == 4 => {
            let bench = parse_bench(&args[1]);
            let n: usize = args[2].parse().unwrap_or_else(|_| usage());
            let shared = SharedTrace::new(move || bench.workload(0, 42).stream);
            let mut cursor = shared.cursor();
            let trace = RecordedTrace::record(&mut cursor, n);
            trace.save(Path::new(&args[3])).unwrap_or_else(|e| {
                eprintln!("cannot save: {e}");
                exit(1);
            });
            println!(
                "materialized {} accesses of {} ({} chunks of {}) to {}",
                n,
                bench,
                shared.chunks_generated(),
                shared.chunk_accesses(),
                args[3]
            );
        }
        Some("info") if args.len() == 2 => {
            let trace = RecordedTrace::load(Path::new(&args[1])).unwrap_or_else(|e| {
                eprintln!("cannot load: {e}");
                exit(1);
            });
            let accesses = trace.accesses();
            let stores = accesses.iter().filter(|a| a.kind.is_store()).count();
            let lines: HashSet<u64> = accesses.iter().map(|a| a.addr.raw() >> 5).collect();
            let sets_4096: HashSet<u64> = lines.iter().map(|l| l & 4095).collect();
            println!("accesses:       {}", trace.len());
            println!(
                "stores:         {} ({:.1}%)",
                stores,
                100.0 * stores as f64 / trace.len() as f64
            );
            println!(
                "distinct lines: {} ({} kB footprint at 32 B)",
                lines.len(),
                lines.len() * 32 / 1024
            );
            println!("4096-set cover: {} sets touched", sets_4096.len());
            println!(
                "address range:  {:#x} ..= {:#x}",
                accesses
                    .iter()
                    .map(|a| a.addr.raw())
                    .min()
                    .expect("nonempty"),
                accesses
                    .iter()
                    .map(|a| a.addr.raw())
                    .max()
                    .expect("nonempty"),
            );
        }
        Some("repro") if args.len() == 2 => {
            let text = std::fs::read_to_string(&args[1]).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", args[1]);
                exit(1);
            });
            let case = ascc_integration::diff::parse_case(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {}: {e}", args[1]);
                exit(1);
            });
            println!(
                "replaying {}: {} cores, {} ops, {:?}",
                args[1],
                case.cores,
                case.ops.len(),
                case.policy
            );
            match ascc_integration::diff::run_case(&case) {
                Ok(()) => println!("PASS: engine and oracle agree at every checkpoint"),
                Err(e) => {
                    eprintln!("DIVERGED: {e}");
                    exit(1);
                }
            }
        }
        Some("snapshot") if args.len() == 2 => {
            let bytes = std::fs::read(&args[1]).unwrap_or_else(|e| {
                eprintln!("cannot read {}: {e}", args[1]);
                exit(1);
            });
            let info = cmp_sim::snapshot::SnapshotInfo::parse(&bytes).unwrap_or_else(|e| {
                eprintln!("cannot decode {}: {e}", args[1]);
                exit(1);
            });
            let geo = |(sets, ways, line): (u32, u16, u32)| {
                format!("{sets} sets x {ways} ways x {line} B")
            };
            println!("format version: {}", info.version);
            println!("policy:         {}", info.policy);
            println!("cores:          {}", info.cores);
            println!("L1 geometry:    {}", geo(info.l1_geometry));
            println!("L2 geometry:    {}", geo(info.l2_geometry));
            for (i, c) in info.core_info.iter().enumerate() {
                println!(
                    "core {i}: {:<16} {} accesses, {} instrs, {:.0} cycles",
                    c.label, c.accesses, c.instrs, c.cycles
                );
            }
            println!("sections:");
            let name = |t: u8| match t {
                t if t == cmp_sim::snapshot::tag::FINGERPRINT => "fingerprint",
                t if t == cmp_sim::snapshot::tag::GLOBALS => "globals",
                t if t == cmp_sim::snapshot::tag::CORES => "cores",
                t if t == cmp_sim::snapshot::tag::L1S => "l1s",
                t if t == cmp_sim::snapshot::tag::L2S => "l2s",
                t if t == cmp_sim::snapshot::tag::BUS => "bus",
                t if t == cmp_sim::snapshot::tag::PREFETCH => "prefetch",
                t if t == cmp_sim::snapshot::tag::POLICY => "policy",
                _ => "unknown",
            };
            for (t, len) in &info.sections {
                println!("  tag {t:>2} ({:<11}) {len:>10} bytes", name(*t));
            }
            println!("total:          {} bytes", bytes.len());
        }
        _ => usage(),
    }
}
