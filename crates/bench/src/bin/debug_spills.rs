//! Diagnostic: per-core behaviour of one mix under several policies,
//! including each policy's typed snapshot (SSL roles, adaptation
//! counters) — the introspection that used to require downcasting.

use ascc_bench::{parallel_map, snapshot_summary, Policy, Scale};
use cmp_sim::{mix_sources, weighted_speedup_improvement, CmpSystem, SystemConfig};
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let cfg = SystemConfig::table2(4);
    let mix = four_app_mixes().remove(idx);
    println!("mix {} ({} instrs)", mix.name, scale.instrs);
    let policies = vec![
        Policy::Baseline,
        Policy::Dsr,
        Policy::Ecc,
        Policy::Ascc,
        Policy::AsccAllocator,
        Policy::Avgcc,
    ];
    let runs = parallel_map(policies.clone(), |p| {
        let mut sys =
            CmpSystem::from_sources(cfg.clone(), p.build(&cfg), mix_sources(&mix, scale.seed));
        let r = sys.run(scale.instrs, scale.warmup);
        (r, sys.policy().snapshot())
    });
    let base = runs[0].0.clone();
    for (p, (r, snap)) in policies.iter().zip(&runs) {
        println!(
            "\n{:10} ws={:+.2}% spills={} swaps={} spill_hits={} hits/spill={:.2}",
            p.label(),
            100.0 * weighted_speedup_improvement(r, &base),
            r.spills,
            r.swaps,
            r.spill_hits,
            r.hits_per_spill()
        );
        println!("  snapshot: {}", snapshot_summary(snap));
        for c in &r.cores {
            println!(
                "  {:16} cpi={:.3} mpki={:6.2} l2acc={:8} local={:8} remote={:7} mem={:7}",
                c.label,
                c.cpi(),
                c.l2_mpki(),
                c.l2_accesses,
                c.l2_local_hits,
                c.l2_remote_hits,
                c.l2_mem
            );
        }
    }
}
