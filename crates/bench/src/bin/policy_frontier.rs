//! Modern policy frontier: ARC, TinyLFU admission and reuse-distance
//! copy-back head-to-head with the paper's designs from 2 to 64 cores.
//!
//! The paper (HPCA 2012) predates ARC-style adaptive recency/frequency
//! partitioning in LLC roles, TinyLFU admission filtering, and
//! reuse-distance-directed clean-line copy-back. This experiment runs the
//! three post-2012 contenders against ASCC and AVGCC (the paper's two
//! designs) on the same synthetic `cores`-app mixes used by the coherence
//! scaling study, and reports weighted-speedup improvement over the
//! private-LLC baseline per core count.
//!
//! `--cores N` / `ASCC_CORES=N` restricts the sweep to one width (the CI
//! smoke runs just 4 under `ASCC_QUICK`). Per-core instructions are scaled
//! down as the width grows — same schedule as `scaling_cores` — so wide
//! rows stay tractable. Results go to `results/policy_frontier.json`.

use ascc_bench::cli::Cli;
use ascc_bench::{print_improvement_table, run_grid, ExperimentRecord, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::mixes_for;

/// Head-to-head lineup: the paper's designs, then the frontier.
const LINEUP: [Policy; 5] = [
    Policy::Ascc,
    Policy::Avgcc,
    Policy::Arc,
    Policy::TinyLfu,
    Policy::RdCb,
];

fn main() {
    let parsed = Cli::new(
        "policy_frontier",
        "ARC, TinyLFU admission and RD copy-back vs ASCC/AVGCC, 2..=64 cores",
    )
    .harness_flags()
    .parse();
    let config = parsed.run_config().unwrap_or_else(|e| {
        eprintln!("policy_frontier: {e}");
        std::process::exit(2);
    });
    config.apply();
    let scale = Scale::from_env();
    let widths: Vec<usize> = match config.cores {
        Some(n) => vec![n],
        None => vec![2, 4, 8, 16, 32, 64],
    };
    println!(
        "policy_frontier: widths {:?}, {} policies + baseline, 2 mixes/width, {} base instrs/core",
        widths,
        LINEUP.len(),
        scale.instrs
    );

    let mut labels: Vec<String> = Vec::new();
    let mut values = Vec::new();
    for &cores in &widths {
        let cfg = SystemConfig::table2(cores);
        let mixes: Vec<_> = mixes_for(cores).into_iter().take(2).collect();
        // Same per-core work schedule as the coherence scaling sweep, so
        // every width simulates a comparable access total.
        let row_scale = Scale {
            instrs: (scale.instrs * 2 / cores as u64).max(50_000),
            warmup: (scale.warmup * 2 / cores as u64).max(10_000),
            seed: scale.seed,
        };
        let grid = run_grid(&cfg, &mixes, &LINEUP, row_scale);
        let table = grid.speedup_improvements();
        let geo = print_improvement_table(
            &format!("policy frontier at {cores} cores: weighted-speedup improvement"),
            &grid.mixes,
            &grid.policies,
            &table,
        );
        if labels.is_empty() {
            labels = grid.policies.clone();
        }
        values.push(geo);
    }

    ExperimentRecord {
        id: "policy_frontier".into(),
        title: "Policy frontier 2..=64 cores: ARC, TinyLFU, RD-CB vs ASCC/AVGCC \
                (geomean weighted-speedup improvement over baseline, %)"
            .into(),
        columns: labels,
        rows: widths.iter().map(|c| format!("{c} cores")).collect(),
        values,
        paper_reference: "beyond the paper (2012): post-2012 contenders on the paper's \
                          system; set-granular cooperation is the axis none of them cover"
            .into(),
    }
    .save();
}
