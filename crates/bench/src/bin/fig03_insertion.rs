//! Fig. 3 — behaviour of the insertion policies on a 4-way set.
//!
//! A deterministic walk-through of what happens to the recency stack when
//! a new line E fills into a full set [A B C D] under MRU, LRU (BIP's
//! common case) and LRU-1 (SABIP's common case) insertion.

use cmp_cache::{CacheLine, CacheSet, InsertPos, LineAddr, MesiState, WayIdx};

fn show(set: &CacheSet, names: &[(u64, char)]) -> String {
    let mut order: Vec<char> = Vec::new();
    for w in set.recency().order() {
        let line = set.line(w).expect("full set");
        let c = names
            .iter()
            .find(|&&(a, _)| a == line.addr.raw())
            .map(|&(_, c)| c)
            .unwrap_or('?');
        order.push(c);
    }
    format!(
        "MRU [{}] LRU",
        order
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    )
}

fn demo(pos: InsertPos, label: &str) {
    // Build set X holding A (MRU), B, C, D (LRU) — Fig. 3's starting point.
    let names = [(0, 'A'), (1, 'B'), (2, 'C'), (3, 'D'), (4, 'E')];
    let mut set = CacheSet::new(4);
    for (i, addr) in [3u64, 2, 1, 0].iter().enumerate() {
        set.fill(
            WayIdx(i as u16),
            CacheLine::demand(LineAddr::new(*addr), MesiState::Exclusive),
            InsertPos::Mru,
        );
    }
    println!("\n{label}");
    println!("  before: {}", show(&set, &names));
    // The victim is the LRU line (D); E replaces it at `pos`.
    let victim = set.recency().lru();
    let evicted = set.fill(
        victim,
        CacheLine::demand(LineAddr::new(4), MesiState::Exclusive),
        pos,
    );
    println!(
        "  insert E at {pos:?} (evicts {})",
        names
            .iter()
            .find(|&&(a, _)| Some(a) == evicted.map(|e| e.addr.raw()))
            .map(|&(_, c)| c)
            .unwrap_or('?')
    );
    println!("  after:  {}", show(&set, &names));
}

fn main() {
    println!("== Fig. 3: insertion policies for new line E in 4-way set X ==");
    demo(InsertPos::Mru, "MRU insertion (traditional)");
    demo(InsertPos::Lru, "LRU insertion (BIP, probability 1-eps)");
    demo(
        InsertPos::LruMinus1,
        "LRU-1 insertion (SABIP, probability 1-eps): one eviction of protection",
    );
    println!(
        "\nSABIP keeps the new line one step above the LRU position, so a \
         subsequent spilled line arriving from a peer evicts the true LRU \
         line instead of the just-inserted one (Section 3.2)."
    );
}
