//! §6.3 — multithreaded sensitivity: SPLASH2/PARSEC-like workloads, 4
//! threads, 512 kB LLCs, shared address space (MESI replication active).
//!
//! Paper reference: ASCC ~+5% and AVGCC ~+6% execution-time reduction, the
//! best results again; spilling can benefit even the receiving caches.

use ascc_bench::{parallel_map, pct, print_table, ExperimentRecord, Policy, Scale};
use cmp_sim::{geomean_improvement, weighted_speedup_improvement, CmpSystem, SystemConfig};
use cmp_trace::ParallelBench;

fn main() {
    let scale = Scale::from_env();
    let threads = 4;
    let cfg = SystemConfig::multithreaded(threads);
    let policies = [Policy::Dsr, Policy::Ecc, Policy::Ascc, Policy::Avgcc];
    let jobs: Vec<(ParallelBench, Option<Policy>)> = ParallelBench::ALL
        .iter()
        .flat_map(|&b| {
            std::iter::once((b, None)).chain(policies.iter().map(move |&p| (b, Some(p))))
        })
        .collect();
    let runs = parallel_map(jobs, |(b, p)| {
        let policy = p.unwrap_or(Policy::Baseline).build(&cfg);
        let workloads = b.workloads(threads, scale.seed);
        let mut sys = CmpSystem::new(cfg.clone(), policy, workloads);
        sys.run(scale.instrs, scale.warmup)
    });

    let per = policies.len() + 1;
    println!("== §6.3: multithreaded workloads (4 threads, 512kB LLCs) ==\n");
    let mut rows = Vec::new();
    let mut table: Vec<Vec<f64>> = Vec::new();
    for (bi, b) in ParallelBench::ALL.iter().enumerate() {
        let base = &runs[bi * per];
        let mut row = vec![b.name().to_string()];
        let mut vals = Vec::new();
        for (pi, _) in policies.iter().enumerate() {
            let imp = weighted_speedup_improvement(&runs[bi * per + 1 + pi], base);
            vals.push(imp);
            row.push(pct(imp));
        }
        rows.push(row);
        table.push(vals);
    }
    let geo: Vec<f64> = (0..policies.len())
        .map(|p| geomean_improvement(&table.iter().map(|r| r[p]).collect::<Vec<_>>()))
        .collect();
    let mut grow = vec!["geomean".to_string()];
    grow.extend(geo.iter().map(|&g| pct(g)));
    rows.push(grow);
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(policies.iter().map(|p| p.label()));
    print_table(&headers, &rows);

    let mut values = table;
    values.push(geo);
    let mut row_names: Vec<String> = ParallelBench::ALL
        .iter()
        .map(|b| b.name().to_string())
        .collect();
    row_names.push("geomean".into());
    ExperimentRecord {
        id: "sens_multithreaded".into(),
        title: "Multithreaded workloads (4 threads, 512kB LLC, replication)".into(),
        columns: policies.iter().map(|p| p.label()).collect(),
        rows: row_names,
        values,
        paper_reference: "ASCC ~+5%, AVGCC ~+6% average; best of all approaches".into(),
    }
    .save();
}
