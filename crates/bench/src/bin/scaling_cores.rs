//! Core-count scaling study: ASCC from 2 to 64 cores on both coherence
//! fabrics (broadcast snooping vs the sharer-bitmask directory).
//!
//! The paper evaluates at 2 and 4 cores; this experiment extends the same
//! system configuration to 8/16/32/64 cores with synthetic `cores`-app
//! mixes ([`cmp_trace::mixes_for`]) and reports, per width and fabric,
//! throughput and peer-tag probes per L1 access. Broadcast probes grow as
//! O(cores); directory probes track the actual sharer population and stay
//! flat — the contrast this repository's directory fabric exists to show.
//!
//! `--cores N` / `ASCC_CORES=N` restricts the sweep to one width (the CI
//! scaling smoke runs just 16). The two fabrics are bit-identical in every
//! architectural counter, so the binary exits nonzero if accesses or
//! snoops diverge between them, or if the directory ever probes more than
//! broadcast — all three are deterministic, scale-independent checks.
//! Results go to `results/scaling_cores.json`.

use ascc_bench::cli::Cli;
use ascc_bench::scaling::{scaling_sweep, scaling_table, ScalingRow};
use ascc_bench::{print_table, ExperimentRecord, Scale};
use cmp_coherence::FabricKind;

fn main() {
    let parsed = Cli::new(
        "scaling_cores",
        "ASCC at 2..=64 cores: broadcast vs directory coherence fabric",
    )
    .harness_flags()
    .parse();
    let config = parsed.run_config().unwrap_or_else(|e| {
        eprintln!("scaling_cores: {e}");
        std::process::exit(2);
    });
    config.apply();
    let scale = Scale::from_env();
    let widths: Vec<usize> = match config.cores {
        Some(n) => vec![n],
        None => vec![2, 4, 8, 16, 32, 64],
    };
    println!(
        "scaling_cores: widths {:?}, 2 fabrics, 2 mixes/width, {} base instrs/core",
        widths, scale.instrs
    );

    let rows = scaling_sweep(&widths, scale);
    println!();
    let (headers, table) = scaling_table(&rows);
    print_table(&headers, &table);

    let mut regressed = false;
    let mut values = Vec::new();
    for &cores in &widths {
        let find = |fabric: FabricKind| -> &ScalingRow {
            rows.iter()
                .find(|r| r.cores == cores && r.fabric == fabric)
                .expect("sweep covers every (width, fabric)")
        };
        let (b, d) = (find(FabricKind::Broadcast), find(FabricKind::Directory));
        println!(
            "{} cores: directory {:.2}x broadcast throughput, {:.1}% of its probes \
             ({:.3} vs {:.3} probes/acc)",
            cores,
            d.per_sec() / b.per_sec().max(1e-9),
            100.0 * d.probes as f64 / b.probes.max(1) as f64,
            d.probes_per_access(),
            b.probes_per_access(),
        );
        if b.accesses != d.accesses || b.snoops != d.snoops {
            eprintln!(
                "divergence at {cores} cores: accesses {} vs {}, snoops {} vs {}",
                b.accesses, d.accesses, b.snoops, d.snoops
            );
            regressed = true;
        }
        if d.probes > b.probes {
            eprintln!(
                "regression at {cores} cores: directory probed more than broadcast ({} > {})",
                d.probes, b.probes
            );
            regressed = true;
        }
        values.push(vec![
            b.probes_per_access(),
            d.probes_per_access(),
            100.0 * d.probes as f64 / b.probes.max(1) as f64,
            b.per_sec() / 1e6,
            d.per_sec() / 1e6,
        ]);
    }

    ExperimentRecord {
        id: "scaling_cores".into(),
        title: "Coherence scaling 2..=64 cores: broadcast vs sharer-bitmask directory (ASCC)"
            .into(),
        columns: vec![
            "broadcast probes/acc".into(),
            "directory probes/acc".into(),
            "directory probes %".into(),
            "broadcast Macc/s".into(),
            "directory Macc/s".into(),
        ],
        rows: widths.iter().map(|c| format!("{c} cores")).collect(),
        values,
        paper_reference: "beyond the paper (2/4-core evaluation): broadcast probes grow O(cores), \
                          directory probes track sharers and stay flat"
            .into(),
    }
    .save();

    if regressed {
        eprintln!("scaling_cores: directory fabric regressed vs broadcast");
        std::process::exit(1);
    }
}
