//! Calibration check: solo MPKI/CPI of every benchmark model vs Table 3.
//!
//! Not a paper artefact itself — this is the tool used to tune the
//! `cmp-trace` model constants. `table3_characterization` is the paper
//! experiment built on the same data.

use ascc_bench::{parallel_map, print_table, Scale};
use cmp_sim::{run_solo, SystemConfig};
use cmp_trace::SpecBench;

fn main() {
    let scale = Scale::from_env();
    println!(
        "solo runs on the Table 2 baseline ({} measured / {} warmup instrs)",
        scale.instrs, scale.warmup
    );
    let rows = parallel_map(SpecBench::ALL.to_vec(), |b| {
        let cfg = SystemConfig::table2(1);
        let r = run_solo(&cfg, b, scale.instrs, scale.warmup, scale.seed);
        vec![
            b.name().to_string(),
            format!("{:.2}", r.l2_mpki()),
            format!("{:.2}", b.table3_mpki()),
            format!("{:.2}", r.cpi()),
            format!("{:.2}", b.table3_cpi()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - r.l1_hits as f64 / r.l1_accesses as f64)
            ),
            format!("{}", r.l2_accesses),
        ]
    });
    print_table(
        &[
            "benchmark".into(),
            "mpki".into(),
            "paper".into(),
            "cpi".into(),
            "paper".into(),
            "l1miss".into(),
            "l2acc".into(),
        ],
        &rows,
    );
}
