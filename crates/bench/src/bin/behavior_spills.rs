//! §6.4 — internal behaviour of AVGCC: number of spills and hits per
//! spilled line vs the other approaches.
//!
//! Paper reference (2 cores): AVGCC performs 13% fewer spills than the
//! second-best approach (DSR+DIP) and 60% fewer than the worst (ECC), with
//! 28% more hits per spill; (4 cores): 28% / 70% fewer, 36% more.

use ascc_bench::{
    parallel_map, print_table, run_grid, snapshot_summary, ExperimentRecord, Policy, Scale,
};
use cmp_sim::{mix_sources, CmpSystem, SystemConfig};
use cmp_trace::{four_app_mixes, two_app_mixes};

fn main() {
    let scale = Scale::from_env();
    let mut all_values = Vec::new();
    let mut all_rows = Vec::new();
    for (cores, mixes) in [(2usize, two_app_mixes()), (4, four_app_mixes())] {
        let cfg = SystemConfig::table2(cores);
        let grid = run_grid(&cfg, &mixes, &Policy::HEADLINE, scale);
        println!("\n== §6.4: spill behaviour, {cores} cores (totals over all mixes) ==\n");
        let mut rows = Vec::new();
        for (p, label) in grid.policies.iter().enumerate() {
            let spills: u64 = grid.runs.iter().map(|r| r[p].spills + r[p].swaps).sum();
            let hits: u64 = grid.runs.iter().map(|r| r[p].spill_hits).sum();
            let hps = if spills > 0 {
                hits as f64 / spills as f64
            } else {
                0.0
            };
            rows.push(vec![
                label.clone(),
                spills.to_string(),
                hits.to_string(),
                format!("{hps:.3}"),
            ]);
            all_rows.push(format!("{label}@{cores}c"));
            all_values.push(vec![spills as f64, hits as f64, hps]);
        }
        print_table(
            &[
                "policy".into(),
                "spills(+swaps)".into(),
                "spill hits".into(),
                "hits/spill".into(),
            ],
            &rows,
        );
        // Each policy's internal state on the first mix, via the typed
        // snapshot API (what the spill counts above look like from inside).
        let snaps = parallel_map(Policy::HEADLINE.to_vec(), |p| {
            let mut sys = CmpSystem::from_sources(
                cfg.clone(),
                p.build(&cfg),
                mix_sources(&mixes[0], scale.seed),
            );
            sys.run(scale.instrs, scale.warmup);
            (p.label(), sys.policy().snapshot())
        });
        println!(
            "\npolicy state after mix {} ({cores} cores):",
            mixes[0].name
        );
        for (label, snap) in &snaps {
            println!("  {label:8} {}", snapshot_summary(snap));
        }
    }
    ExperimentRecord {
        id: "behavior_spills".into(),
        title: "Spill counts and hits-per-spill across all mixes".into(),
        columns: vec!["spills".into(), "spill_hits".into(), "hits_per_spill".into()],
        rows: all_rows,
        values: all_values,
        paper_reference: "AVGCC: fewest spills of the competitive designs, highest hits/spill; ECC most spills, lowest quality".into(),
    }
    .save();
}
