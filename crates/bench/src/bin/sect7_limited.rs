//! §7 — AVGCC with the number of counters limited (storage/performance
//! trade-off).
//!
//! Paper reference (4 cores): +6.8% capping at 128 counters (83 B), +7.1%
//! at 2048 (1284 B), vs +7.8% at the full 4096 — 97%/50% storage savings
//! for modest performance loss.

use ascc::StorageModel;
use ascc_bench::{pct, print_table, run_grid, ExperimentRecord, GridResult, Policy, Scale};
use cmp_sim::SystemConfig;
use cmp_trace::four_app_mixes;

fn main() {
    let scale = Scale::from_env();
    let cfg = SystemConfig::table2(4);
    let policies = [
        Policy::AvgccMax(128),
        Policy::AvgccMax(1024),
        Policy::AvgccMax(2048),
        Policy::Avgcc,
    ];
    let grid = run_grid(&cfg, &four_app_mixes(), &policies, scale);
    let geo = GridResult::geomeans(&grid.speedup_improvements());
    let model = StorageModel::paper(cfg.l2);
    println!("== §7: AVGCC with limited counters (4 cores, geomean) ==\n");
    let mut rows = Vec::new();
    let mut values = Vec::new();
    for (i, p) in policies.iter().enumerate() {
        let counters = match p {
            Policy::AvgccMax(n) => *n as u64,
            _ => cfg.l2.sets() as u64,
        };
        let cost = model.avgcc(counters);
        rows.push(vec![
            p.label(),
            pct(geo[i]),
            format!("{} B", cost.extra_bytes()),
        ]);
        values.push(vec![geo[i], cost.extra_bytes() as f64]);
    }
    print_table(
        &["design".into(), "speedup".into(), "extra storage".into()],
        &rows,
    );
    ExperimentRecord {
        id: "sect7_limited".into(),
        title: "AVGCC performance with capped counter counts".into(),
        columns: vec!["geomean_speedup".into(), "extra_bytes".into()],
        rows: policies.iter().map(|p| p.label()).collect(),
        values,
        paper_reference: "128 counters: +6.8% (83B); 2048: +7.1% (1284B); 4096: +7.8% (2564B)"
            .into(),
    }
    .save();
}
