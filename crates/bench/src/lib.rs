//! Shared harness for the experiment binaries (one per paper table/figure).
//!
//! Everything here is plumbing: the policy zoo ([`Policy`]), scaled run
//! lengths ([`Scale`]), the [`parallel_map`] fan-out over independent
//! simulations (a [`cmp_sim::SweepPool`] honouring `ASCC_JOBS`), the
//! (mix × policy) [`run_grid`] driver, table printing, and JSON result
//! dumps under `results/` that `run_all` collects into EXPERIMENTS.md.
//!
//! The control-plane layers on top:
//!
//! * [`RunConfig`] (in [`config`]) — the typed harness configuration that
//!   subsumes the `ASCC_*` env sprawl (one parse site, one apply site);
//! * [`cli`] — the unified flag grammar every binary parses with;
//! * [`orchestrate`] — the experiment engine extracted from `run_all`
//!   (selection, journaling, retries, timeouts, cancellation);
//! * [`serve`] — the `ascc-serve` daemon application: jobs, journal
//!   tailing, live snapshots and Prometheus `/metrics` over the
//!   `ascc_serve` HTTP substrate.

pub mod cli;
pub mod config;
pub mod orchestrate;
pub mod scaling;
pub mod serve;

pub use config::RunConfig;

use ascc::{ArcConfig, AsccConfig, AvgccConfig, RdcbConfig, TinyLfuConfig};
use cmp_cache::{LlcPolicy, PrivateBaseline};
use cmp_json::Value;
use cmp_sim::{
    fairness_improvement, geomean_improvement, run_mix, weighted_speedup_improvement, RunResult,
    SweepPool, SystemConfig,
};
use cmp_trace::WorkloadMix;
use spill_baselines::{CcPolicy, DipConfig, DsrConfig, DsrDipPolicy, EccConfig};

/// Simulation lengths, overridable via environment:
/// `ASCC_INSTRS` (measured instructions per core), `ASCC_WARMUP`, and
/// `ASCC_QUICK=1` for a fast smoke-test scale.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Measured instructions per core.
    pub instrs: u64,
    /// Warmup instructions per core.
    pub warmup: u64,
    /// Base RNG seed for workloads.
    pub seed: u64,
}

impl Scale {
    /// Reads the scale from the environment (defaults: 12 M measured, 4 M
    /// warmup instructions per core — long enough to cover several passes
    /// of the >1 MB thrashing loops of the capacity-hungry benchmarks).
    pub fn from_env() -> Self {
        let env_u64 = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
        if std::env::var("ASCC_QUICK").is_ok_and(|v| v != "0") {
            return Scale {
                instrs: env_u64("ASCC_INSTRS").unwrap_or(600_000),
                warmup: env_u64("ASCC_WARMUP").unwrap_or(200_000),
                seed: env_u64("ASCC_SEED").unwrap_or(42),
            };
        }
        Scale {
            instrs: env_u64("ASCC_INSTRS").unwrap_or(12_000_000),
            warmup: env_u64("ASCC_WARMUP").unwrap_or(4_000_000),
            seed: env_u64("ASCC_SEED").unwrap_or(42),
        }
    }
}

/// The policy zoo: every design evaluated anywhere in the paper.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Policy {
    /// Private LLCs, no cooperation.
    Baseline,
    /// Cooperative Caching (random spill).
    Cc,
    /// Dynamic Spill-Receive.
    Dsr,
    /// Three-state DSR (Fig. 5).
    Dsr3s,
    /// DSR with DIP insertion.
    DsrDip,
    /// Standalone DIP (no spilling).
    Dip,
    /// Elastic Cooperative Caching.
    Ecc,
    /// The paper's ASCC.
    Ascc,
    /// Two-state ASCC (Fig. 5).
    Ascc2s,
    /// ASCC at a fixed number of counters (Table 1).
    AsccN(u32),
    /// Fig. 4 ablation: local random spilling.
    Lrs,
    /// Fig. 4 ablation: local minimum spilling.
    Lms,
    /// Fig. 4 ablation: global minimum spilling.
    Gms,
    /// Fig. 4 ablation: LMS + plain BIP.
    LmsBip,
    /// Fig. 4 ablation: GMS + SABIP.
    GmsSabip,
    /// The paper's AVGCC.
    Avgcc,
    /// AVGCC with a counter cap (§7).
    AvgccMax(u32),
    /// QoS-aware AVGCC (§8).
    QosAvgcc,
    /// ASCC using the hardware spill-allocator structure (§3.1 ablation).
    AsccAllocator,
    /// ASCC without the §3.2 swap (ablation).
    AsccNoSwap,
    /// Per-set ARC (post-2012 frontier contender).
    Arc,
    /// TinyLFU admission filtering over the private-LRU baseline
    /// (post-2012 frontier contender).
    TinyLfu,
    /// Reuse-distance clean-line copy-back over ASCC (post-2012 frontier
    /// contender).
    RdCb,
}

impl Policy {
    /// The designs compared in the headline figures (7, 8, 9, 10).
    pub const HEADLINE: [Policy; 5] = [
        Policy::Dsr,
        Policy::DsrDip,
        Policy::Ecc,
        Policy::Ascc,
        Policy::Avgcc,
    ];

    /// The full non-baseline zoo: every named design (paper policies plus
    /// the post-2012 frontier contenders), excluding the parameterised
    /// variants and single-figure ablations. The scenario experiments
    /// (`tenant_traffic`, `sharing_degree`) sweep exactly this set against
    /// the private baseline.
    pub const ZOO: [Policy; 13] = [
        Policy::Cc,
        Policy::Dsr,
        Policy::Dsr3s,
        Policy::DsrDip,
        Policy::Dip,
        Policy::Ecc,
        Policy::Ascc,
        Policy::Ascc2s,
        Policy::Avgcc,
        Policy::QosAvgcc,
        Policy::Arc,
        Policy::TinyLfu,
        Policy::RdCb,
    ];

    /// Builds the policy for a system configuration.
    pub fn build(&self, cfg: &SystemConfig) -> Box<dyn LlcPolicy> {
        let (cores, sets, ways) = (cfg.cores, cfg.l2.sets(), cfg.l2.ways());
        match *self {
            Policy::Baseline => Box::new(PrivateBaseline::new()),
            Policy::Cc => Box::new(CcPolicy::new(cores, 0xCC)),
            Policy::Dsr => Box::new(DsrConfig::dsr(cores, sets).build()),
            Policy::Dsr3s => Box::new(DsrConfig::dsr_3s(cores, sets).build()),
            Policy::DsrDip => Box::new(DsrDipPolicy::new(cores, sets)),
            Policy::Dip => Box::new(DipConfig::dip(cores, sets).build()),
            Policy::Ecc => Box::new(EccConfig::ecc(cores, ways).build()),
            Policy::Ascc => Box::new(AsccConfig::ascc(cores, sets, ways).build()),
            Policy::Ascc2s => Box::new(AsccConfig::ascc_2s(cores, sets, ways).build()),
            Policy::AsccN(n) => {
                Box::new(AsccConfig::ascc(cores, sets, ways).with_counters(n).build())
            }
            Policy::Lrs => Box::new(AsccConfig::lrs(cores, sets, ways).build()),
            Policy::Lms => Box::new(AsccConfig::lms(cores, sets, ways).build()),
            Policy::Gms => Box::new(AsccConfig::gms(cores, sets, ways).build()),
            Policy::LmsBip => Box::new(AsccConfig::lms_bip(cores, sets, ways).build()),
            Policy::GmsSabip => Box::new(AsccConfig::gms_sabip(cores, sets, ways).build()),
            Policy::Avgcc => Box::new(AvgccConfig::avgcc(cores, sets, ways).build()),
            Policy::AvgccMax(n) => Box::new(
                AvgccConfig::avgcc(cores, sets, ways)
                    .with_max_counters(n)
                    .build(),
            ),
            Policy::QosAvgcc => Box::new(AvgccConfig::qos_avgcc(cores, sets, ways).build()),
            Policy::AsccAllocator => {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.use_spill_allocator = true;
                Box::new(c.build())
            }
            Policy::AsccNoSwap => {
                let mut c = AsccConfig::ascc(cores, sets, ways);
                c.swap = false;
                Box::new(c.build())
            }
            Policy::Arc => Box::new(ArcConfig::new(cores, sets, ways).build()),
            Policy::TinyLfu => Box::new(TinyLfuConfig::for_geometry(cores, sets, ways).build()),
            Policy::RdCb => Box::new(RdcbConfig::new(cores, sets, ways).build()),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match *self {
            Policy::Baseline => "baseline".into(),
            Policy::Cc => "CC".into(),
            Policy::Dsr => "DSR".into(),
            Policy::Dsr3s => "DSR-3S".into(),
            Policy::DsrDip => "DSR+DIP".into(),
            Policy::Dip => "DIP".into(),
            Policy::Ecc => "ECC".into(),
            Policy::Ascc => "ASCC".into(),
            Policy::Ascc2s => "ASCC-2S".into(),
            Policy::AsccN(n) => format!("ASCC{n}"),
            Policy::Lrs => "LRS".into(),
            Policy::Lms => "LMS".into(),
            Policy::Gms => "GMS".into(),
            Policy::LmsBip => "LMS+BIP".into(),
            Policy::GmsSabip => "GMS+SABIP".into(),
            Policy::Avgcc => "AVGCC".into(),
            Policy::AvgccMax(n) => format!("AVGCC-c{n}"),
            Policy::QosAvgcc => "QoS-AVGCC".into(),
            Policy::AsccAllocator => "ASCC-alloc".into(),
            Policy::AsccNoSwap => "ASCC-noswap".into(),
            Policy::Arc => "ARC".into(),
            Policy::TinyLfu => "TinyLFU".into(),
            Policy::RdCb => "RD-CB".into(),
        }
    }
}

/// Runs `f` over `items` on a [`SweepPool`] sized by `ASCC_JOBS` (default:
/// all available cores), preserving submission order.
pub fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    SweepPool::from_env().map(items, f)
}

/// Full results of a (mix × policy) grid.
#[derive(Debug)]
pub struct GridResult {
    /// Mix names, row order.
    pub mixes: Vec<String>,
    /// Policy labels, column order (baseline excluded).
    pub policies: Vec<String>,
    /// Baseline run per mix.
    pub baselines: Vec<RunResult>,
    /// Policy runs: `runs[mix][policy]`.
    pub runs: Vec<Vec<RunResult>>,
}

impl GridResult {
    /// Weighted-speedup improvement table `[mix][policy]`.
    pub fn speedup_improvements(&self) -> Vec<Vec<f64>> {
        self.runs
            .iter()
            .zip(&self.baselines)
            .map(|(row, base)| {
                row.iter()
                    .map(|r| weighted_speedup_improvement(r, base))
                    .collect()
            })
            .collect()
    }

    /// Fairness improvement table `[mix][policy]`.
    pub fn fairness_improvements(&self) -> Vec<Vec<f64>> {
        self.runs
            .iter()
            .zip(&self.baselines)
            .map(|(row, base)| row.iter().map(|r| fairness_improvement(r, base)).collect())
            .collect()
    }

    /// Geomean row for a `[mix][policy]` table.
    pub fn geomeans(table: &[Vec<f64>]) -> Vec<f64> {
        if table.is_empty() {
            return Vec::new();
        }
        (0..table[0].len())
            .map(|p| {
                let col: Vec<f64> = table.iter().map(|row| row[p]).collect();
                geomean_improvement(&col)
            })
            .collect()
    }
}

/// Runs every mix under the baseline plus each policy, in parallel.
pub fn run_grid(
    cfg: &SystemConfig,
    mixes: &[WorkloadMix],
    policies: &[Policy],
    scale: Scale,
) -> GridResult {
    let jobs: Vec<(usize, Option<Policy>)> = (0..mixes.len())
        .flat_map(|m| std::iter::once((m, None)).chain(policies.iter().map(move |&p| (m, Some(p)))))
        .collect();
    let results = parallel_map(jobs, |(m, p)| {
        let policy = p.map_or_else(|| Policy::Baseline.build(cfg), |p| p.build(cfg));
        run_mix(
            cfg,
            &mixes[m],
            policy,
            scale.instrs,
            scale.warmup,
            scale.seed,
        )
    });
    // Unpack in (mix-major) order: baseline then policies.
    let per_mix = policies.len() + 1;
    let mut baselines = Vec::with_capacity(mixes.len());
    let mut runs = Vec::with_capacity(mixes.len());
    let mut it = results.into_iter();
    for _ in 0..mixes.len() {
        baselines.push(it.next().expect("baseline run"));
        runs.push(
            (0..per_mix - 1)
                .map(|_| it.next().expect("policy run"))
                .collect(),
        );
    }
    GridResult {
        mixes: mixes.iter().map(|m| m.name.clone()).collect(),
        policies: policies.iter().map(|p| p.label()).collect(),
        baselines,
        runs,
    }
}

/// One-line summary of the counters a policy exposes through its
/// [`cmp_cache::PolicySnapshot`], omitting fields the policy leaves unset.
pub fn snapshot_summary(s: &cmp_cache::PolicySnapshot) -> String {
    let mut parts = Vec::new();
    if let Some(h) = s.role_totals() {
        parts.push(format!(
            "roles r/n/s={}/{}/{}",
            h.receiver, h.neutral, h.spiller
        ));
    }
    if let Some(x) = s.capacity_activations {
        parts.push(format!("capacity_activations={x}"));
    }
    if let Some(x) = s.granularity_changes {
        parts.push(format!("granularity_changes={x}"));
    }
    if let Some(x) = s.repartitions {
        parts.push(format!("repartitions={x}"));
    }
    if let Some(x) = s.spills_refused {
        parts.push(format!("spills_refused={x}"));
    }
    let modes: Vec<String> = s
        .per_core
        .iter()
        .filter_map(|c| c.follower_mode.map(|m| format!("c{}:{m}", c.core.index())))
        .collect();
    if !modes.is_empty() {
        parts.push(format!("modes[{}]", modes.join(" ")));
    }
    if parts.is_empty() {
        parts.push("(no snapshot fields)".into());
    }
    parts.join(" ")
}

/// Formats a fraction as a signed percentage, e.g. `+7.8%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Prints a fixed-width table.
pub fn print_table(headers: &[String], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect();
        println!("{}", joined.join("  "));
    };
    line(headers);
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        line(row);
    }
}

/// Prints an improvement table (`[mix][policy]`) with a geomean row, and
/// returns the geomeans.
pub fn print_improvement_table(
    title: &str,
    mixes: &[String],
    policies: &[String],
    table: &[Vec<f64>],
) -> Vec<f64> {
    println!("\n== {title} ==");
    let mut headers = vec!["workload".to_string()];
    headers.extend(policies.iter().cloned());
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (m, name) in mixes.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(table[m].iter().map(|&x| pct(x)));
        rows.push(row);
    }
    let geo = GridResult::geomeans(table);
    let mut grow = vec!["geomean".to_string()];
    grow.extend(geo.iter().map(|&x| pct(x)));
    rows.push(grow);
    print_table(&headers, &rows);
    geo
}

/// Writes `text` to `path` atomically (temp file in the same directory,
/// then rename), creating parent directories as needed.
///
/// Every results artifact — `results/*.json`, `BENCH_throughput.json`,
/// EpochRecorder dumps, the run manifest — goes through here so a kill
/// mid-write can never leave a torn file that poisons later report or
/// compare steps.
pub fn atomic_write_text(path: impl AsRef<std::path::Path>, text: &str) -> std::io::Result<()> {
    cmp_snap::atomic_write(path.as_ref(), text.as_bytes())
}

/// The fault-tolerant orchestration journal behind `run_all`
/// (`results/run_manifest.json`).
///
/// Every per-binary transition (launch, completion, failure, timeout) is
/// recorded and the whole journal republished atomically, so a killed
/// orchestrator leaves an accurate account: `run_all --resume` skips
/// entries marked done and re-runs everything else (an entry still marked
/// running means the previous orchestrator died mid-experiment).
pub mod manifest {
    use crate::atomic_write_text;
    use cmp_json::Value;
    use std::path::{Path, PathBuf};

    /// Journal format version.
    pub const MANIFEST_VERSION: u64 = 1;

    /// Outcome of one experiment binary.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum Status {
        /// Launched but not finished — after a crash this marks the
        /// experiment that was in flight.
        Running,
        /// Exited successfully.
        Done,
        /// Exited with a failure status.
        Failed,
        /// Killed after exceeding the per-binary wall-clock timeout.
        TimedOut,
    }

    impl Status {
        /// The journal's string form.
        pub fn as_str(self) -> &'static str {
            match self {
                Status::Running => "running",
                Status::Done => "done",
                Status::Failed => "failed",
                Status::TimedOut => "timeout",
            }
        }

        /// Parses the journal's string form.
        pub fn parse(s: &str) -> Option<Status> {
            match s {
                "running" => Some(Status::Running),
                "done" => Some(Status::Done),
                "failed" => Some(Status::Failed),
                "timeout" => Some(Status::TimedOut),
                _ => None,
            }
        }
    }

    /// One experiment's journal entry.
    #[derive(Clone, Debug)]
    pub struct Entry {
        /// Experiment binary name, e.g. `"fig08_speedup4"`.
        pub name: String,
        /// Latest status.
        pub status: Status,
        /// Attempts launched so far (1-based).
        pub attempts: u64,
        /// Wall-clock seconds of the latest attempt.
        pub seconds: f64,
    }

    /// The journal: per-binary entries in first-seen order, republished
    /// atomically on every [`record`](RunManifest::record).
    #[derive(Debug)]
    pub struct RunManifest {
        path: PathBuf,
        entries: Vec<Entry>,
    }

    impl RunManifest {
        /// Loads the journal at `path`, or starts an empty one if the file
        /// is missing or unparseable (a torn journal is impossible by
        /// construction, but a hand-edited one should not wedge the run).
        pub fn load_or_new(path: &Path) -> RunManifest {
            let entries = std::fs::read_to_string(path)
                .ok()
                .and_then(|text| Value::parse(&text).ok())
                .and_then(|doc| Self::entries_of(&doc))
                .unwrap_or_default();
            RunManifest {
                path: path.to_path_buf(),
                entries,
            }
        }

        fn entries_of(doc: &Value) -> Option<Vec<Entry>> {
            let mut entries = Vec::new();
            for e in doc.get("entries")?.as_array()? {
                entries.push(Entry {
                    name: e.get("name")?.as_str()?.to_string(),
                    status: Status::parse(e.get("status")?.as_str()?)?,
                    attempts: e.get("attempts")?.as_u64()?,
                    seconds: e.get("seconds")?.as_f64()?,
                });
            }
            Some(entries)
        }

        /// The entry for `name`, if any run has been journaled.
        pub fn entry(&self, name: &str) -> Option<&Entry> {
            self.entries.iter().find(|e| e.name == name)
        }

        /// Whether `name` completed successfully in a previous run.
        pub fn is_done(&self, name: &str) -> bool {
            self.entry(name).is_some_and(|e| e.status == Status::Done)
        }

        /// Upserts `name`'s entry and republishes the journal atomically.
        pub fn record(
            &mut self,
            name: &str,
            status: Status,
            attempts: u64,
            seconds: f64,
        ) -> std::io::Result<()> {
            match self.entries.iter_mut().find(|e| e.name == name) {
                Some(e) => {
                    e.status = status;
                    e.attempts = attempts;
                    e.seconds = seconds;
                }
                None => self.entries.push(Entry {
                    name: name.to_string(),
                    status,
                    attempts,
                    seconds,
                }),
            }
            atomic_write_text(&self.path, &self.to_json().pretty())
        }

        /// The journal as a JSON document.
        pub fn to_json(&self) -> Value {
            Value::object()
                .insert("version", MANIFEST_VERSION as f64)
                .insert(
                    "entries",
                    Value::Array(
                        self.entries
                            .iter()
                            .map(|e| {
                                Value::object()
                                    .insert("name", e.name.clone())
                                    .insert("status", e.status.as_str())
                                    .insert("attempts", e.attempts as f64)
                                    .insert("seconds", e.seconds)
                            })
                            .collect(),
                    ),
                )
        }
    }
}

/// A serialisable record of one experiment, written under `results/`.
#[derive(Debug)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig08"`.
    pub id: String,
    /// Human description.
    pub title: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// Row labels.
    pub rows: Vec<String>,
    /// `values[row][column]`.
    pub values: Vec<Vec<f64>>,
    /// What the paper reports for the headline number(s), for EXPERIMENTS.md.
    pub paper_reference: String,
}

impl ExperimentRecord {
    /// The record as a JSON document.
    pub fn to_json(&self) -> Value {
        Value::object()
            .insert("id", self.id.clone())
            .insert("title", self.title.clone())
            .insert("columns", self.columns.clone())
            .insert("rows", self.rows.clone())
            .insert(
                "values",
                Value::Array(self.values.iter().map(|row| row.clone().into()).collect()),
            )
            .insert("paper_reference", self.paper_reference.clone())
    }

    /// Writes the record to `results/<id>.json` (under the workspace root
    /// or the current directory).
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn save(&self) {
        let path = std::path::Path::new("results").join(format!("{}.json", self.id));
        atomic_write_text(&path, &self.to_json().pretty())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!("\n[saved {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn policy_labels_and_build() {
        let cfg = SystemConfig::table2(2);
        for p in [
            Policy::Baseline,
            Policy::Cc,
            Policy::Dsr,
            Policy::Dsr3s,
            Policy::DsrDip,
            Policy::Dip,
            Policy::Ecc,
            Policy::Ascc,
            Policy::Ascc2s,
            Policy::AsccN(64),
            Policy::Lrs,
            Policy::Lms,
            Policy::Gms,
            Policy::LmsBip,
            Policy::GmsSabip,
            Policy::Avgcc,
            Policy::AvgccMax(128),
            Policy::QosAvgcc,
            Policy::AsccAllocator,
            Policy::AsccNoSwap,
            Policy::Arc,
            Policy::TinyLfu,
            Policy::RdCb,
        ] {
            let built = p.build(&cfg);
            assert!(!built.name().is_empty(), "{p:?}");
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn geomean_rows() {
        let table = vec![vec![0.1, 0.2], vec![0.1, 0.0]];
        let g = GridResult::geomeans(&table);
        assert!((g[0] - 0.1).abs() < 1e-9);
        assert!(g[1] > 0.09 && g[1] < 0.11);
    }

    #[test]
    fn snapshot_summary_renders_present_fields_only() {
        let empty = cmp_cache::PolicySnapshot::new("p");
        assert_eq!(snapshot_summary(&empty), "(no snapshot fields)");
        let mut s = cmp_cache::PolicySnapshot::new("ASCC");
        s.capacity_activations = Some(3);
        let mut c = cmp_cache::CoreSnapshot::new(cmp_cache::CoreId(0));
        c.follower_mode = Some("bip");
        s.per_core.push(c);
        let line = snapshot_summary(&s);
        assert!(line.contains("capacity_activations=3"), "{line}");
        assert!(line.contains("c0:bip"), "{line}");
        assert!(!line.contains("repartitions"), "{line}");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.078), "+7.8%");
        assert_eq!(pct(-0.021), "-2.1%");
    }

    #[test]
    fn atomic_write_replaces_and_creates_dirs() {
        let dir = std::env::temp_dir().join(format!("ascc-bench-aw-{}", std::process::id()));
        let path = dir.join("nested").join("out.json");
        atomic_write_text(&path, "first").unwrap();
        atomic_write_text(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No temp files left behind.
        let litter: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(litter.len(), 1, "{litter:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_tracks_status() {
        use manifest::{RunManifest, Status};
        let dir = std::env::temp_dir().join(format!("ascc-bench-man-{}", std::process::id()));
        let path = dir.join("run_manifest.json");

        // Missing file → empty journal.
        let mut m = RunManifest::load_or_new(&path);
        assert!(m.entry("fig08_speedup4").is_none());
        assert!(!m.is_done("fig08_speedup4"));

        m.record("fig08_speedup4", Status::Running, 1, 0.0).unwrap();
        m.record("fig08_speedup4", Status::TimedOut, 1, 12.5)
            .unwrap();
        m.record("fig08_speedup4", Status::Done, 2, 7.25).unwrap();
        m.record("ablations", Status::Failed, 3, 1.0).unwrap();

        // Reload and check the journal survived the round trip.
        let m2 = RunManifest::load_or_new(&path);
        assert!(m2.is_done("fig08_speedup4"));
        assert!(!m2.is_done("ablations"));
        let e = m2.entry("fig08_speedup4").unwrap();
        assert_eq!((e.status, e.attempts), (Status::Done, 2));
        assert!((e.seconds - 7.25).abs() < 1e-12);
        assert_eq!(m2.entry("ablations").unwrap().status, Status::Failed);

        // Garbage journal → empty, not a crash.
        std::fs::write(&path, "{ not json").unwrap();
        let m3 = RunManifest::load_or_new(&path);
        assert!(m3.entry("fig08_speedup4").is_none());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_status_strings_round_trip() {
        use manifest::Status;
        for s in [
            Status::Running,
            Status::Done,
            Status::Failed,
            Status::TimedOut,
        ] {
            assert_eq!(Status::parse(s.as_str()), Some(s));
        }
        assert_eq!(Status::parse("nonsense"), None);
    }
}
