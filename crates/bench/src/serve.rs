//! The `ascc-serve` daemon application: cache-as-a-service control plane.
//!
//! The HTTP substrate (listener, request/response types, Prometheus
//! writer) lives in the `ascc_serve` crate; this module is the
//! application on top — job management, orchestration, live observability
//! — composed into a binary by `bin/ascc_serve.rs`.
//!
//! ## Endpoints
//!
//! | Method & path        | Behaviour |
//! |----------------------|-----------|
//! | `GET /healthz`       | liveness: `{"ok": true}` |
//! | `POST /jobs`         | submit a job (JSON body, see below); `201` with the job document |
//! | `GET /jobs`          | list all jobs (most recent last) |
//! | `GET /jobs/:id`      | job detail; sweep jobs tail their on-disk `run_manifest.json` journal |
//! | `DELETE /jobs/:id`   | cooperative cancel (kills the in-flight experiment child) |
//! | `GET /snapshots/:id` | live [`EpochRecorder`] recording of a mix job as JSON |
//! | `GET /metrics`       | Prometheus text exposition (daemon + live-job counters) |
//! | `GET /config`        | current default [`RunConfig`] as JSON |
//! | `PUT /config`        | merge a partial config document (runtime toggles: workers, arena budget, checkpoint cadence, ...) |
//! | `POST /shutdown`     | cancel every job and stop the daemon |
//!
//! ## Job kinds
//!
//! * **Sweep** (default): `{"only": ["fig08"], "timeout": 600,
//!   "retries": 1, "config": {"jobs": 2, "ckpt_every": 50000}}` — runs
//!   the selected experiment binaries through the same
//!   [`orchestrate`](crate::orchestrate) engine as `run_all`, in a
//!   per-job working directory under the daemon root, so results are
//!   byte-identical to a CLI run at the same scale. Progress is read by
//!   tailing the job's `results/run_manifest.json`; a failed or killed
//!   experiment retries with `ASCC_RESUME=1` and restores its periodic
//!   checkpoints.
//! * **Mix**: `{"kind": "mix", "cores": 4, "mix": 0, "policy": "ASCC",
//!   "epoch_accesses": 20000}` — simulates one mix in-process with a live
//!   [`EpochRecorder`] probe, so `/snapshots/:id` and `/metrics` expose
//!   the policy's internal dynamics while the run is still going. Any
//!   `cores` in 1..=64 works ([`cmp_trace::mixes_for`] supplies synthetic
//!   mixes beyond the paper's 2- and 4-core lists); optional `"fabric"`
//!   (`"broadcast"` / `"directory"`, default directory) picks the
//!   coherence fabric and `"l2_ways"` resizes the LLC associativity —
//!   rejected with a clean 400 past the 16 ways the packed recency word
//!   can track. A `"scenario"` field (`"steady"`, `"churn"`,
//!   `"scan_storm"`, `"flash_crowd"`, `"diurnal"`) replays multi-tenant
//!   service traffic ([`cmp_trace::TenantScenario`]) instead of a SPEC
//!   mix under the same live probe.

use crate::cli::Cli;
use crate::orchestrate::{execute, select, Control, Plan};
use crate::{manifest::RunManifest, Policy, RunConfig, Scale};
use ascc_serve::http::{HttpServer, Request, Response, ShutdownHandle};
use ascc_serve::prometheus::{MetricKind, MetricsText};
use cmp_cache::{CacheGeometry, ObsEvent, ObsProbe, PolicySnapshot, MAX_WAYS};
use cmp_coherence::FabricKind;
use cmp_json::Value;
use cmp_sim::{batch_enabled, mix_sources, tenant_sources, CmpSystem, EpochRecorder, SystemConfig};
use cmp_trace::{mixes_for, TenantScenario, WorkloadMix};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the daemon is launched (bound address aside).
#[derive(Clone, Debug)]
pub struct DaemonOptions {
    /// Root directory for per-job working directories.
    pub root: PathBuf,
    /// Initial default configuration for new jobs (`PUT /config` updates
    /// it at runtime).
    pub config: RunConfig,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            root: PathBuf::from("results/serve"),
            config: RunConfig::from_env(),
        }
    }
}

/// Policies submittable by label over the API (the headline zoo plus
/// baselines — ablation variants stay CLI-only).
const API_POLICIES: &[(&str, Policy)] = &[
    ("baseline", Policy::Baseline),
    ("CC", Policy::Cc),
    ("DSR", Policy::Dsr),
    ("DSR+DIP", Policy::DsrDip),
    ("DIP", Policy::Dip),
    ("ECC", Policy::Ecc),
    ("ASCC", Policy::Ascc),
    ("AVGCC", Policy::Avgcc),
    ("QoS-AVGCC", Policy::QosAvgcc),
    ("ARC", Policy::Arc),
    ("TinyLFU", Policy::TinyLfu),
    ("RD-CB", Policy::RdCb),
];

fn parse_policy(label: &str) -> Option<Policy> {
    API_POLICIES
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(label))
        .map(|&(_, p)| p)
}

/// An [`ObsProbe`] that forwards into a shared recorder, so HTTP handler
/// threads can serve the recording while the simulation thread is still
/// appending to it.
struct LiveProbe(Arc<Mutex<EpochRecorder>>);

impl ObsProbe for LiveProbe {
    fn record(&mut self, event: ObsEvent) {
        self.0.lock().expect("recorder lock").record(event);
    }

    fn on_epoch(&mut self, index: u64, snapshot: &PolicySnapshot) {
        self.0
            .lock()
            .expect("recorder lock")
            .on_epoch(index, snapshot);
    }
}

/// Job lifecycle states (terminal states are set by the worker thread).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobState {
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Kind-specific job machinery.
enum JobKind {
    Sweep {
        /// The job's working directory (journal + results live under it).
        workdir: PathBuf,
        /// Selected experiment names, in run order.
        experiments: Vec<String>,
        /// Cancellation + current-child-pid handles shared with the worker.
        control: Control,
    },
    Mix {
        /// Human label, e.g. `"mix4-0 under ASCC"`.
        label: String,
        /// Live recording shared with the simulation thread.
        recorder: Arc<Mutex<EpochRecorder>>,
        /// Cooperative cancel flag checked once per simulated access.
        cancel: Arc<AtomicBool>,
        /// Core count (metrics labels).
        cores: usize,
        /// Simulated L1 accesses so far, refreshed by the run hook — the
        /// `/metrics` throughput-gauge numerator.
        accesses: Arc<AtomicU64>,
    },
}

struct Job {
    id: String,
    spec: Value,
    kind: JobKind,
    state: Mutex<JobState>,
    /// Failure detail once terminal.
    error: Mutex<Option<String>>,
    started: Instant,
    /// Wall-clock seconds once terminal.
    elapsed: Mutex<Option<f64>>,
}

impl Job {
    fn state(&self) -> JobState {
        *self.state.lock().expect("job state lock")
    }

    fn finish(&self, state: JobState, error: Option<String>) {
        *self.state.lock().expect("job state lock") = state;
        *self.error.lock().expect("job error lock") = error;
        *self.elapsed.lock().expect("job elapsed lock") =
            Some(self.started.elapsed().as_secs_f64());
    }

    fn seconds(&self) -> f64 {
        self.elapsed
            .lock()
            .expect("job elapsed lock")
            .unwrap_or_else(|| self.started.elapsed().as_secs_f64())
    }

    /// The short job document (`GET /jobs` rows).
    fn summary_json(&self) -> Value {
        let mut doc = Value::object()
            .insert("id", self.id.clone())
            .insert("state", self.state().as_str())
            .insert("seconds", self.seconds());
        doc = match &self.kind {
            JobKind::Sweep {
                experiments,
                control,
                workdir,
            } => {
                let pid = control.child_pid.load(Ordering::SeqCst);
                doc.insert("kind", "sweep")
                    .insert("experiments", experiments.clone())
                    .insert("workdir", workdir.display().to_string())
                    .insert("child_pid", pid as f64)
            }
            JobKind::Mix {
                label, recorder, ..
            } => {
                let epochs = recorder.lock().expect("recorder lock").epochs().len();
                doc.insert("kind", "mix")
                    .insert("label", label.clone())
                    .insert("epochs_recorded", epochs as f64)
            }
        };
        if let Some(e) = self.error.lock().expect("job error lock").as_ref() {
            doc = doc.insert("error", e.clone());
        }
        doc
    }

    /// The full job document (`GET /jobs/:id`): the summary plus the
    /// submitted spec, and for sweep jobs the live journal tailed from
    /// `<workdir>/results/run_manifest.json`.
    fn detail_json(&self) -> Value {
        let mut doc = self.summary_json().insert("spec", self.spec.clone());
        if let JobKind::Sweep { workdir, .. } = &self.kind {
            let journal = workdir.join("results").join("run_manifest.json");
            doc = doc.insert("manifest", RunManifest::load_or_new(&journal).to_json());
        }
        doc
    }
}

/// Shared daemon state behind the handler closure.
pub struct DaemonState {
    root: PathBuf,
    bin_dir: PathBuf,
    config: Mutex<RunConfig>,
    jobs: Mutex<Vec<Arc<Job>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    started: Instant,
    shutdown: ShutdownHandle,
}

impl std::fmt::Debug for DaemonState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonState")
            .field("root", &self.root)
            .finish_non_exhaustive()
    }
}

impl DaemonState {
    fn new(opts: DaemonOptions, shutdown: ShutdownHandle) -> DaemonState {
        let bin_dir = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.to_path_buf()))
            .unwrap_or_else(|| PathBuf::from("."));
        DaemonState {
            root: opts.root,
            bin_dir,
            config: Mutex::new(opts.config),
            jobs: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            started: Instant::now(),
            shutdown,
        }
    }

    fn jobs(&self) -> MutexGuard<'_, Vec<Arc<Job>>> {
        self.jobs.lock().expect("jobs lock")
    }

    fn job(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs().iter().find(|j| j.id == id).cloned()
    }

    fn cancel_job(&self, job: &Job) {
        match &job.kind {
            JobKind::Sweep { control, .. } => control.cancel(),
            JobKind::Mix { cancel, .. } => cancel.store(true, Ordering::SeqCst),
        }
    }

    /// Cancels every job and joins the worker threads (shutdown path).
    fn drain(&self) {
        for job in self.jobs().iter() {
            self.cancel_job(job);
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for w in workers {
            let _ = w.join();
        }
    }

    // ----- job creation ---------------------------------------------------

    fn create_job(self: &Arc<Self>, spec: Value) -> Result<Arc<Job>, String> {
        let kind = spec
            .get("kind")
            .and_then(Value::as_str)
            .unwrap_or("sweep")
            .to_string();
        match kind.as_str() {
            "sweep" => self.create_sweep_job(spec),
            "mix" => self.create_mix_job(spec),
            other => Err(format!("unknown job kind {other:?} (sweep or mix)")),
        }
    }

    fn create_sweep_job(self: &Arc<Self>, spec: Value) -> Result<Arc<Job>, String> {
        let filters: Vec<String> = match spec.get("only") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("\"only\" wants an array of substrings")?
                .iter()
                .map(|f| {
                    f.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("\"only\" entry {f} is not a string"))
                })
                .collect::<Result<_, _>>()?,
        };
        let experiments: Vec<String> = select(&filters)?.into_iter().map(str::to_string).collect();
        let mut config = self.config.lock().expect("config lock").clone();
        if let Some(c) = spec.get("config") {
            config.merge_json(c)?;
        }
        let timeout = spec
            .get("timeout")
            .map(|v| v.as_u64().ok_or("\"timeout\" wants seconds"))
            .transpose()?
            .map(Duration::from_secs);
        let retries = spec
            .get("retries")
            .map(|v| v.as_u64().ok_or("\"retries\" wants an integer"))
            .transpose()?
            .unwrap_or(1) as u32;

        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let workdir = self.root.join(&id);
        std::fs::create_dir_all(workdir.join("results"))
            .map_err(|e| format!("cannot create {}: {e}", workdir.display()))?;

        let control = Control::new();
        let plan = Plan {
            experiments: experiments.clone(),
            workdir: workdir.clone(),
            bin_dir: self.bin_dir.clone(),
            config,
            timeout,
            retries,
            quiet: false,
        };
        let job = Arc::new(Job {
            id: id.clone(),
            spec,
            kind: JobKind::Sweep {
                workdir,
                experiments,
                control: control.clone(),
            },
            state: Mutex::new(JobState::Running),
            error: Mutex::new(None),
            started: Instant::now(),
            elapsed: Mutex::new(None),
        });
        let worker_job = Arc::clone(&job);
        let worker = std::thread::spawn(move || {
            let summary = execute(&plan, &control);
            if summary.cancelled {
                worker_job.finish(JobState::Cancelled, None);
            } else if summary.failures.is_empty() {
                worker_job.finish(JobState::Done, None);
            } else {
                worker_job.finish(
                    JobState::Failed,
                    Some(format!("failed experiments: {:?}", summary.failures)),
                );
            }
        });
        self.workers.lock().expect("workers lock").push(worker);
        self.jobs().push(Arc::clone(&job));
        Ok(job)
    }

    fn create_mix_job(self: &Arc<Self>, spec: Value) -> Result<Arc<Job>, String> {
        let cores = spec
            .get("cores")
            .map(|v| v.as_u64().ok_or("\"cores\" wants 1..=64"))
            .transpose()?
            .unwrap_or(4) as usize;
        if !(1..=64).contains(&cores) {
            return Err(format!("cores must be 1..=64, got {cores}"));
        }
        let fabric = match spec.get("fabric").map(Value::as_str) {
            None => FabricKind::Directory,
            Some(Some("directory")) => FabricKind::Directory,
            Some(Some("broadcast")) => FabricKind::Broadcast,
            Some(f) => return Err(format!("unknown fabric {f:?}; known: broadcast, directory")),
        };
        let mut cfg = SystemConfig::table2(cores).with_fabric(fabric);
        if let Some(w) = spec
            .get("l2_ways")
            .map(|v| v.as_u64().ok_or("\"l2_ways\" wants a way count"))
            .transpose()?
        {
            // Validated here, not in the worker thread: a 17-way request
            // must come back as a clean 400, not a panic in the recency
            // word (which packs a set's LRU order at 4 bits per way).
            cfg.l2 = CacheGeometry::from_capacity(
                cfg.l2.capacity_bytes(),
                u16::try_from(w).unwrap_or(u16::MAX),
                cfg.l2.line_bytes(),
            )
            .map_err(|e| {
                format!("l2_ways {w}: {e} (the packed recency word tracks at most {MAX_WAYS} ways)")
            })?;
        }
        // A "scenario" field replays multi-tenant service traffic instead
        // of a SPEC mix; the two sources are mutually exclusive and the
        // scenario wins (the "mix" field is ignored when both appear).
        let scenario = match spec.get("scenario").map(Value::as_str) {
            None => None,
            Some(Some(name)) => Some(TenantScenario::parse(name).ok_or_else(|| {
                let known: Vec<&str> = TenantScenario::ALL.iter().map(|s| s.name()).collect();
                format!("unknown scenario {name:?}; known: {}", known.join(", "))
            })?),
            Some(None) => return Err("\"scenario\" wants a string".into()),
        };
        let mix: Option<WorkloadMix> = if scenario.is_some() {
            None
        } else {
            let mixes: Vec<WorkloadMix> = mixes_for(cores);
            let mix_idx = spec
                .get("mix")
                .map(|v| v.as_u64().ok_or("\"mix\" wants an index"))
                .transpose()?
                .unwrap_or(0) as usize;
            Some(
                mixes
                    .get(mix_idx)
                    .ok_or_else(|| {
                        format!("mix index {mix_idx} out of range (0..{})", mixes.len())
                    })?
                    .clone(),
            )
        };
        let policy_label = spec
            .get("policy")
            .and_then(Value::as_str)
            .unwrap_or("ASCC")
            .to_string();
        let policy = parse_policy(&policy_label).ok_or_else(|| {
            let known: Vec<&str> = API_POLICIES.iter().map(|(n, _)| *n).collect();
            format!(
                "unknown policy {policy_label:?}; known: {}",
                known.join(", ")
            )
        })?;
        let scale = Scale::from_env();
        let instrs = spec
            .get("instrs")
            .and_then(Value::as_u64)
            .unwrap_or(scale.instrs);
        let warmup = spec
            .get("warmup")
            .and_then(Value::as_u64)
            .unwrap_or(scale.warmup);
        let seed = spec
            .get("seed")
            .and_then(Value::as_u64)
            .unwrap_or(scale.seed);
        let epoch = spec
            .get("epoch_accesses")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| (instrs / 50).max(1_000));

        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let recorder = Arc::new(Mutex::new(EpochRecorder::new(cores)));
        let cancel = Arc::new(AtomicBool::new(false));
        let accesses = Arc::new(AtomicU64::new(0));
        let label = match (&scenario, &mix) {
            (Some(s), _) => format!("tenant:{} under {}", s.name(), policy.label()),
            (None, Some(m)) => format!("{} under {}", m.name, policy.label()),
            (None, None) => unreachable!("either a scenario or a mix is always selected"),
        };
        let job = Arc::new(Job {
            id: id.clone(),
            spec,
            kind: JobKind::Mix {
                label,
                recorder: Arc::clone(&recorder),
                cancel: Arc::clone(&cancel),
                cores,
                accesses: Arc::clone(&accesses),
            },
            state: Mutex::new(JobState::Running),
            error: Mutex::new(None),
            started: Instant::now(),
            elapsed: Mutex::new(None),
        });
        let worker_job = Arc::clone(&job);
        let worker = std::thread::spawn(move || {
            let sources = match (scenario, &mix) {
                (Some(s), _) => tenant_sources(s, cores, seed),
                (None, Some(m)) => mix_sources(m, seed),
                (None, None) => unreachable!("either a scenario or a mix is always selected"),
            };
            let mut sys = CmpSystem::with_probe_sources(
                cfg.clone(),
                policy.build(&cfg),
                sources,
                LiveProbe(Arc::clone(&recorder)),
                epoch,
            );
            // Refresh the live access counter from each hook (the batched
            // engine fires it with flushed state every METRICS_EVERY global
            // accesses; the streaming fallback after every access).
            let live = |sys: &mut CmpSystem<LiveProbe>| {
                accesses.store(sys.total_accesses(), Ordering::Relaxed);
                !cancel.load(Ordering::Relaxed)
            };
            const METRICS_EVERY: u64 = 4096;
            let outcome = if batch_enabled() {
                sys.try_run_batched(instrs, warmup, METRICS_EVERY, live)
            } else {
                sys.try_run_with_hook(instrs, warmup, live)
            };
            accesses.store(sys.total_accesses(), Ordering::Relaxed);
            drop(sys);
            recorder.lock().expect("recorder lock").finish();
            match outcome {
                Some(_) => worker_job.finish(JobState::Done, None),
                None => worker_job.finish(JobState::Cancelled, None),
            }
        });
        self.workers.lock().expect("workers lock").push(worker);
        self.jobs().push(Arc::clone(&job));
        Ok(job)
    }

    // ----- /metrics -------------------------------------------------------

    fn metrics(&self) -> String {
        let mut m = MetricsText::new();
        m.family(
            "ascc_serve_uptime_seconds",
            "Seconds since the daemon started.",
            MetricKind::Gauge,
        );
        m.sample(
            "ascc_serve_uptime_seconds",
            &[],
            self.started.elapsed().as_secs_f64(),
        );

        let jobs = self.jobs().clone();
        m.family(
            "ascc_serve_jobs_total",
            "Jobs submitted over the daemon lifetime, by current state.",
            MetricKind::Counter,
        );
        for state in [
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            let n = jobs.iter().filter(|j| j.state() == state).count();
            m.sample(
                "ascc_serve_jobs_total",
                &[("state", state.as_str().to_string())],
                n as f64,
            );
        }

        {
            let cfg = self.config.lock().expect("config lock");
            m.family(
                "ascc_serve_config_workers",
                "Configured sweep worker count (0 = all available cores).",
                MetricKind::Gauge,
            );
            m.sample(
                "ascc_serve_config_workers",
                &[],
                cfg.jobs.unwrap_or(0) as f64,
            );
            m.family(
                "ascc_serve_config_arena_mb",
                "Configured trace-arena budget in MiB.",
                MetricKind::Gauge,
            );
            m.sample("ascc_serve_config_arena_mb", &[], cfg.arena_mb as f64);
            m.family(
                "ascc_serve_config_ckpt_every",
                "Configured checkpoint cadence in simulated accesses (0 = off).",
                MetricKind::Gauge,
            );
            m.sample("ascc_serve_config_ckpt_every", &[], cfg.ckpt_every as f64);
        }

        // Live ObsProbe counters of every mix job, family-major so each
        // family's samples stay contiguous (the linter enforces this).
        struct MixRow<'a> {
            id: &'a str,
            recorder: &'a Arc<Mutex<EpochRecorder>>,
            cores: usize,
            accesses: u64,
            seconds: f64,
        }
        let mix_jobs: Vec<MixRow<'_>> = jobs
            .iter()
            .filter_map(|j| match &j.kind {
                JobKind::Mix {
                    recorder,
                    cores,
                    accesses,
                    ..
                } => Some(MixRow {
                    id: j.id.as_str(),
                    recorder,
                    cores: *cores,
                    accesses: accesses.load(Ordering::Relaxed),
                    seconds: j.seconds(),
                }),
                JobKind::Sweep { .. } => None,
            })
            .collect();
        type CoreCounts = fn(&cmp_sim::EpochCounts) -> &Vec<u64>;
        let per_core_families: &[(&str, &str, CoreCounts)] = &[
            (
                "ascc_obs_local_hits_total",
                "Local L2 hits per core.",
                |c| &c.local_hits,
            ),
            ("ascc_obs_misses_total", "Local L2 misses per core.", |c| {
                &c.misses
            }),
            (
                "ascc_obs_remote_hits_total",
                "Misses served by a peer cache, per requesting core.",
                |c| &c.remote_hits,
            ),
            (
                "ascc_obs_mem_fetches_total",
                "Misses served by memory, per core.",
                |c| &c.mem_fetches,
            ),
        ];
        for (name, help, pick) in per_core_families {
            m.family(name, help, MetricKind::Counter);
            for job in &mix_jobs {
                let rec = job.recorder.lock().expect("recorder lock");
                for (core, v) in pick(rec.totals()).iter().enumerate() {
                    m.sample(
                        name,
                        &[("job", job.id.to_string()), ("core", core.to_string())],
                        *v as f64,
                    );
                }
            }
        }
        m.family(
            "ascc_obs_spills_total",
            "Spills out of each core (summed over receivers).",
            MetricKind::Counter,
        );
        for job in &mix_jobs {
            let rec = job.recorder.lock().expect("recorder lock");
            for from in 0..job.cores {
                let out: u64 = rec.totals().spill_matrix[from].iter().sum();
                m.sample(
                    "ascc_obs_spills_total",
                    &[("job", job.id.to_string()), ("from_core", from.to_string())],
                    out as f64,
                );
            }
        }
        m.family(
            "ascc_obs_epochs_recorded",
            "Closed observation epochs per mix job.",
            MetricKind::Gauge,
        );
        for job in &mix_jobs {
            let n = job.recorder.lock().expect("recorder lock").epochs().len();
            m.sample(
                "ascc_obs_epochs_recorded",
                &[("job", job.id.to_string())],
                n as f64,
            );
        }
        m.family(
            "ascc_mix_accesses_total",
            "Simulated L1 accesses so far per mix job (warm-up included).",
            MetricKind::Counter,
        );
        for job in &mix_jobs {
            m.sample(
                "ascc_mix_accesses_total",
                &[("job", job.id.to_string())],
                job.accesses as f64,
            );
        }
        m.family(
            "ascc_mix_accesses_per_second",
            "Live engine throughput per mix job: simulated accesses over \
             wall-clock seconds (frozen once the job finishes).",
            MetricKind::Gauge,
        );
        for job in &mix_jobs {
            m.sample(
                "ascc_mix_accesses_per_second",
                &[("job", job.id.to_string())],
                job.accesses as f64 / job.seconds.max(1e-9),
            );
        }
        m.render()
    }
}

// ----- routing -----------------------------------------------------------

fn route(state: &Arc<DaemonState>, req: &Request) -> Response {
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => Response::ok_json(&Value::object().insert("service", "ascc-serve").insert(
            "endpoints",
            vec![
                "GET /healthz".to_string(),
                "POST /jobs".to_string(),
                "GET /jobs".to_string(),
                "GET /jobs/:id".to_string(),
                "DELETE /jobs/:id".to_string(),
                "GET /snapshots/:id".to_string(),
                "GET /metrics".to_string(),
                "GET /config".to_string(),
                "PUT /config".to_string(),
                "POST /shutdown".to_string(),
            ],
        )),
        ("GET", ["healthz"]) => Response::ok_json(
            &Value::object()
                .insert("ok", true)
                .insert("uptime_seconds", state.started.elapsed().as_secs_f64()),
        ),
        ("POST", ["jobs"]) => {
            let spec = match req.json() {
                Ok(v) => v,
                Err(e) => return Response::bad_request(e),
            };
            match state.create_job(spec) {
                Ok(job) => Response::json(201, &job.detail_json()),
                Err(e) => Response::bad_request(e),
            }
        }
        ("GET", ["jobs"]) => {
            let jobs: Vec<Value> = state.jobs().iter().map(|j| j.summary_json()).collect();
            Response::ok_json(&Value::object().insert("jobs", jobs))
        }
        ("GET", ["jobs", id]) => match state.job(id) {
            Some(job) => Response::ok_json(&job.detail_json()),
            None => Response::not_found(&format!("job {id}")),
        },
        ("DELETE", ["jobs", id]) => match state.job(id) {
            Some(job) => {
                state.cancel_job(&job);
                Response::ok_json(
                    &Value::object()
                        .insert("id", job.id.clone())
                        .insert("cancelling", true),
                )
            }
            None => Response::not_found(&format!("job {id}")),
        },
        ("GET", ["snapshots", id]) => match state.job(id) {
            Some(job) => match &job.kind {
                JobKind::Mix {
                    recorder, label, ..
                } => {
                    let rec = recorder.lock().expect("recorder lock");
                    Response::ok_json(
                        &Value::object()
                            .insert("id", job.id.clone())
                            .insert("label", label.clone())
                            .insert("state", job.state().as_str())
                            .insert("recording", rec.to_json()),
                    )
                }
                JobKind::Sweep { .. } => Response::bad_request(format!(
                    "job {id} is a sweep job; live snapshots exist only for mix jobs \
                     (its results land under the job workdir)"
                )),
            },
            None => Response::not_found(&format!("job {id}")),
        },
        ("GET", ["metrics"]) => Response::text(200, state.metrics()),
        ("GET", ["config"]) => {
            Response::ok_json(&state.config.lock().expect("config lock").to_json())
        }
        ("PUT", ["config"]) => {
            let doc = match req.json() {
                Ok(v) => v,
                Err(e) => return Response::bad_request(e),
            };
            let mut cfg = state.config.lock().expect("config lock");
            match cfg.merge_json(&doc) {
                Ok(()) => Response::ok_json(&cfg.to_json()),
                Err(e) => Response::bad_request(e),
            }
        }
        ("POST", ["shutdown"]) => {
            state.shutdown.shutdown();
            Response::ok_json(&Value::object().insert("shutting_down", true))
        }
        ("GET" | "POST" | "PUT" | "DELETE", _) => Response::not_found(&req.path),
        (method, _) => Response::method_not_allowed(method, &req.path),
    }
}

/// Binds, announces the address on stdout (`ascc-serve listening on
/// http://...` — tests parse this line to find an ephemeral port), then
/// serves until `POST /shutdown`. On the way out every job is cancelled
/// and joined.
pub fn run(opts: DaemonOptions, addr: &str) -> io::Result<()> {
    std::fs::create_dir_all(&opts.root)?;
    let server = HttpServer::bind(addr)?;
    let local = server.local_addr()?;
    let state = Arc::new(DaemonState::new(opts, server.shutdown_handle()));
    println!("ascc-serve listening on http://{local}");
    println!("  job root: {}", state.root.display());
    let handler_state = Arc::clone(&state);
    server.serve(Arc::new(move |req: &Request| route(&handler_state, req)));
    println!(
        "ascc-serve: shutting down ({} job(s) submitted)",
        state.jobs().len()
    );
    state.drain();
    Ok(())
}

/// The `ascc_serve` binary's command line (kept here so the grammar is
/// testable without spawning the binary).
pub fn cli() -> Cli {
    Cli::new(
        "ascc_serve",
        "resident cache-as-a-service daemon: experiment jobs, live snapshots and metrics over HTTP",
    )
    .option(
        "--addr",
        "<host:port>",
        "listen address (default 127.0.0.1:7090; port 0 picks an ephemeral port)",
    )
    .option(
        "--root",
        "<dir>",
        "per-job working-directory root (default results/serve)",
    )
    .harness_flags()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_parse_case_insensitively() {
        assert_eq!(parse_policy("ascc"), Some(Policy::Ascc));
        assert_eq!(parse_policy("QoS-AVGCC"), Some(Policy::QosAvgcc));
        assert_eq!(parse_policy("dsr+dip"), Some(Policy::DsrDip));
        assert_eq!(parse_policy("nope"), None);
    }

    #[test]
    fn cli_grammar_has_daemon_flags() {
        let g = cli();
        let p = g
            .try_parse(&["--addr=127.0.0.1:0".to_string(), "--jobs=1".to_string()])
            .unwrap();
        assert_eq!(p.value("--addr"), Some("127.0.0.1:0"));
        assert!(g.help().contains("--root"));
    }

    #[test]
    fn bad_specs_are_rejected_before_any_thread_spawns() {
        let opts = DaemonOptions {
            root: std::env::temp_dir().join(format!("ascc-serve-t-{}", std::process::id())),
            config: RunConfig::default(),
        };
        let state = Arc::new(DaemonState::new(opts, ShutdownHandle::default()));
        let expect_err = |spec: &str| -> String {
            match state.create_job(Value::parse(spec).unwrap()) {
                Err(e) => e,
                Ok(job) => panic!("spec {spec} unexpectedly created {}", job.id),
            }
        };
        assert!(expect_err(r#"{"kind": "nope"}"#).contains("unknown job kind"));
        assert!(expect_err(r#"{"only": ["zzz"]}"#).contains("no experiment matches"));
        assert!(expect_err(r#"{"kind": "mix", "policy": "LRS2"}"#).contains("unknown policy"));
        assert!(expect_err(r#"{"kind": "mix", "cores": 65}"#).contains("cores must be 1..=64"));
        assert!(expect_err(r#"{"kind": "mix", "cores": 0}"#).contains("cores must be 1..=64"));
        assert!(expect_err(r#"{"kind": "mix", "fabric": "mesh"}"#).contains("unknown fabric"));
        let e = expect_err(r#"{"kind": "mix", "l2_ways": 17}"#);
        assert!(e.contains("recency word"), "{e}");
        assert!(expect_err(r#"{"kind": "mix", "mix": 99}"#).contains("out of range"));
        let e = expect_err(r#"{"kind": "mix", "scenario": "lunch_rush"}"#);
        assert!(
            e.contains("unknown scenario") && e.contains("flash_crowd"),
            "{e}"
        );
        assert!(expect_err(r#"{"kind": "mix", "scenario": 3}"#).contains("wants a string"));
        // A scenario job never touches the mix list, so an out-of-range
        // "mix" index alongside a valid scenario must not be an error —
        // reach the policy check instead to prove parsing got past it.
        let e = expect_err(r#"{"kind": "mix", "scenario": "churn", "mix": 99, "policy": "zzz"}"#);
        assert!(e.contains("unknown policy"), "{e}");
        assert!(state.jobs().is_empty());
        let _ = std::fs::remove_dir_all(&state.root);
    }

    #[test]
    fn metrics_lint_clean_with_no_jobs() {
        let opts = DaemonOptions {
            root: std::env::temp_dir().join(format!("ascc-serve-m-{}", std::process::id())),
            config: RunConfig::default(),
        };
        let state = Arc::new(DaemonState::new(opts, ShutdownHandle::default()));
        let text = state.metrics();
        ascc_serve::prometheus::lint(&text).unwrap_or_else(|e| panic!("{e:?}\n{text}"));
        assert!(text.contains("ascc_serve_uptime_seconds"));
        let _ = std::fs::remove_dir_all(&state.root);
    }
}
