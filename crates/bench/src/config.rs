//! The typed run configuration behind every harness knob.
//!
//! Historically each binary read its own slice of the `ASCC_*` environment
//! sprawl (`ASCC_JOBS` in the sweep pool, `ASCC_TRACE_CACHE` /
//! `ASCC_TRACE_ARENA_MB` in the trace arena, `ASCC_CKPT_*` + `ASCC_RESUME`
//! in the checkpoint layer, `ASCC_BENCH_OUT` in `sim_throughput`). This
//! module is now the one place that sprawl is parsed: [`RunConfig::from_env`]
//! reads every knob, the builder setters override them in code, and
//! [`RunConfig::apply`] republishes the struct back into the process
//! environment — the documented compatibility layer, so the substrate
//! crates (which cannot depend on the harness) keep their lazy
//! `from_env()` readers and pick the values up unchanged.
//!
//! The same struct is the body of the daemon's `PUT /config` (via
//! [`RunConfig::merge_json`] / [`RunConfig::to_json`]) and the source of
//! the flag/env table printed by `--help` ([`FIELDS`]).
//!
//! Ordering caveat: the trace arena and sweep pool latch their env reads
//! on first use, so call [`apply`](RunConfig::apply) (or spawn children
//! with [`env`](RunConfig::env)) *before* any simulation work.

use cmp_json::Value;
use std::path::PathBuf;

/// One knob's documentation row: CLI flag (if any), environment variable,
/// JSON key for `PUT /config`, and a one-line description with default.
#[derive(Clone, Copy, Debug)]
pub struct Field {
    /// CLI flag exposed by the unified parser, or `""` if env/JSON-only.
    pub flag: &'static str,
    /// Environment variable the substrate reads.
    pub env: &'static str,
    /// JSON key accepted by `PUT /config` / [`RunConfig::merge_json`].
    pub json: &'static str,
    /// Human description, including the default.
    pub help: &'static str,
}

/// Every knob [`RunConfig`] owns, in documentation order. `--help` output
/// and the README mapping table are both generated from this list, so the
/// three surfaces (flags, env, JSON) cannot drift apart silently.
pub const FIELDS: &[Field] = &[
    Field {
        flag: "--jobs",
        env: "ASCC_JOBS",
        json: "jobs",
        help: "sweep worker count (default: all available cores; 1 = run inline)",
    },
    Field {
        flag: "--cores",
        env: "ASCC_CORES",
        json: "cores",
        help: "simulated core count 1..=64 (default: each binary's own, usually 2 or 4)",
    },
    Field {
        flag: "",
        env: "ASCC_TRACE_CACHE",
        json: "trace_cache",
        help: "materialized trace arena on/off (default on; 0/false = stream every access)",
    },
    Field {
        flag: "",
        env: "ASCC_BATCH",
        json: "batch",
        help: "batched event-loop engine on/off (default on; 0/false = per-access streaming interleave)",
    },
    Field {
        flag: "",
        env: "ASCC_TRACE_ARENA_MB",
        json: "arena_mb",
        help: "trace arena byte budget in MiB (default 4096)",
    },
    Field {
        flag: "",
        env: "ASCC_CKPT_EVERY",
        json: "ckpt_every",
        help: "checkpoint every N simulated accesses (default 0 = disabled)",
    },
    Field {
        flag: "",
        env: "ASCC_CKPT_DIR",
        json: "ckpt_dir",
        help: "checkpoint directory (default results/ckpt)",
    },
    Field {
        flag: "--resume",
        env: "ASCC_RESUME",
        json: "resume",
        help: "restore matching in-flight checkpoints and skip manifest-done work (default off)",
    },
    Field {
        flag: "--out",
        env: "ASCC_BENCH_OUT",
        json: "out",
        help: "result artifact destination (default: each binary's conventional path)",
    },
];

/// The harness run configuration: sweep parallelism, trace-arena budget,
/// checkpoint cadence/placement, resume behaviour and output destination.
///
/// Construct with [`RunConfig::from_env`] (the only env parse site) or
/// [`RunConfig::default`], refine with the builder setters, then either
/// [`apply`](RunConfig::apply) it to this process or pass
/// [`env`](RunConfig::env) to a child.
#[derive(Clone, PartialEq, Debug)]
pub struct RunConfig {
    /// Sweep worker count; `None` means all available cores.
    pub jobs: Option<usize>,
    /// Simulated core count; `None` keeps each binary's own default.
    pub cores: Option<usize>,
    /// Whether the materialized trace arena is enabled.
    pub trace_cache: bool,
    /// Whether the batched event-loop engine is enabled (bit-identical to
    /// streaming; off only for measurement or debugging).
    pub batch: bool,
    /// Trace arena budget in MiB.
    pub arena_mb: u64,
    /// Checkpoint cadence in simulated accesses; 0 disables.
    pub ckpt_every: u64,
    /// Checkpoint directory.
    pub ckpt_dir: PathBuf,
    /// Restore in-flight checkpoints / skip manifest-done experiments.
    pub resume: bool,
    /// Output artifact override; `None` keeps each binary's default path.
    pub out: Option<PathBuf>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            jobs: None,
            cores: None,
            trace_cache: true,
            batch: true,
            arena_mb: 4096,
            ckpt_every: 0,
            ckpt_dir: PathBuf::from("results/ckpt"),
            resume: false,
            out: None,
        }
    }
}

impl RunConfig {
    /// Reads every `ASCC_*` harness knob from the environment — the single
    /// parse site. Unparseable values fall back to the default rather than
    /// aborting, matching the historical per-crate readers.
    pub fn from_env() -> Self {
        let d = RunConfig::default();
        let var = |k: &str| std::env::var(k).ok();
        RunConfig {
            jobs: var("ASCC_JOBS")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0),
            cores: var("ASCC_CORES")
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| (1..=64).contains(&n)),
            trace_cache: var("ASCC_TRACE_CACHE").map_or(d.trace_cache, |v| v != "0"),
            batch: var("ASCC_BATCH").map_or(d.batch, |v| v != "0"),
            arena_mb: var("ASCC_TRACE_ARENA_MB")
                .and_then(|v| v.parse().ok())
                .unwrap_or(d.arena_mb),
            ckpt_every: var("ASCC_CKPT_EVERY")
                .and_then(|v| v.parse().ok())
                .unwrap_or(d.ckpt_every),
            ckpt_dir: var("ASCC_CKPT_DIR").map_or(d.ckpt_dir, PathBuf::from),
            resume: var("ASCC_RESUME").is_some_and(|v| v == "1"),
            out: var("ASCC_BENCH_OUT").map(PathBuf::from),
        }
    }

    /// Sets the sweep worker count (`None` = all cores).
    pub fn with_jobs(mut self, jobs: Option<usize>) -> Self {
        self.jobs = jobs.filter(|&n| n > 0);
        self
    }

    /// Sets the simulated core count (`None` = each binary's default).
    pub fn with_cores(mut self, cores: Option<usize>) -> Self {
        self.cores = cores.filter(|&n| n > 0);
        self
    }

    /// Enables or disables the materialized trace arena.
    pub fn with_trace_cache(mut self, on: bool) -> Self {
        self.trace_cache = on;
        self
    }

    /// Enables or disables the batched event-loop engine.
    pub fn with_batch(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    /// Sets the trace arena budget in MiB.
    pub fn with_arena_mb(mut self, mb: u64) -> Self {
        self.arena_mb = mb;
        self
    }

    /// Sets the checkpoint cadence (0 disables) and directory.
    pub fn with_checkpoints(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.ckpt_every = every;
        self.ckpt_dir = dir.into();
        self
    }

    /// Sets resume behaviour.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Sets the output artifact override.
    pub fn with_out(mut self, out: Option<PathBuf>) -> Self {
        self.out = out;
        self
    }

    /// The configuration as `(env var, value)` pairs — what a child
    /// experiment process should be spawned with. Every variable is
    /// listed explicitly (including defaults), so a child's behaviour is
    /// fully pinned by the struct and never by stray inherited state.
    /// `out` is included only when set, preserving per-binary defaults.
    pub fn env(&self) -> Vec<(&'static str, String)> {
        let mut pairs = vec![
            (
                "ASCC_JOBS",
                self.jobs.map_or_else(String::new, |n| n.to_string()),
            ),
            (
                "ASCC_CORES",
                self.cores.map_or_else(String::new, |n| n.to_string()),
            ),
            (
                "ASCC_TRACE_CACHE",
                if self.trace_cache { "1" } else { "0" }.into(),
            ),
            ("ASCC_BATCH", if self.batch { "1" } else { "0" }.into()),
            ("ASCC_TRACE_ARENA_MB", self.arena_mb.to_string()),
            ("ASCC_CKPT_EVERY", self.ckpt_every.to_string()),
            ("ASCC_CKPT_DIR", self.ckpt_dir.display().to_string()),
            ("ASCC_RESUME", if self.resume { "1" } else { "0" }.into()),
        ];
        if let Some(out) = &self.out {
            pairs.push(("ASCC_BENCH_OUT", out.display().to_string()));
        }
        pairs
    }

    /// Publishes the configuration into this process's environment — the
    /// compatibility layer the substrate crates' `from_env()` readers
    /// consume. Call before any simulation work (the arena and sweep pool
    /// latch their first read). Empty values unset the variable so the
    /// downstream default applies.
    pub fn apply(&self) {
        for (k, v) in self.env() {
            if v.is_empty() {
                std::env::remove_var(k);
            } else {
                std::env::set_var(k, v);
            }
        }
        if self.out.is_none() {
            std::env::remove_var("ASCC_BENCH_OUT");
        }
    }

    /// The configuration as the JSON document `GET /config` serves.
    pub fn to_json(&self) -> Value {
        let mut doc = Value::object()
            .insert("jobs", self.jobs.map_or(0.0, |n| n as f64))
            .insert("cores", self.cores.map_or(0.0, |n| n as f64))
            .insert("trace_cache", self.trace_cache)
            .insert("batch", self.batch)
            .insert("arena_mb", self.arena_mb as f64)
            .insert("ckpt_every", self.ckpt_every as f64)
            .insert("ckpt_dir", self.ckpt_dir.display().to_string())
            .insert("resume", self.resume);
        if let Some(out) = &self.out {
            doc = doc.insert("out", out.display().to_string());
        }
        doc
    }

    /// Merges a (possibly partial) JSON object — the body of
    /// `PUT /config` — into the configuration. Unknown keys and
    /// wrongly-typed values are errors; on error the configuration is
    /// left unchanged.
    pub fn merge_json(&mut self, doc: &Value) -> Result<(), String> {
        let entries = doc
            .entries()
            .ok_or_else(|| "config body must be a JSON object".to_string())?;
        let mut next = self.clone();
        for (key, val) in entries {
            match key.as_str() {
                "jobs" => {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| format!("jobs wants a non-negative integer, got {val}"))?;
                    next.jobs = if n == 0 { None } else { Some(n as usize) };
                }
                "cores" => {
                    let n = val
                        .as_u64()
                        .ok_or_else(|| format!("cores wants a non-negative integer, got {val}"))?;
                    if n > 64 {
                        return Err(format!("cores must be 0 (default) or 1..=64, got {n}"));
                    }
                    next.cores = if n == 0 { None } else { Some(n as usize) };
                }
                "trace_cache" => {
                    next.trace_cache = val
                        .as_bool()
                        .ok_or_else(|| format!("trace_cache wants a boolean, got {val}"))?;
                }
                "batch" => {
                    next.batch = val
                        .as_bool()
                        .ok_or_else(|| format!("batch wants a boolean, got {val}"))?;
                }
                "arena_mb" => {
                    next.arena_mb = val.as_u64().ok_or_else(|| {
                        format!("arena_mb wants a non-negative integer, got {val}")
                    })?;
                }
                "ckpt_every" => {
                    next.ckpt_every = val.as_u64().ok_or_else(|| {
                        format!("ckpt_every wants a non-negative integer, got {val}")
                    })?;
                }
                "ckpt_dir" => {
                    next.ckpt_dir = PathBuf::from(
                        val.as_str()
                            .ok_or_else(|| format!("ckpt_dir wants a string, got {val}"))?,
                    );
                }
                "resume" => {
                    next.resume = val
                        .as_bool()
                        .ok_or_else(|| format!("resume wants a boolean, got {val}"))?;
                }
                "out" => match val.as_str() {
                    Some("") => next.out = None,
                    Some(s) => next.out = Some(PathBuf::from(s)),
                    None => return Err(format!("out wants a string, got {val}")),
                },
                other => {
                    let known: Vec<&str> = FIELDS.iter().map(|f| f.json).collect();
                    return Err(format!(
                        "unknown config key {other:?}; known keys: {}",
                        known.join(", ")
                    ));
                }
            }
        }
        *self = next;
        Ok(())
    }

    /// The flag ↔ env ↔ JSON mapping table as aligned text lines — the
    /// body of every binary's `--help` epilogue.
    pub fn help_table() -> String {
        let mut out = String::from("configuration knobs (flag = env var = PUT /config key):\n");
        for f in FIELDS {
            let flag = if f.flag.is_empty() {
                "(env only)"
            } else {
                f.flag
            };
            out.push_str(&format!(
                "  {:<10} {:<20} {:<12} {}\n",
                flag, f.env, f.json, f.help
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips_through_json() {
        let mut cfg = RunConfig::default();
        let doc = cfg.to_json();
        let mut cfg2 = RunConfig::default();
        cfg2.merge_json(&doc).unwrap();
        assert_eq!(cfg, cfg2);
        // A partial merge touches only the named keys.
        cfg.merge_json(&Value::parse(r#"{"jobs": 3, "ckpt_every": 500}"#).unwrap())
            .unwrap();
        assert_eq!(cfg.jobs, Some(3));
        assert_eq!(cfg.ckpt_every, 500);
        assert!(cfg.trace_cache);
    }

    #[test]
    fn merge_rejects_unknown_and_mistyped_keys_atomically() {
        let mut cfg = RunConfig::default();
        let err = cfg
            .merge_json(&Value::parse(r#"{"job": 3}"#).unwrap())
            .unwrap_err();
        assert!(err.contains("unknown config key"), "{err}");
        // Mixed valid+invalid bodies must not partially apply.
        let before = cfg.clone();
        cfg.merge_json(&Value::parse(r#"{"jobs": 3, "resume": "yes"}"#).unwrap())
            .unwrap_err();
        assert_eq!(cfg, before);
        cfg.merge_json(&Value::parse(r#"[1,2]"#).unwrap())
            .unwrap_err();
    }

    #[test]
    fn env_pairs_pin_every_knob() {
        let cfg = RunConfig::default()
            .with_jobs(Some(2))
            .with_cores(Some(16))
            .with_trace_cache(false)
            .with_batch(false)
            .with_checkpoints(1000, "ckpt")
            .with_resume(true)
            .with_out(Some(PathBuf::from("out.json")));
        let env = cfg.env();
        let get = |k: &str| {
            env.iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.as_str())
                .unwrap()
        };
        assert_eq!(get("ASCC_JOBS"), "2");
        assert_eq!(get("ASCC_CORES"), "16");
        assert_eq!(get("ASCC_TRACE_CACHE"), "0");
        assert_eq!(get("ASCC_BATCH"), "0");
        assert_eq!(get("ASCC_CKPT_EVERY"), "1000");
        assert_eq!(get("ASCC_CKPT_DIR"), "ckpt");
        assert_eq!(get("ASCC_RESUME"), "1");
        assert_eq!(get("ASCC_BENCH_OUT"), "out.json");
    }

    #[test]
    fn zero_jobs_means_all_cores() {
        let cfg = RunConfig::default().with_jobs(Some(0));
        assert_eq!(cfg.jobs, None);
        let mut cfg = RunConfig::default().with_jobs(Some(4));
        cfg.merge_json(&Value::parse(r#"{"jobs": 0}"#).unwrap())
            .unwrap();
        assert_eq!(cfg.jobs, None);
    }

    #[test]
    fn cores_knob_round_trips_and_rejects_out_of_range() {
        let mut cfg = RunConfig::default();
        cfg.merge_json(&Value::parse(r#"{"cores": 32}"#).unwrap())
            .unwrap();
        assert_eq!(cfg.cores, Some(32));
        cfg.merge_json(&Value::parse(r#"{"cores": 0}"#).unwrap())
            .unwrap();
        assert_eq!(cfg.cores, None);
        let err = cfg
            .merge_json(&Value::parse(r#"{"cores": 65}"#).unwrap())
            .unwrap_err();
        assert!(err.contains("1..=64"), "{err}");
        assert_eq!(RunConfig::default().with_cores(Some(0)).cores, None);
    }

    #[test]
    fn help_table_lists_every_field() {
        let table = RunConfig::help_table();
        for f in FIELDS {
            assert!(table.contains(f.env), "{} missing from help", f.env);
            assert!(table.contains(f.json), "{} missing from help", f.json);
        }
    }
}
