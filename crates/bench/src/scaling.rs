//! The coherence core-scaling sweep shared by `sim_throughput`'s scaling
//! section and the `scaling_cores` experiment binary.
//!
//! One row per (core count, fabric): ASCC on the batched engine over the
//! first two [`cmp_trace::mixes_for`] mixes of that width, with per-core
//! work scaled down as the width grows so every row simulates a comparable
//! access total. Warmup is zero so the fabric counters cover exactly the
//! counted accesses — `probes` is then a deterministic function of the
//! trace, which is what lets CI gate on it.

use crate::{Policy, Scale};
use cmp_coherence::FabricKind;
use cmp_sim::{mix_sources, CmpSystem, SystemConfig};
use cmp_trace::mixes_for;

/// One (core count, fabric) measurement of the scaling sweep.
#[derive(Clone, Copy, Debug)]
pub struct ScalingRow {
    /// Simulated core count.
    pub cores: usize,
    /// Coherence fabric under measurement.
    pub fabric: FabricKind,
    /// Wall-clock seconds for the whole row (all mixes).
    pub wall_s: f64,
    /// Simulated L1 accesses across all cores and mixes.
    pub accesses: u64,
    /// Fabric snoop transactions (identical across fabrics by design).
    pub snoops: u64,
    /// Peer-tag probes — the cost that separates broadcast (O(cores))
    /// from the directory (O(sharers)).
    pub probes: u64,
}

impl ScalingRow {
    /// Aggregate simulation rate.
    pub fn per_sec(&self) -> f64 {
        self.accesses as f64 / self.wall_s.max(1e-9)
    }

    /// Peer-tag probes per simulated L1 access — the headline metric:
    /// grows with the core count under broadcast, stays flat under the
    /// directory.
    pub fn probes_per_access(&self) -> f64 {
        self.probes as f64 / self.accesses.max(1) as f64
    }
}

/// Runs the sweep: both fabrics at every width in `core_counts`.
///
/// Per-core instructions are `scale.instrs * 2 / cores`, floored at 50 k,
/// so a 64-core row does not take 32× the wall-clock of a 2-core row.
pub fn scaling_sweep(core_counts: &[usize], scale: Scale) -> Vec<ScalingRow> {
    let mut out = Vec::new();
    for &cores in core_counts {
        let mixes = mixes_for(cores);
        let instrs = (scale.instrs * 2 / cores as u64).max(50_000);
        for fabric in [FabricKind::Broadcast, FabricKind::Directory] {
            let cfg = SystemConfig::table2(cores).with_fabric(fabric);
            let (mut accesses, mut snoops, mut probes) = (0u64, 0u64, 0u64);
            let t0 = std::time::Instant::now();
            for mix in mixes.iter().take(2) {
                let mut sys = CmpSystem::from_sources(
                    cfg.clone(),
                    Policy::Ascc.build(&cfg),
                    mix_sources(mix, scale.seed),
                );
                let r = sys.run_batched(instrs, 0);
                accesses += r.cores.iter().map(|c| c.l1_accesses).sum::<u64>();
                let s = sys.fabric().stats();
                snoops += s.snoops;
                probes += s.probes;
            }
            out.push(ScalingRow {
                cores,
                fabric,
                wall_s: t0.elapsed().as_secs_f64(),
                accesses,
                snoops,
                probes,
            });
        }
    }
    out
}

/// Formats the sweep as a [`crate::print_table`] header + rows pair.
pub fn scaling_table(rows: &[ScalingRow]) -> (Vec<String>, Vec<Vec<String>>) {
    let headers = [
        "cores",
        "fabric",
        "wall s",
        "accesses",
        "acc/s",
        "snoops",
        "probes",
        "probes/acc",
    ]
    .map(String::from)
    .to_vec();
    let table = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                r.fabric.label().to_string(),
                format!("{:.2}", r.wall_s),
                r.accesses.to_string(),
                format!("{:.0}", r.per_sec()),
                r.snoops.to_string(),
                r.probes.to_string(),
                format!("{:.3}", r.probes_per_access()),
            ]
        })
        .collect();
    (headers, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_row_rates() {
        let r = ScalingRow {
            cores: 4,
            fabric: FabricKind::Directory,
            wall_s: 2.0,
            accesses: 1_000_000,
            snoops: 10,
            probes: 250_000,
        };
        assert!((r.per_sec() - 500_000.0).abs() < 1e-6);
        assert!((r.probes_per_access() - 0.25).abs() < 1e-12);
        let (headers, table) = scaling_table(&[r]);
        assert_eq!(headers.len(), table[0].len());
        assert_eq!(table[0][1], "directory");
    }

    #[test]
    fn sweep_probes_directory_at_most_broadcast() {
        // Tiny deterministic run: the directory must never probe more
        // than broadcast, and snoop counts must match exactly.
        let scale = Scale {
            instrs: 30_000,
            warmup: 0,
            seed: 42,
        };
        let rows = scaling_sweep(&[4], scale);
        assert_eq!(rows.len(), 2);
        let (b, d) = (&rows[0], &rows[1]);
        assert_eq!(b.fabric, FabricKind::Broadcast);
        assert_eq!(d.fabric, FabricKind::Directory);
        assert_eq!(b.accesses, d.accesses, "fabrics must be bit-identical");
        assert_eq!(b.snoops, d.snoops);
        assert!(d.probes <= b.probes, "{} > {}", d.probes, b.probes);
    }
}
