//! The experiment orchestration engine behind `run_all` and the
//! `ascc-serve` daemon.
//!
//! `run_all` used to own this loop; it is now a library so the daemon can
//! run the identical engine in a worker thread per job: same experiment
//! list, same selection semantics, same journaling
//! (`results/run_manifest.json` under the plan's workdir — which is what
//! `GET /jobs/:id` tails), same retry/timeout behaviour. The one
//! extension over the historical binary is cooperative cancellation
//! ([`Control`]) so `DELETE /jobs/:id` and daemon shutdown can stop a
//! sweep mid-experiment, and automatic `ASCC_RESUME=1` on retry attempts
//! so a crashed or killed experiment restores its periodic checkpoints
//! instead of restarting from zero.

use crate::manifest::{RunManifest, Status};
use crate::RunConfig;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every experiment binary, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "table2_arch",
    "table3_characterization",
    "fig01_ways",
    "fig02_sets",
    "fig03_insertion",
    "fig04_breakdown",
    "fig05_neutral",
    "fig06_granularity",
    "table1_gran_sweep",
    "fig07_speedup2",
    "fig08_speedup4",
    "fig09_fairness",
    "fig10_memlat",
    "sens_shared",
    "sens_multithreaded",
    "sens_prefetch",
    "table4_cache_size",
    "behavior_spills",
    "table5_storage",
    "fig11_qos",
    "sect7_limited",
    "ablations",
    "scaling_cores",
    "policy_frontier",
    "tenant_traffic",
    "sharing_degree",
];

/// Applies `--only`-style case-insensitive substring filters to the
/// experiment list (empty filters = everything). A filter set matching
/// nothing is an error whose message lists every available name — callers
/// print it to **stderr** (stdout stays clean for experiment output; a
/// regression test pins this).
pub fn select(filters: &[String]) -> Result<Vec<&'static str>, String> {
    let selected: Vec<&'static str> = EXPERIMENTS
        .iter()
        .copied()
        .filter(|e| {
            filters.is_empty()
                || filters
                    .iter()
                    .any(|f| e.to_lowercase().contains(&f.to_lowercase()))
        })
        .collect();
    if selected.is_empty() {
        let mut msg = format!("no experiment matches {filters:?}; available experiments:");
        for e in EXPERIMENTS {
            msg.push_str(&format!("\n  {e}"));
        }
        return Err(msg);
    }
    Ok(selected)
}

/// One orchestration run: which experiments, where, and how.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Experiment names to run, in order (from [`select`]).
    pub experiments: Vec<String>,
    /// Directory the children run in; the journal lives at
    /// `<workdir>/results/run_manifest.json` and every child's `results/`
    /// artifacts land beneath it.
    pub workdir: PathBuf,
    /// Directory holding the experiment binaries (normally the directory
    /// of the current executable).
    pub bin_dir: PathBuf,
    /// Harness knobs exported to every child (see [`RunConfig::env`]);
    /// `config.resume` also controls skipping manifest-done experiments.
    pub config: RunConfig,
    /// Per-binary wall-clock limit.
    pub timeout: Option<Duration>,
    /// Extra attempts after a failure or timeout.
    pub retries: u32,
    /// Suppress the per-experiment stdout chrome (the daemon sets this;
    /// the child processes' own stdout is unaffected).
    pub quiet: bool,
}

impl Plan {
    /// A plan running `experiments` in the current directory with binaries
    /// next to the current executable.
    pub fn new(experiments: Vec<String>, config: RunConfig) -> Plan {
        let bin_dir = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(Path::to_path_buf))
            .unwrap_or_else(|| PathBuf::from("."));
        Plan {
            experiments,
            workdir: PathBuf::from("."),
            bin_dir,
            config,
            timeout: None,
            retries: 1,
            quiet: false,
        }
    }
}

/// Shared handles for steering a running plan from another thread.
#[derive(Clone, Debug, Default)]
pub struct Control {
    /// Set to stop: the current child is killed and the loop exits.
    pub cancel: Arc<AtomicBool>,
    /// PID of the currently running experiment child (0 = none). The
    /// daemon exposes this so tests can kill a worker mid-job.
    pub child_pid: Arc<AtomicU32>,
}

impl Control {
    /// Fresh, uncancelled control handles.
    pub fn new() -> Control {
        Control::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
}

/// One attempt's outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Exited successfully.
    Ok,
    /// Launch or exit failure, with the reason.
    Failed(String),
    /// Killed after exceeding the wall-clock limit.
    TimedOut,
    /// Killed by [`Control::cancel`].
    Cancelled,
}

/// One experiment's line in the final report.
#[derive(Clone, Debug)]
pub struct Timing {
    /// Experiment name.
    pub name: String,
    /// Wall-clock seconds of the last attempt.
    pub seconds: f64,
    /// `"ok"`, `"skipped"`, `"FAILED"`, `"TIMEOUT"` or `"CANCELLED"`.
    pub verdict: &'static str,
}

/// What [`execute`] hands back.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Per-experiment outcomes in run order.
    pub timings: Vec<Timing>,
    /// Names that ended failed, timed out or cancelled.
    pub failures: Vec<String>,
    /// Whether the run stopped on cancellation.
    pub cancelled: bool,
}

/// Launches one experiment child, polling for exit, timeout and
/// cancellation. `resume` exports `ASCC_RESUME=1` on top of the config's
/// environment (retries pass `true` so checkpoints restore).
fn run_one(plan: &Plan, name: &str, resume: bool, control: &Control) -> Outcome {
    let mut cmd = Command::new(plan.bin_dir.join(name));
    cmd.current_dir(&plan.workdir);
    for (k, v) in plan.config.env() {
        if v.is_empty() {
            cmd.env_remove(k);
        } else {
            cmd.env(k, v);
        }
    }
    if resume {
        cmd.env("ASCC_RESUME", "1");
    }
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => return Outcome::Failed(format!("failed to launch: {e}")),
    };
    control.child_pid.store(child.id(), Ordering::SeqCst);
    let t0 = Instant::now();
    let outcome = loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => break Outcome::Ok,
            Ok(Some(status)) => break Outcome::Failed(format!("exited with {status}")),
            Ok(None) => {}
            Err(e) => break Outcome::Failed(format!("wait failed: {e}")),
        }
        if control.is_cancelled() {
            let _ = child.kill();
            let _ = child.wait();
            break Outcome::Cancelled;
        }
        if plan.timeout.is_some_and(|t| t0.elapsed() >= t) {
            let _ = child.kill();
            let _ = child.wait();
            break Outcome::TimedOut;
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    control.child_pid.store(0, Ordering::SeqCst);
    outcome
}

/// Runs the plan to completion (or cancellation), journaling every
/// transition to `<workdir>/results/run_manifest.json`.
///
/// Semantics preserved from the historical `run_all` loop: a fresh run
/// (no `config.resume`) starts a blank journal so stale completions never
/// mask new work; with resume, manifest-done experiments are skipped and
/// children get `ASCC_RESUME=1`. Retry attempts always export
/// `ASCC_RESUME=1` so a failed or killed child restores its periodic
/// checkpoints (`ckpt_every`) instead of restarting from zero.
pub fn execute(plan: &Plan, control: &Control) -> Summary {
    let manifest_path = plan.workdir.join("results").join("run_manifest.json");
    let mut manifest = if plan.config.resume {
        RunManifest::load_or_new(&manifest_path)
    } else {
        let _ = std::fs::remove_file(&manifest_path);
        RunManifest::load_or_new(&manifest_path)
    };

    let mut summary = Summary::default();
    for name in &plan.experiments {
        if control.is_cancelled() {
            summary.cancelled = true;
            break;
        }
        if plan.config.resume && manifest.is_done(name) {
            if !plan.quiet {
                println!("\n############ {name} ############ (done in manifest, skipped)");
            }
            summary.timings.push(Timing {
                name: name.clone(),
                seconds: 0.0,
                verdict: "skipped",
            });
            continue;
        }
        let prior_attempts = manifest.entry(name).map_or(0, |e| e.attempts);
        let mut outcome = Outcome::Failed("never launched".into());
        let mut secs = 0.0;
        let mut attempt_no = prior_attempts;
        for attempt in 0..=plan.retries {
            attempt_no = prior_attempts + u64::from(attempt) + 1;
            if !plan.quiet {
                println!(
                    "\n############ {name} ############{}",
                    if attempt > 0 {
                        format!(" (retry {attempt}/{})", plan.retries)
                    } else {
                        String::new()
                    }
                );
            }
            journal(&mut manifest, name, Status::Running, attempt_no, 0.0);
            let t0 = Instant::now();
            outcome = run_one(plan, name, plan.config.resume || attempt > 0, control);
            secs = t0.elapsed().as_secs_f64();
            match &outcome {
                Outcome::Ok | Outcome::Cancelled => break,
                Outcome::Failed(why) => {
                    eprintln!("!! {name} failed after {secs:.1} s: {why}");
                    journal(&mut manifest, name, Status::Failed, attempt_no, secs);
                }
                Outcome::TimedOut => {
                    eprintln!("!! {name} timed out after {secs:.1} s; killed");
                    journal(&mut manifest, name, Status::TimedOut, attempt_no, secs);
                }
            }
        }
        let verdict = match outcome {
            Outcome::Ok => {
                journal(&mut manifest, name, Status::Done, attempt_no, secs);
                "ok"
            }
            Outcome::Failed(_) => {
                summary.failures.push(name.clone());
                "FAILED"
            }
            Outcome::TimedOut => {
                summary.failures.push(name.clone());
                "TIMEOUT"
            }
            Outcome::Cancelled => {
                // Leave the Running journal entry: it accurately marks the
                // experiment that was in flight, and a resume re-runs it.
                summary.failures.push(name.clone());
                summary.cancelled = true;
                "CANCELLED"
            }
        };
        summary.timings.push(Timing {
            name: name.clone(),
            seconds: secs,
            verdict,
        });
        if summary.cancelled {
            break;
        }
    }
    summary
}

/// Journals a transition, warning (not dying) on IO trouble — losing the
/// journal must not kill a multi-hour sweep.
fn journal(m: &mut RunManifest, exp: &str, status: Status, attempts: u64, secs: f64) {
    if let Err(e) = m.record(exp, status, attempts, secs) {
        eprintln!("run_all: warning: could not journal {exp}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_filters_case_insensitively() {
        assert_eq!(select(&[]).unwrap().len(), EXPERIMENTS.len());
        let picked = select(&["FIG08".into()]).unwrap();
        assert_eq!(picked, vec!["fig08_speedup4"]);
        let multi = select(&["table".into(), "qos".into()]).unwrap();
        assert!(multi.contains(&"table5_storage") && multi.contains(&"fig11_qos"));
    }

    #[test]
    fn select_error_lists_available_names() {
        let err = select(&["zzz".into()]).unwrap_err();
        assert!(err.contains("no experiment matches"));
        for e in EXPERIMENTS {
            assert!(err.contains(e), "{e} missing from {err}");
        }
    }

    #[test]
    fn cancelled_control_short_circuits_execute() {
        let control = Control::new();
        control.cancel();
        let plan = Plan::new(vec!["fig08_speedup4".into()], RunConfig::default());
        let summary = execute(&plan, &control);
        assert!(summary.cancelled);
        assert!(summary.timings.is_empty());
    }

    #[test]
    fn missing_binary_journals_failure() {
        let dir = std::env::temp_dir().join(format!("ascc-orch-{}", std::process::id()));
        let plan = Plan {
            experiments: vec!["no_such_experiment_bin".into()],
            workdir: dir.clone(),
            bin_dir: dir.clone(),
            config: RunConfig::default(),
            timeout: None,
            retries: 0,
            quiet: true,
        };
        std::fs::create_dir_all(&dir).unwrap();
        let summary = execute(&plan, &Control::new());
        assert_eq!(summary.failures, vec!["no_such_experiment_bin"]);
        let m = RunManifest::load_or_new(&dir.join("results").join("run_manifest.json"));
        assert_eq!(
            m.entry("no_such_experiment_bin").unwrap().status,
            Status::Failed
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
