//! Regression tests for the unified command-line surface.
//!
//! The load-bearing invariant: **stdout of the experiment binaries
//! carries only experiment output**. Diagnostics — usage errors, the
//! `--only` no-match listing — go to stderr with a non-zero exit, so
//! piped/diffed stdout is never poisoned by a stray message.

use std::process::{Command, Output};

fn run_all(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(args)
        .output()
        .expect("spawn run_all")
}

#[test]
fn no_match_lists_experiments_on_stderr_and_exits_2() {
    let out = run_all(&["--only", "definitely-no-such-experiment"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // The diagnostic and the available-name listing are stderr-only.
    assert!(
        out.stdout.is_empty(),
        "stdout must stay clean, got: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no experiment matches"), "{err}");
    assert!(err.contains("fig08_speedup4"), "listing missing: {err}");
    assert!(err.contains("table2_arch"), "listing missing: {err}");
}

#[test]
fn unknown_flag_exits_2_with_usage_on_stderr() {
    let out = run_all(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(out.stdout.is_empty());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument"), "{err}");
    assert!(err.contains("usage: run_all"), "{err}");
}

#[test]
fn missing_flag_value_exits_2() {
    for args in [&["--only"][..], &["--timeout"], &["--timeout=0"]] {
        let out = run_all(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}: {out:?}");
        assert!(out.stdout.is_empty(), "{args:?}");
    }
}

#[test]
fn help_prints_flags_and_knob_table_on_stdout() {
    let out = run_all(&["--help"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: run_all"), "{text}");
    assert!(text.contains("--only"), "{text}");
    // The RunConfig flag ↔ env ↔ JSON mapping rides along in every --help.
    assert!(text.contains("ASCC_JOBS"), "{text}");
    assert!(text.contains("ASCC_TRACE_ARENA_MB"), "{text}");
    assert!(text.contains("ASCC_CKPT_EVERY"), "{text}");
}

#[test]
fn help_is_uniform_across_binaries() {
    for bin in [
        env!("CARGO_BIN_EXE_sim_throughput"),
        env!("CARGO_BIN_EXE_obs_dynamics"),
        env!("CARGO_BIN_EXE_trace_tool"),
        env!("CARGO_BIN_EXE_ascc_serve"),
    ] {
        let out = Command::new(bin).arg("--help").output().expect("spawn");
        assert_eq!(out.status.code(), Some(0), "{bin}: {out:?}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("usage:"), "{bin}: {text}");
        assert!(
            text.contains("ASCC_JOBS"),
            "{bin} --help lacks the knob table: {text}"
        );
    }
}

#[test]
fn trace_tool_repro_lists_valid_policies_on_unknown_policy() {
    // A `.case` naming a policy the harness doesn't know must fail with a
    // diagnostic that enumerates every valid name — including the frontier
    // policies — so a hand-edited repro is self-correcting.
    let dir = std::env::temp_dir().join(format!("ascc-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let case = dir.join("bad-policy.case");
    std::fs::write(
        &case,
        "# ascc differential repro v1\n\
         cores 2\nl2sets_log2 2\nl2ways 2\nmigrate 1\nmemq 1\ncheck 1\n\
         fabric directory\npolicy frobcc 1 2 3\nop 0 0 0\n",
    )
    .expect("write case");
    let out = Command::new(env!("CARGO_BIN_EXE_trace_tool"))
        .arg("repro")
        .arg(&case)
        .output()
        .expect("spawn trace_tool");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(out.stdout.is_empty(), "diagnostics belong on stderr");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown policy"), "{err}");
    for name in ["ascc", "avgcc", "arc", "tinylfu", "rdcb"] {
        assert!(err.contains(name), "valid-name listing lacks {name}: {err}");
    }
}

#[test]
fn trace_tool_still_rejects_bad_subcommands() {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_tool"))
        .arg("frobnicate")
        .output()
        .expect("spawn trace_tool");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage: trace_tool"), "{err}");
}
