//! End-to-end tests of the `ascc-serve` daemon: control plane basics,
//! CLI ↔ service byte-identity, kill-mid-job crash resume, and live
//! mix-job observability.
//!
//! Each test boots its own daemon binary on an ephemeral port with a
//! pinned simulation scale, so tests are independent and deterministic.

use cmp_json::Value;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Pinned scale shared by every spawned process in one test — the
/// byte-identity comparison only makes sense when the CLI run and the
/// daemon job see the exact same knobs.
const SCALE: &[(&str, &str)] = &[
    ("ASCC_QUICK", "1"),
    ("ASCC_WARMUP", "10000"),
    ("ASCC_SEED", "42"),
];

/// Env vars that must NOT leak in from the invoking shell.
const CLEARED: &[&str] = &[
    "ASCC_CKPT_EVERY",
    "ASCC_CKPT_DIR",
    "ASCC_RESUME",
    "ASCC_BENCH_OUT",
    "ASCC_JOBS",
    "ASCC_INSTRS",
];

fn configure(cmd: &mut Command, instrs: &str) {
    for (k, v) in SCALE {
        cmd.env(k, v);
    }
    for k in CLEARED {
        cmd.env_remove(k);
    }
    cmd.env("ASCC_INSTRS", instrs);
}

struct Daemon {
    child: Child,
    addr: String,
    root: PathBuf,
}

impl Daemon {
    /// Boots the daemon on an ephemeral port and waits for its
    /// `listening on http://...` announcement.
    fn spawn(tag: &str, instrs: &str) -> Daemon {
        let root = std::env::temp_dir().join(format!("ascc-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ascc_serve"));
        cmd.args(["--addr", "127.0.0.1:0", "--root"])
            .arg(&root)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        configure(&mut cmd, instrs);
        let mut child = cmd.spawn().expect("spawn ascc_serve");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        let addr = loop {
            line.clear();
            if reader.read_line(&mut line).expect("read daemon stdout") == 0 {
                panic!("daemon exited before announcing its address");
            }
            if let Some(rest) = line.trim().strip_prefix("ascc-serve listening on http://") {
                break rest.to_string();
            }
        };
        // Keep draining: experiment children inherit this pipe, and a full
        // pipe would wedge them.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while reader.read_line(&mut sink).is_ok_and(|n| n > 0) {
                sink.clear();
            }
        });
        Daemon { child, addr, root }
    }

    fn req(&self, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
        ascc_serve::http::request(self.addr.as_str(), method, path, body)
            .unwrap_or_else(|e| panic!("{method} {path}: {e}"))
    }

    fn req_json(&self, method: &str, path: &str, body: Option<&str>) -> (u16, Value) {
        let (status, text) = self.req(method, path, body);
        let doc = Value::parse(&text).unwrap_or_else(|e| panic!("{method} {path}: {e}: {text}"));
        (status, doc)
    }

    /// Polls `GET /jobs/:id` until the job leaves the running state.
    fn wait_job(&self, id: &str, timeout: Duration) -> Value {
        let t0 = Instant::now();
        loop {
            let (status, doc) = self.req_json("GET", &format!("/jobs/{id}"), None);
            assert_eq!(status, 200, "{doc}");
            let state = doc.get("state").and_then(Value::as_str).unwrap_or("?");
            if state != "running" {
                return doc;
            }
            assert!(
                t0.elapsed() < timeout,
                "job {id} still running after {timeout:?}: {doc}"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    fn shutdown(mut self) {
        let (status, _) = self.req("POST", "/shutdown", None);
        assert_eq!(status, 200);
        let t0 = Instant::now();
        loop {
            match self.child.try_wait().expect("wait daemon") {
                Some(code) => {
                    assert!(code.success(), "daemon exited with {code}");
                    break;
                }
                None if t0.elapsed() > Duration::from_secs(30) => {
                    let _ = self.child.kill();
                    panic!("daemon did not exit after /shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        let _ = std::fs::remove_dir_all(&self.root);
        // Disarm the Drop kill.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn control_plane_basics() {
    let d = Daemon::spawn("basics", "40000");

    let (status, doc) = d.req_json("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(doc.get("ok").and_then(Value::as_bool), Some(true));

    // GET /config serves the defaults; PUT merges runtime toggles.
    let (status, cfg) = d.req_json("GET", "/config", None);
    assert_eq!(status, 200);
    assert_eq!(cfg.get("arena_mb").and_then(Value::as_u64), Some(4096));
    let (status, cfg) = d.req_json(
        "PUT",
        "/config",
        Some(r#"{"jobs": 1, "arena_mb": 512, "ckpt_every": 12345}"#),
    );
    assert_eq!(status, 200, "{cfg}");
    assert_eq!(cfg.get("jobs").and_then(Value::as_u64), Some(1));
    assert_eq!(cfg.get("arena_mb").and_then(Value::as_u64), Some(512));
    // The merge is sticky.
    let (_, cfg) = d.req_json("GET", "/config", None);
    assert_eq!(cfg.get("ckpt_every").and_then(Value::as_u64), Some(12345));
    // Bad bodies are rejected wholesale.
    let (status, err) = d.req_json("PUT", "/config", Some(r#"{"arena_mb": "big"}"#));
    assert_eq!(status, 400, "{err}");
    let (status, _) = d.req_json("PUT", "/config", Some(r#"{"bogus_key": 1}"#));
    assert_eq!(status, 400);
    let (_, cfg) = d.req_json("GET", "/config", None);
    assert_eq!(cfg.get("arena_mb").and_then(Value::as_u64), Some(512));

    // Unknown routes 404; wrong methods 405/404 with JSON errors.
    let (status, _) = d.req_json("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = d.req_json("GET", "/jobs/job-99", None);
    assert_eq!(status, 404);
    // Bad job specs are a 400, not a daemon panic.
    let (status, err) = d.req_json("POST", "/jobs", Some(r#"{"only": ["zzz"]}"#));
    assert_eq!(status, 400);
    assert!(
        err.get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("no experiment matches")),
        "{err}"
    );

    // The metrics endpoint lints clean even with no jobs.
    let (status, text) = d.req("GET", "/metrics", None);
    assert_eq!(status, 200);
    ascc_serve::prometheus::lint(&text).unwrap_or_else(|e| panic!("{e:?}\n{text}"));
    assert!(text.contains("ascc_serve_uptime_seconds"), "{text}");
    assert!(text.contains("ascc_serve_config_workers"), "{text}");

    d.shutdown();
}

#[test]
fn sweep_job_is_byte_identical_to_cli_run() {
    // Reference: the plain CLI orchestrator in a scratch directory.
    let cli_dir = std::env::temp_dir().join(format!("ascc-cli-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cli_dir);
    std::fs::create_dir_all(&cli_dir).unwrap();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_run_all"));
    cmd.args(["--only", "fig08"])
        .current_dir(&cli_dir)
        .stdout(Stdio::null());
    configure(&mut cmd, "40000");
    let status = cmd.status().expect("run_all");
    assert!(status.success(), "reference run failed: {status}");
    let reference = std::fs::read(cli_dir.join("results").join("fig08.json")).unwrap();

    // Same experiment through the service.
    let d = Daemon::spawn("ident", "40000");
    let (status, job) = d.req_json("POST", "/jobs", Some(r#"{"only": ["fig08"]}"#));
    assert_eq!(status, 201, "{job}");
    let id = job.get("id").and_then(Value::as_str).unwrap().to_string();
    assert_eq!(
        job.get("experiments")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(1)
    );

    let done = d.wait_job(&id, Duration::from_secs(300));
    assert_eq!(
        done.get("state").and_then(Value::as_str),
        Some("done"),
        "{done}"
    );
    // The tailed journal marks fig08 done.
    let entries = done
        .get("manifest")
        .and_then(|m| m.get("entries"))
        .and_then(Value::as_array)
        .expect("manifest entries");
    assert!(
        entries.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("fig08_speedup4")
                && e.get("status").and_then(Value::as_str) == Some("done")
        }),
        "{done}"
    );

    let workdir = PathBuf::from(done.get("workdir").and_then(Value::as_str).unwrap());
    let served = std::fs::read(workdir.join("results").join("fig08.json")).unwrap();
    assert_eq!(
        reference, served,
        "service results differ from the CLI run at the same scale"
    );

    d.shutdown();
    let _ = std::fs::remove_dir_all(&cli_dir);
}

#[test]
fn killed_worker_resumes_from_checkpoints() {
    let d = Daemon::spawn("kill", "250000");
    // Checkpoint frequently so a kill always lands mid-run with snapshots
    // on disk; one retry is the default.
    let (status, job) = d.req_json(
        "POST",
        "/jobs",
        Some(r#"{"only": ["fig08"], "config": {"ckpt_every": 10000}}"#),
    );
    assert_eq!(status, 201, "{job}");
    let id = job.get("id").and_then(Value::as_str).unwrap().to_string();
    let workdir = PathBuf::from(job.get("workdir").and_then(Value::as_str).unwrap());

    // Wait until the experiment child has actually checkpointed...
    let ckpt_dir = workdir.join("results").join("ckpt");
    let t0 = Instant::now();
    let pid = loop {
        let snaps = count_snaps(&ckpt_dir);
        let (_, doc) = d.req_json("GET", &format!("/jobs/{id}"), None);
        let pid = doc.get("child_pid").and_then(Value::as_u64).unwrap_or(0);
        if snaps > 0 && pid != 0 {
            break pid;
        }
        assert_eq!(
            doc.get("state").and_then(Value::as_str),
            Some("running"),
            "job finished before the kill could land — raise ASCC_INSTRS: {doc}"
        );
        assert!(
            t0.elapsed() < Duration::from_secs(120),
            "no checkpoint appeared"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // ... then SIGKILL it mid-flight, like an OOM-kill would.
    let killed = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("spawn kill");
    assert!(killed.success(), "kill -9 {pid} failed");

    // The daemon retries with ASCC_RESUME=1; the journal shows >1 attempt
    // and the job still completes.
    let done = d.wait_job(&id, Duration::from_secs(600));
    assert_eq!(
        done.get("state").and_then(Value::as_str),
        Some("done"),
        "{done}"
    );
    let entry = done
        .get("manifest")
        .and_then(|m| m.get("entries"))
        .and_then(Value::as_array)
        .and_then(|es| {
            es.iter()
                .find(|e| e.get("name").and_then(Value::as_str) == Some("fig08_speedup4"))
        })
        .cloned()
        .expect("fig08 journal entry");
    assert_eq!(entry.get("status").and_then(Value::as_str), Some("done"));
    assert!(
        entry.get("attempts").and_then(Value::as_u64).unwrap_or(0) >= 2,
        "expected a retry after the kill: {entry}"
    );
    // And the artifact is a well-formed experiment record.
    let artifact = std::fs::read_to_string(workdir.join("results").join("fig08.json")).unwrap();
    let doc = Value::parse(&artifact).unwrap();
    assert_eq!(doc.get("id").and_then(Value::as_str), Some("fig08"));

    d.shutdown();
}

#[test]
fn mix_job_serves_live_snapshots_and_metrics() {
    let d = Daemon::spawn("mix", "40000");
    let (status, job) = d.req_json(
        "POST",
        "/jobs",
        Some(r#"{"kind": "mix", "cores": 4, "mix": 0, "policy": "ASCC", "instrs": 30000, "warmup": 5000, "epoch_accesses": 2000}"#),
    );
    assert_eq!(status, 201, "{job}");
    let id = job.get("id").and_then(Value::as_str).unwrap().to_string();
    assert_eq!(job.get("kind").and_then(Value::as_str), Some("mix"));

    let done = d.wait_job(&id, Duration::from_secs(120));
    assert_eq!(
        done.get("state").and_then(Value::as_str),
        Some("done"),
        "{done}"
    );
    assert!(
        done.get("epochs_recorded")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            > 0,
        "no epochs closed: {done}"
    );

    // The recording carries per-epoch counts and policy snapshots.
    let (status, snap) = d.req_json("GET", &format!("/snapshots/{id}"), None);
    assert_eq!(status, 200);
    let recording = snap.get("recording").expect("recording");
    let epochs = recording.get("epochs").and_then(Value::as_array).unwrap();
    assert!(!epochs.is_empty());
    assert!(
        epochs[0].get("snapshot").is_some(),
        "first closed epoch lacks a PolicySnapshot: {snap}"
    );
    let totals = recording.get("totals").expect("totals");
    let hits: f64 = totals
        .get("local_hits")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .filter_map(Value::as_f64)
        .sum();
    assert!(hits > 0.0, "{totals}");

    // Sweep jobs have no live recorder — asking is a client error.
    let (status, sweep) = d.req_json("POST", "/jobs", Some(r#"{"only": ["table5"]}"#));
    assert_eq!(status, 201);
    let sweep_id = sweep.get("id").and_then(Value::as_str).unwrap().to_string();
    let (status, _) = d.req_json("GET", &format!("/snapshots/{sweep_id}"), None);
    assert_eq!(status, 400);
    d.wait_job(&sweep_id, Duration::from_secs(120));

    // /metrics exposes the ObsProbe totals under the job's label and
    // stays lint-clean with mixed job kinds present.
    let (status, text) = d.req("GET", "/metrics", None);
    assert_eq!(status, 200);
    ascc_serve::prometheus::lint(&text).unwrap_or_else(|e| panic!("{e:?}\n{text}"));
    assert!(
        text.contains(&format!(
            "ascc_obs_local_hits_total{{job=\"{id}\",core=\"0\"}}"
        )),
        "{text}"
    );
    assert!(text.contains("ascc_obs_epochs_recorded"), "{text}");

    d.shutdown();
}

fn count_snaps(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
                .count()
        })
        .unwrap_or(0)
}
