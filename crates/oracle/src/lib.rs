//! # cmp-oracle — the deliberately naive reference model
//!
//! A second, independent implementation of the whole ASCC/AVGCC system,
//! written straight from DESIGN.md §1 and the paper's prose with *zero*
//! code shared with the optimized crates:
//!
//! * caches are `Vec`s of `Option<Line>` with explicit most-recently-used
//!   lists (`Vec<u16>` spliced on every touch) instead of SoA tag slabs and
//!   packed nibble permutations;
//! * SSL counters are plain `Vec<u16>` fixed-point values updated by the
//!   paper's increment/decrement rules; ASCC, AVGCC and QoS-AVGCC are
//!   direct transcriptions of §3–§8;
//! * the MESI bus rebuilds a full line → holders map from scratch on every
//!   broadcast (maximally allocation-happy, no cached state to drift).
//!
//! The only shared dependency is the vendored `rand` crate: the optimized
//! policies consume `SmallRng` draws at specific decision points, and the
//! oracle must consume the *same* draws in the same order for lockstep
//! equality to be meaningful.
//!
//! The differential harness (`ascc-integration`'s `diff` module) runs this
//! model against `cmp_sim::CmpSystem` on generated multi-core access
//! sequences and compares [`SysSnap`] state dumps at every epoch boundary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod policy;
mod snapshot;
mod system;

pub use cache::{OracleCache, OracleFill, OracleLine, OracleMesi, OraclePos, OracleStats};
pub use policy::{
    OracleArc, OracleArcConfig, OracleAscc, OracleAsccConfig, OracleAvgcc, OracleAvgccConfig,
    OracleCapacity, OraclePolicy, OraclePolicyConfig, OracleRdcb, OracleRdcbConfig,
    OracleSelection, OracleSpill, OracleTinyLfu, OracleTinyLfuConfig,
};
pub use snapshot::{diff_snapshots, CacheSnap, CoreSnap, LineSnap, PolicySnap, SetSnap, SysSnap};
pub use system::{OracleConfig, OracleCpu, OracleSystem};
