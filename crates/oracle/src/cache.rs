//! The naive cache: one `Vec<Option<Line>>` per set plus an explicit
//! most-recently-used list, exactly the `Vec<Vec<Line>>` picture of
//! DESIGN.md §1 before any storage optimization.

use crate::snapshot::{CacheSnap, LineSnap, SetSnap};

/// MESI state of an oracle line (the oracle's own copy of the protocol
/// states — nothing is imported from the optimized crates).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleMesi {
    /// Dirty, sole on-chip copy.
    Modified,
    /// Clean, sole on-chip copy.
    Exclusive,
    /// Clean, possibly replicated.
    Shared,
}

impl OracleMesi {
    /// Whether eviction of this line writes back to memory.
    pub fn is_dirty(self) -> bool {
        matches!(self, OracleMesi::Modified)
    }

    /// State the holder keeps after serving a remote read (M/E drop to S).
    pub fn after_remote_read(self) -> Self {
        match self {
            OracleMesi::Modified | OracleMesi::Exclusive => OracleMesi::Shared,
            OracleMesi::Shared => OracleMesi::Shared,
        }
    }

    /// Stable numeric code used in snapshots (M=0, E=1, S=2 — the same
    /// encoding the optimized cache packs into its meta bits).
    pub fn code(self) -> u8 {
        match self {
            OracleMesi::Modified => 0,
            OracleMesi::Exclusive => 1,
            OracleMesi::Shared => 2,
        }
    }
}

/// One resident line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OracleLine {
    /// Line address (byte address with the offset bits already dropped).
    pub addr: u64,
    /// Coherence state.
    pub state: OracleMesi,
    /// Whether this copy arrived by a spill from a peer cache.
    pub spilled: bool,
}

/// Insertion depth for a fill (§3.2's MRU / BIP / SABIP positions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OraclePos {
    /// Most recently used (normal demand insertion).
    Mru,
    /// Least recently used (BIP's deep insertion).
    Lru,
    /// One above LRU (SABIP and spill-aware insertions).
    LruMinus1,
}

/// What kind of fill a line arrives by.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleFill {
    /// Demand fetch by the local core.
    Demand,
    /// A peer's spilled (or swapped) victim.
    Spill,
}

/// Per-cache counters mirroring `cmp_cache::CacheStats` field for field.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct OracleStats {
    /// Accesses that found their line.
    pub hits: u64,
    /// Accesses that did not.
    pub misses: u64,
    /// Demand fills.
    pub demand_fills: u64,
    /// Spill fills.
    pub spill_fills: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Hits on lines whose `spilled` flag was set.
    pub spilled_line_hits: u64,
}

#[derive(Debug)]
struct OracleSet {
    lines: Vec<Option<OracleLine>>,
    /// Way indices ordered most- to least-recently used. Always a full
    /// permutation of `0..ways`: invalid ways keep their slot, just like
    /// the real recency word.
    order: Vec<u16>,
}

impl OracleSet {
    /// Moves `way` to recency depth `depth` (0 = MRU), preserving the
    /// relative order of every other way — the splice the paper's LRU
    /// lists perform on each touch or fill.
    fn splice(&mut self, way: u16, depth: usize) {
        self.order.retain(|&w| w != way);
        let d = depth.min(self.order.len());
        self.order.insert(d, way);
    }
}

/// A whole private cache, the naive way.
#[derive(Debug)]
pub struct OracleCache {
    sets: Vec<OracleSet>,
    ways: u16,
    /// Event counters (public so the system can bump `misses` on the probe
    /// path exactly where the optimized cache does).
    pub stats: OracleStats,
}

impl OracleCache {
    /// Builds an empty cache of `sets` sets with `ways` ways each.
    pub fn new(sets: u32, ways: u16) -> Self {
        OracleCache {
            sets: (0..sets)
                .map(|_| OracleSet {
                    lines: vec![None; ways as usize],
                    order: (0..ways).collect(),
                })
                .collect(),
            ways,
            stats: OracleStats::default(),
        }
    }

    /// Associativity.
    pub fn ways(&self) -> u16 {
        self.ways
    }

    /// Set index of a line address (power-of-two modulo).
    pub fn set_of(&self, line: u64) -> usize {
        (line & (self.sets.len() as u64 - 1)) as usize
    }

    /// Looks the line up without touching recency or statistics.
    pub fn probe(&self, line: u64) -> Option<(usize, usize)> {
        let s = self.set_of(line);
        self.sets[s]
            .lines
            .iter()
            .position(|l| matches!(l, Some(l) if l.addr == line))
            .map(|w| (s, w))
    }

    /// The line in `way` of `set`, if valid.
    pub fn line(&self, set: usize, way: usize) -> Option<OracleLine> {
        self.sets[set].lines[way]
    }

    /// The recency order of `set`, way indices most- to least-recently
    /// used (always a full permutation of `0..ways`).
    pub fn order(&self, set: usize) -> &[u16] {
        &self.sets[set].order
    }

    /// First invalid way of `set` in way order, if any (the optimized
    /// engine's `SetRef::invalid_way`).
    pub fn invalid_way(&self, set: usize) -> Option<usize> {
        self.sets[set].lines.iter().position(|l| l.is_none())
    }

    /// Number of valid lines in `set`.
    pub fn valid_count(&self, set: usize) -> usize {
        self.sets[set].lines.iter().filter(|l| l.is_some()).count()
    }

    /// Recency depth of `way` in its set (0 = MRU).
    pub fn depth_of(&self, set: usize, way: usize) -> usize {
        self.sets[set]
            .order
            .iter()
            .position(|&w| w as usize == way)
            .expect("order is a permutation of the ways")
    }

    /// A full access: on a hit, promotes the way to MRU, counts the hit and
    /// clears the spilled flag (counting the spilled-line hit); on a miss,
    /// counts the miss. Returns the hit way.
    pub fn access(&mut self, line: u64) -> Option<usize> {
        match self.probe(line) {
            Some((s, w)) => {
                self.stats.hits += 1;
                let l = self.sets[s].lines[w].as_mut().expect("probed valid");
                if l.spilled {
                    self.stats.spilled_line_hits += 1;
                    l.spilled = false;
                }
                self.sets[s].splice(w as u16, 0);
                Some(w)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Victim choice when no policy overrides it: the first invalid way,
    /// else the LRU way.
    pub fn default_victim(&self, set: usize) -> usize {
        let s = &self.sets[set];
        s.lines
            .iter()
            .position(|l| l.is_none())
            .unwrap_or_else(|| *s.order.last().expect("nonzero ways") as usize)
    }

    /// Installs `new` in `way` of `set` at recency position `pos`,
    /// returning the displaced line if the way was valid.
    pub fn fill(
        &mut self,
        set: usize,
        way: usize,
        new: OracleLine,
        pos: OraclePos,
        kind: OracleFill,
    ) -> Option<OracleLine> {
        match kind {
            OracleFill::Demand => self.stats.demand_fills += 1,
            OracleFill::Spill => self.stats.spill_fills += 1,
        }
        let evicted = self.sets[set].lines[way].replace(new);
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        let ways = self.ways as usize;
        let depth = match pos {
            OraclePos::Mru => 0,
            OraclePos::Lru => ways - 1,
            OraclePos::LruMinus1 => ways.saturating_sub(2),
        };
        self.sets[set].splice(way as u16, depth);
        evicted
    }

    /// Removes the line if resident, demoting its way to LRU. No counters.
    pub fn invalidate(&mut self, line: u64) -> Option<OracleLine> {
        let (s, w) = self.probe(line)?;
        let taken = self.sets[s].lines[w].take();
        let depth = self.ways as usize - 1;
        self.sets[s].splice(w as u16, depth);
        taken
    }

    /// MESI state of the line, if resident.
    pub fn state_of(&self, line: u64) -> Option<OracleMesi> {
        self.probe(line)
            .and_then(|(s, w)| self.sets[s].lines[w])
            .map(|l| l.state)
    }

    /// Rewrites the resident line's state, preserving the spilled flag.
    pub fn set_state(&mut self, line: u64, state: OracleMesi) {
        if let Some((s, w)) = self.probe(line) {
            if let Some(l) = self.sets[s].lines[w].as_mut() {
                l.state = state;
            }
        }
    }

    /// Full-state dump for lockstep comparison.
    pub fn snap(&self) -> CacheSnap {
        CacheSnap {
            sets: self
                .sets
                .iter()
                .map(|s| SetSnap {
                    lines: s
                        .lines
                        .iter()
                        .map(|l| {
                            l.map(|l| LineSnap {
                                addr: l.addr,
                                state: l.state.code(),
                                spilled: l.spilled,
                            })
                        })
                        .collect(),
                    order: s.order.clone(),
                })
                .collect(),
            hits: self.stats.hits,
            misses: self.stats.misses,
            demand_fills: self.stats.demand_fills,
            spill_fills: self.stats.spill_fills,
            evictions: self.stats.evictions,
            spilled_line_hits: self.stats.spilled_line_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(addr: u64) -> OracleLine {
        OracleLine {
            addr,
            state: OracleMesi::Exclusive,
            spilled: false,
        }
    }

    #[test]
    fn lru_order_follows_touches() {
        let mut c = OracleCache::new(2, 4);
        for a in [0u64, 2, 4, 6] {
            let w = c.default_victim(0);
            c.fill(0, w, line(a), OraclePos::Mru, OracleFill::Demand);
        }
        // Fills went into ways 0..3; way 3 (addr 6) is MRU now.
        assert_eq!(c.default_victim(0), 0); // way 0 is LRU
        c.access(0); // touch addr 0 -> way 0 becomes MRU
        assert_eq!(c.default_victim(0), 1);
    }

    #[test]
    fn spilled_flag_clears_on_hit() {
        let mut c = OracleCache::new(2, 2);
        c.fill(
            0,
            0,
            OracleLine {
                addr: 8,
                state: OracleMesi::Exclusive,
                spilled: true,
            },
            OraclePos::Mru,
            OracleFill::Spill,
        );
        assert!(c.line(0, 0).unwrap().spilled);
        c.access(8);
        assert!(!c.line(0, 0).unwrap().spilled);
        assert_eq!(c.stats.spilled_line_hits, 1);
    }

    #[test]
    fn lru_minus_1_insertion_depth() {
        let mut c = OracleCache::new(1, 4);
        for (w, a) in [0u64, 2, 4, 6].iter().enumerate() {
            c.fill(0, w, line(*a), OraclePos::Mru, OracleFill::Demand);
        }
        // order is [3,2,1,0]; re-fill way 3 at LruMinus1 -> [2,1,3,0].
        c.fill(0, 3, line(8), OraclePos::LruMinus1, OracleFill::Demand);
        assert_eq!(c.snap().sets[0].order, vec![2, 1, 3, 0]);
    }
}
