//! The naive CMP: private L1/L2 hierarchies over a map-based MESI bus,
//! with the same analytical timing model and spill/swap orchestration as
//! `cmp_sim::CmpSystem`, re-derived from DESIGN.md §1.
//!
//! Every arithmetic expression on the timing path (`carry`, `clock`,
//! latency scaling) is written exactly as the design describes it so the
//! resulting f64 values are bit-identical to the optimized engine's —
//! cycle counts are compared exactly, not approximately.

use std::collections::BTreeMap;

use crate::cache::{OracleCache, OracleFill, OracleLine, OracleMesi};
use crate::policy::{OraclePolicy, OraclePolicyConfig, OracleSpill};
use crate::snapshot::{CoreSnap, SysSnap};

/// Analytical CPU model of one core (mirrors `cmp_trace::CpuModel` minus
/// the store fraction, which only matters to stream generators).
#[derive(Clone, Copy, Debug)]
pub struct OracleCpu {
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// Cycles per instruction outside memory stalls.
    pub base_cpi: f64,
    /// Fraction of a load's latency exposed as stall.
    pub overlap: f64,
}

/// System shape and latencies.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Core count.
    pub cores: usize,
    /// L1 sets.
    pub l1_sets: u32,
    /// L1 ways.
    pub l1_ways: u16,
    /// L2 sets.
    pub l2_sets: u32,
    /// L2 ways.
    pub l2_ways: u16,
    /// log2 of the line size (both levels share one line size).
    pub offset_bits: u32,
    /// Local L2 hit latency.
    pub lat_l2_local: u32,
    /// Remote L2 hit latency.
    pub lat_l2_remote: u32,
    /// Memory latency.
    pub lat_mem: u32,
    /// Migrate remote hits (multiprogrammed) instead of replicating.
    pub migrate: bool,
    /// Model the sharer-bitmask directory instead of the broadcast bus.
    /// The protocol outcome is identical either way (the oracle's map *is*
    /// a directory); only the `probes` accounting differs: a broadcast
    /// probes every peer per snoop, a directory only the known holders.
    pub directory: bool,
    /// Per-core CPU models (`cores` entries).
    pub cpu: Vec<OracleCpu>,
}

#[derive(Clone, Copy, Default, Debug)]
struct OracleCounters {
    instrs: u64,
    cycles: f64,
    l1_accesses: u64,
    l1_hits: u64,
    l2_accesses: u64,
    l2_local_hits: u64,
    l2_remote_hits: u64,
    l2_mem: u64,
    offchip_fetches: u64,
    writebacks: u64,
}

#[derive(Debug)]
struct OracleCore {
    clock: f64,
    carry: f64,
    counters: OracleCounters,
}

impl OracleCore {
    fn cycles_add(&mut self, dc: f64) {
        self.clock += dc;
        self.counters.cycles += dc;
    }
}

/// A remote hit served by the bus.
struct RemoteHit {
    from: usize,
    line: OracleLine,
    granted: OracleMesi,
}

/// The whole naive system.
#[derive(Debug)]
pub struct OracleSystem {
    cfg: OracleConfig,
    l1: Vec<OracleCache>,
    l2: Vec<OracleCache>,
    policy: OraclePolicy,
    cores: Vec<OracleCore>,
    snoops: u64,
    transfers: u64,
    invalidations: u64,
    probes: u64,
    spills: u64,
    swaps: u64,
    spill_hits: u64,
}

impl OracleSystem {
    /// Builds the system with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cpu` does not have one entry per core.
    pub fn new(cfg: OracleConfig, policy: OraclePolicyConfig) -> Self {
        assert_eq!(cfg.cpu.len(), cfg.cores, "one CPU model per core");
        OracleSystem {
            l1: (0..cfg.cores)
                .map(|_| OracleCache::new(cfg.l1_sets, cfg.l1_ways))
                .collect(),
            l2: (0..cfg.cores)
                .map(|_| OracleCache::new(cfg.l2_sets, cfg.l2_ways))
                .collect(),
            policy: OraclePolicy::new(policy),
            cores: (0..cfg.cores)
                .map(|_| OracleCore {
                    clock: 0.0,
                    carry: 0.0,
                    counters: OracleCounters::default(),
                })
                .collect(),
            snoops: 0,
            transfers: 0,
            invalidations: 0,
            probes: 0,
            spills: 0,
            swaps: 0,
            spill_hits: 0,
            cfg,
        }
    }

    /// The full line → holders directory, rebuilt from scratch by scanning
    /// every L2 (the map-based bus: allocation-happy, nothing cached).
    fn directory(&self) -> BTreeMap<u64, Vec<usize>> {
        let mut map: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, cache) in self.l2.iter().enumerate() {
            for s in 0..self.cfg.l2_sets as usize {
                for w in 0..self.cfg.l2_ways as usize {
                    if let Some(l) = cache.line(s, w) {
                        map.entry(l.addr).or_default().push(i);
                    }
                }
            }
        }
        map
    }

    fn holders(&self, line: u64) -> Vec<usize> {
        self.directory().get(&line).cloned().unwrap_or_default()
    }

    /// Read-miss broadcast: the lowest-index peer holding the line serves
    /// it, migrating (invalidate + hand over) or replicating (downgrade to
    /// Shared, grant Shared).
    fn bus_read_miss(&mut self, requester: usize, line: u64) -> Option<RemoteHit> {
        self.snoops += 1;
        if !self.cfg.directory {
            self.probes += self.cfg.cores as u64 - 1;
        }
        let owner = self.holders(line).into_iter().find(|&i| i != requester)?;
        if self.cfg.directory {
            self.probes += 1;
        }
        self.transfers += 1;
        if self.cfg.migrate {
            let taken = self.l2[owner].invalidate(line).expect("holder has it");
            Some(RemoteHit {
                from: owner,
                line: taken,
                granted: taken.state,
            })
        } else {
            let (s, w) = self.l2[owner].probe(line).expect("holder has it");
            let observed = self.l2[owner].line(s, w).expect("valid");
            self.l2[owner].set_state(line, observed.state.after_remote_read());
            Some(RemoteHit {
                from: owner,
                line: observed,
                granted: OracleMesi::Shared,
            })
        }
    }

    /// Write-miss / upgrade broadcast: every peer copy is invalidated; the
    /// lowest-index peer that held one supplies the data.
    fn bus_write_miss(&mut self, requester: usize, line: u64) -> Option<RemoteHit> {
        self.snoops += 1;
        if !self.cfg.directory {
            self.probes += self.cfg.cores as u64 - 1;
        }
        let mut hit: Option<RemoteHit> = None;
        for i in 0..self.cfg.cores {
            if i == requester {
                continue;
            }
            if let Some(taken) = self.l2[i].invalidate(line) {
                self.invalidations += 1;
                if self.cfg.directory {
                    self.probes += 1;
                }
                if hit.is_none() {
                    self.transfers += 1;
                    hit = Some(RemoteHit {
                        from: i,
                        line: taken,
                        granted: OracleMesi::Modified,
                    });
                }
            }
        }
        hit
    }

    /// State granted for a memory fetch: Exclusive when no peer holds the
    /// line, Shared otherwise.
    fn bus_fetch_state(&self, requester: usize, line: u64) -> OracleMesi {
        let shared = self.holders(line).into_iter().any(|i| i != requester);
        if shared {
            OracleMesi::Shared
        } else {
            OracleMesi::Exclusive
        }
    }

    /// One memory access by `core`: the instruction-carry timing update,
    /// the L1 lookup, the full L2/bus/memory path on an L1 miss, the load
    /// stall, and the policy clock notification.
    pub fn step(&mut self, core: usize, addr: u64, store: bool) {
        let cpu = self.cfg.cpu[core];
        {
            let c = &mut self.cores[core];
            c.carry += 1.0 / cpu.mem_fraction;
            let n = (c.carry as u64).max(1);
            c.carry -= n as f64;
            c.counters.instrs += n;
            c.cycles_add(n as f64 * cpu.base_cpi);
            c.counters.l1_accesses += 1;
        }
        let line = addr >> self.cfg.offset_bits;
        let l1_hit = self.l1[core].access(line).is_some();
        let latency = if l1_hit {
            self.cores[core].counters.l1_hits += 1;
            if store {
                self.upgrade_for_store(core, line);
            }
            0
        } else {
            let (lat, fill_l1) = self.l2_access(core, line, store);
            if fill_l1 {
                let set = self.l1[core].set_of(line);
                let way = self.l1[core].default_victim(set);
                self.l1[core].fill(
                    set,
                    way,
                    OracleLine {
                        addr: line,
                        state: OracleMesi::Exclusive,
                        spilled: false,
                    },
                    crate::OraclePos::Mru,
                    OracleFill::Demand,
                );
            }
            lat
        };
        let c = &mut self.cores[core];
        if !store && latency > 0 {
            c.cycles_add(latency as f64 * cpu.overlap);
        }
        let clock = c.clock as u64;
        self.policy.on_cycle(core, clock);
    }

    /// One L2 access; returns its latency and whether the line should be
    /// filled into the L1 (`false` only when an admission filter bypassed
    /// the hierarchy for this fetch).
    fn l2_access(&mut self, core: usize, line: u64, store: bool) -> (u32, bool) {
        let set = self.l2[core].set_of(line);
        self.cores[core].counters.l2_accesses += 1;

        // Local hit: the spilled flag is read before the access clears it.
        if let Some((s, w)) = self.l2[core].probe(line) {
            let spilled = self.l2[core].line(s, w).expect("valid").spilled;
            self.l2[core].access(line);
            if spilled {
                self.spill_hits += 1;
            }
            self.policy.record_access(core, set as u32, true);
            self.policy
                .note_access(core, set as u32, line, true, Some(w));
            if store {
                self.upgrade_for_store(core, line);
            }
            self.cores[core].counters.l2_local_hits += 1;
            return (self.cfg.lat_l2_local, true);
        }

        // Miss.
        self.l2[core].access(line);
        self.policy.record_access(core, set as u32, false);
        self.policy.note_access(core, set as u32, line, false, None);
        let requested_last_copy = self.holders(line).len() == 1;

        let remote = if store {
            let hit = self.bus_write_miss(core, line);
            if hit.is_some() {
                for j in 0..self.cfg.cores {
                    if j != core {
                        self.l1[j].invalidate(line);
                    }
                }
            }
            hit
        } else {
            let hit = self.bus_read_miss(core, line);
            if let Some(h) = &hit {
                if self.cfg.migrate {
                    let from = h.from;
                    self.l1[from].invalidate(line);
                }
            }
            hit
        };

        let mut fill_l1 = true;
        let latency = match remote {
            Some(hit) => {
                self.cores[core].counters.l2_remote_hits += 1;
                let was_spilled = hit.line.spilled;
                if was_spilled {
                    self.spill_hits += 1;
                }
                let state = if store {
                    OracleMesi::Modified
                } else {
                    hit.granted
                };
                let evicted = self.fill_l2(core, set, line, state, false, OracleFill::Demand);
                if let Some(v) = evicted {
                    // §3.2 swap: the supplier's slot is free; if both lines
                    // are last copies, the victim moves into it.
                    let moved_out = store || self.cfg.migrate;
                    let victim_last = self.holders(v.addr).is_empty();
                    if self.policy.swap_enabled() && moved_out && requested_last_copy && victim_last
                    {
                        self.l1[core].invalidate(v.addr);
                        let evicted2 =
                            self.fill_l2(hit.from, set, v.addr, v.state, true, OracleFill::Spill);
                        self.swaps += 1;
                        if let Some(v2) = evicted2 {
                            self.l1[hit.from].invalidate(v2.addr);
                            self.retire(hit.from, v2);
                        }
                    } else {
                        self.dispose(core, set, v);
                    }
                }
                self.cfg.lat_l2_remote
            }
            None => {
                self.cores[core].counters.l2_mem += 1;
                self.cores[core].counters.offchip_fetches += 1;
                let state = if store {
                    OracleMesi::Modified
                } else {
                    self.bus_fetch_state(core, line)
                };
                // Admission gate (TinyLFU-style filters): a rejected fetch
                // is delivered to the core but enters neither cache level.
                if self.policy.admit_fill(set, line, &self.l2[core]) {
                    let evicted = self.fill_l2(core, set, line, state, false, OracleFill::Demand);
                    if let Some(v) = evicted {
                        self.dispose(core, set, v);
                    }
                } else {
                    fill_l1 = false;
                }
                self.cfg.lat_mem
            }
        };
        (latency, fill_l1)
    }

    /// A store hitting a non-Modified line: upgrade, invalidating remote
    /// copies if it was Shared.
    fn upgrade_for_store(&mut self, core: usize, line: u64) {
        match self.l2[core].state_of(line) {
            Some(OracleMesi::Modified) => {}
            Some(OracleMesi::Exclusive) => {
                self.l2[core].set_state(line, OracleMesi::Modified);
            }
            Some(OracleMesi::Shared) => {
                self.bus_write_miss(core, line);
                for j in 0..self.cfg.cores {
                    if j != core {
                        self.l1[j].invalidate(line);
                    }
                }
                self.l2[core].set_state(line, OracleMesi::Modified);
            }
            None => {}
        }
    }

    fn fill_l2(
        &mut self,
        core: usize,
        set: usize,
        addr: u64,
        state: OracleMesi,
        spilled: bool,
        kind: OracleFill,
    ) -> Option<OracleLine> {
        let way = self.policy.choose_victim(core, set, kind, &self.l2[core]);
        let pos = match kind {
            OracleFill::Spill => self.policy.spill_insert_pos(),
            OracleFill::Demand => self.policy.demand_insert_pos(core, set as u32),
        };
        self.l2[core].fill(
            set,
            way,
            OracleLine {
                addr,
                state,
                spilled,
            },
            pos,
            kind,
        )
    }

    /// An L2 eviction: back-invalidate the L1; last copies are offered to
    /// the policy for spilling, replicas are dropped silently.
    fn dispose(&mut self, core: usize, set: usize, v: OracleLine) {
        self.l1[core].invalidate(v.addr);
        let last_copy = self.holders(v.addr).is_empty();
        if !last_copy {
            return;
        }
        match self
            .policy
            .spill_decision(core, set as u32, v.addr, v.state.is_dirty())
        {
            OracleSpill::Spill(to) => {
                let evicted = self.fill_l2(to, set, v.addr, v.state, true, OracleFill::Spill);
                self.spills += 1;
                if let Some(v2) = evicted {
                    self.l1[to].invalidate(v2.addr);
                    // No cascaded spills: the displaced line retires.
                    self.retire(to, v2);
                }
            }
            OracleSpill::NoCandidate | OracleSpill::NotSpiller => self.retire(core, v),
        }
    }

    fn retire(&mut self, core: usize, v: OracleLine) {
        if v.state.is_dirty() {
            self.cores[core].counters.writebacks += 1;
        }
    }

    /// Full architectural-state dump for lockstep comparison.
    pub fn snapshot(&self) -> SysSnap {
        SysSnap {
            l1: self.l1.iter().map(|c| c.snap()).collect(),
            l2: self.l2.iter().map(|c| c.snap()).collect(),
            cores: self
                .cores
                .iter()
                .map(|c| CoreSnap {
                    instrs: c.counters.instrs,
                    cycles: c.counters.cycles,
                    l1_accesses: c.counters.l1_accesses,
                    l1_hits: c.counters.l1_hits,
                    l2_accesses: c.counters.l2_accesses,
                    l2_local_hits: c.counters.l2_local_hits,
                    l2_remote_hits: c.counters.l2_remote_hits,
                    l2_mem: c.counters.l2_mem,
                    offchip_fetches: c.counters.offchip_fetches,
                    writebacks: c.counters.writebacks,
                })
                .collect(),
            spills: self.spills,
            swaps: self.swaps,
            spill_hits: self.spill_hits,
            bus: (self.snoops, self.transfers, self.invalidations, self.probes),
            policy: self.policy.snap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{OracleAsccConfig, OracleCapacity, OracleSelection};

    fn tiny() -> OracleSystem {
        let cores = 2;
        OracleSystem::new(
            OracleConfig {
                cores,
                l1_sets: 2,
                l1_ways: 2,
                l2_sets: 4,
                l2_ways: 2,
                offset_bits: 5,
                lat_l2_local: 9,
                lat_l2_remote: 25,
                lat_mem: 460,
                migrate: true,
                directory: false,
                cpu: vec![
                    OracleCpu {
                        mem_fraction: 1.0,
                        base_cpi: 1.0,
                        overlap: 1.0,
                    };
                    cores
                ],
            },
            OraclePolicyConfig::Ascc(OracleAsccConfig {
                cores,
                sets: 4,
                ways: 2,
                sets_per_counter: 1,
                selection: OracleSelection::MinSsl,
                capacity: OracleCapacity::Sabip,
                two_state: false,
                swap: true,
                epsilon: 1.0 / 32.0,
                seed: 0xA5CC,
            }),
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut sys = tiny();
        sys.step(0, 0x100, false);
        sys.step(0, 0x100, false);
        let s = sys.snapshot();
        assert_eq!(s.cores[0].l2_mem, 1);
        assert_eq!(s.cores[0].l1_hits, 1);
        // Second access hit in L1, so L2 saw exactly one access.
        assert_eq!(s.cores[0].l2_accesses, 1);
    }

    #[test]
    fn remote_hit_migrates() {
        let mut sys = tiny();
        sys.step(0, 0x100, false);
        sys.step(1, 0x100, false);
        let s = sys.snapshot();
        assert_eq!(s.cores[1].l2_remote_hits, 1);
        assert_eq!(s.bus.1, 1); // one transfer
        assert!(sys.l2[0].probe(0x100 >> 5).is_none());
        assert!(sys.l2[1].probe(0x100 >> 5).is_some());
    }
}
