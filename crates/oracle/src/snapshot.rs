//! Architectural-state dumps and their comparison.
//!
//! Both engines are reduced to the same plain-data [`SysSnap`] (the oracle
//! by [`crate::OracleSystem::snapshot`], the optimized engine by the
//! differential harness's extraction code) and compared field by field at
//! every checkpoint. [`diff_snapshots`] reports the *first* difference in a
//! human-readable form so a shrunk counterexample points at the broken
//! rule, not just "states differ".

/// One resident line, engine-neutral (state codes: M=0, E=1, S=2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineSnap {
    /// Line address.
    pub addr: u64,
    /// MESI state code.
    pub state: u8,
    /// Spilled flag.
    pub spilled: bool,
}

/// One cache set: way-indexed lines plus the MRU-first recency order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SetSnap {
    /// `lines[w]` is the line in way `w`, if valid.
    pub lines: Vec<Option<LineSnap>>,
    /// Way indices, most- to least-recently used.
    pub order: Vec<u16>,
}

/// One cache: all sets plus its event counters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CacheSnap {
    /// Per-set contents.
    pub sets: Vec<SetSnap>,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Demand fills.
    pub demand_fills: u64,
    /// Spill fills.
    pub spill_fills: u64,
    /// Evictions.
    pub evictions: u64,
    /// Hits on spilled lines.
    pub spilled_line_hits: u64,
}

/// One core's timing and access counters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CoreSnap {
    /// Instructions committed.
    pub instrs: u64,
    /// Cycles elapsed (compared bit-exactly: both engines perform the
    /// identical f64 arithmetic).
    pub cycles: f64,
    /// L1 accesses.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// Local L2 hits.
    pub l2_local_hits: u64,
    /// Remote L2 hits.
    pub l2_remote_hits: u64,
    /// Accesses served by memory.
    pub l2_mem: u64,
    /// Off-chip fetches.
    pub offchip_fetches: u64,
    /// Dirty write-backs.
    pub writebacks: u64,
}

/// Policy-internal state, per design.
#[derive(Clone, PartialEq, Debug)]
pub enum PolicySnap {
    /// ASCC and its ablation variants.
    Ascc {
        /// `ssl[core][counter]`, 4.3 fixed point.
        ssl: Vec<Vec<u16>>,
        /// `bip[core][counter]`: capacity (SABIP/BIP) insertion mode.
        bip: Vec<Vec<bool>>,
        /// Times a spiller found no receiver and switched insertion mode.
        activations: u64,
    },
    /// AVGCC / QoS-AVGCC.
    Avgcc {
        /// Per-core granularity `D` (log2 sets per counter).
        d: Vec<u8>,
        /// `ssl[core][counter]` at the core's current granularity.
        ssl: Vec<Vec<u16>>,
        /// `bip[core][counter]`.
        bip: Vec<Vec<bool>>,
        /// Per-core `(A, B)` epoch counters.
        ab: Vec<(u32, u32)>,
        /// Per-core QoS ratio in 0.3 fixed point (8 = 1.0).
        ratio_fixed: Vec<u16>,
        /// Total granularity changes across all cores.
        granularity_changes: u64,
    },
    /// Per-set ARC.
    Arc {
        /// `p[core][set]`: adaptive T1 target.
        p: Vec<Vec<u16>>,
        /// `t2[core][set]`: T2 membership bitmask over the ways.
        t2: Vec<Vec<u16>>,
        /// `b1[core][set]`: B1 ghost tags, MRU first.
        b1: Vec<Vec<Vec<u64>>>,
        /// `b2[core][set]`: B2 ghost tags, MRU first.
        b2: Vec<Vec<Vec<u64>>>,
        /// Total `(B1, B2)` ghost hits.
        ghost_hits: (u64, u64),
    },
    /// TinyLFU admission over the private-LRU baseline.
    TinyLfu {
        /// `sketch[row][col]`: 4-bit count-min counters.
        sketch: Vec<Vec<u8>>,
        /// Doorkeeper bloom bits.
        doorkeeper: Vec<bool>,
        /// Observations in the current sample window.
        samples: u64,
        /// Halving resets performed.
        resets: u64,
        /// Fills admitted.
        admissions: u64,
        /// Fills rejected (bypassed).
        rejections: u64,
    },
    /// Reuse-distance copy-back over ASCC.
    Rdcb {
        /// `ssl[core][counter]` of the wrapped ASCC.
        ssl: Vec<Vec<u16>>,
        /// `bip[core][counter]` of the wrapped ASCC.
        bip: Vec<Vec<bool>>,
        /// ASCC capacity activations.
        activations: u64,
        /// `predictor[core][slot]` = `(tag+1, last stamp, distance)`.
        predictor: Vec<Vec<(u64, u64, u64)>>,
        /// Per-core L2-access clocks.
        clock: Vec<u64>,
        /// Clean-victim copy-backs performed.
        copy_backs: u64,
    },
}

/// Full architectural state of one engine at a checkpoint.
#[derive(Clone, PartialEq, Debug)]
pub struct SysSnap {
    /// Private L1s, core order.
    pub l1: Vec<CacheSnap>,
    /// Private L2s, core order.
    pub l2: Vec<CacheSnap>,
    /// Per-core counters.
    pub cores: Vec<CoreSnap>,
    /// Global spill count.
    pub spills: u64,
    /// Global swap count.
    pub swaps: u64,
    /// Global spilled-line hit count (local + remote).
    pub spill_hits: u64,
    /// Fabric statistics: (snoops, transfers, invalidations, probes).
    pub bus: (u64, u64, u64, u64),
    /// Policy-internal state.
    pub policy: PolicySnap,
}

fn diff_caches(kind: &str, a: &[CacheSnap], b: &[CacheSnap]) -> Option<String> {
    for (i, (ca, cb)) in a.iter().zip(b).enumerate() {
        for (s, (sa, sb)) in ca.sets.iter().zip(&cb.sets).enumerate() {
            for (w, (la, lb)) in sa.lines.iter().zip(&sb.lines).enumerate() {
                if la != lb {
                    return Some(format!(
                        "{kind}[{i}] set {s} way {w}: oracle {la:?}, real {lb:?}"
                    ));
                }
            }
            if sa.order != sb.order {
                return Some(format!(
                    "{kind}[{i}] set {s} recency order: oracle {:?}, real {:?}",
                    sa.order, sb.order
                ));
            }
        }
        let sa = (
            ca.hits,
            ca.misses,
            ca.demand_fills,
            ca.spill_fills,
            ca.evictions,
            ca.spilled_line_hits,
        );
        let sb = (
            cb.hits,
            cb.misses,
            cb.demand_fills,
            cb.spill_fills,
            cb.evictions,
            cb.spilled_line_hits,
        );
        if sa != sb {
            return Some(format!(
                "{kind}[{i}] stats (hits, misses, demand_fills, spill_fills, evictions, \
                 spilled_line_hits): oracle {sa:?}, real {sb:?}"
            ));
        }
    }
    None
}

fn diff_policy(a: &PolicySnap, b: &PolicySnap) -> Option<String> {
    match (a, b) {
        (
            PolicySnap::Ascc {
                ssl: sa,
                bip: ba,
                activations: aa,
            },
            PolicySnap::Ascc {
                ssl: sb,
                bip: bb,
                activations: ab,
            },
        ) => {
            if sa != sb {
                return Some(format!("ASCC SSL counters: oracle {sa:?}, real {sb:?}"));
            }
            if ba != bb {
                return Some(format!("ASCC BIP flags: oracle {ba:?}, real {bb:?}"));
            }
            if aa != ab {
                return Some(format!("ASCC capacity activations: oracle {aa}, real {ab}"));
            }
            None
        }
        (
            PolicySnap::Avgcc {
                d: da,
                ssl: sa,
                bip: ba,
                ab: aba,
                ratio_fixed: ra,
                granularity_changes: ga,
            },
            PolicySnap::Avgcc {
                d: db,
                ssl: sb,
                bip: bb,
                ab: abb,
                ratio_fixed: rb,
                granularity_changes: gb,
            },
        ) => {
            if da != db {
                return Some(format!("AVGCC granularity D: oracle {da:?}, real {db:?}"));
            }
            if sa != sb {
                return Some(format!("AVGCC SSL counters: oracle {sa:?}, real {sb:?}"));
            }
            if ba != bb {
                return Some(format!("AVGCC BIP flags: oracle {ba:?}, real {bb:?}"));
            }
            if aba != abb {
                return Some(format!("AVGCC A/B counters: oracle {aba:?}, real {abb:?}"));
            }
            if ra != rb {
                return Some(format!("QoS ratio (x8): oracle {ra:?}, real {rb:?}"));
            }
            if ga != gb {
                return Some(format!("granularity changes: oracle {ga}, real {gb}"));
            }
            None
        }
        (
            PolicySnap::Arc {
                p: pa,
                t2: ta,
                b1: b1a,
                b2: b2a,
                ghost_hits: ga,
            },
            PolicySnap::Arc {
                p: pb,
                t2: tb,
                b1: b1b,
                b2: b2b,
                ghost_hits: gb,
            },
        ) => {
            if pa != pb {
                return Some(format!("ARC p targets: oracle {pa:?}, real {pb:?}"));
            }
            if ta != tb {
                return Some(format!("ARC T2 masks: oracle {ta:?}, real {tb:?}"));
            }
            if b1a != b1b {
                return Some(format!("ARC B1 ghosts: oracle {b1a:?}, real {b1b:?}"));
            }
            if b2a != b2b {
                return Some(format!("ARC B2 ghosts: oracle {b2a:?}, real {b2b:?}"));
            }
            if ga != gb {
                return Some(format!("ARC ghost hits: oracle {ga:?}, real {gb:?}"));
            }
            None
        }
        (
            PolicySnap::TinyLfu {
                sketch: ka,
                doorkeeper: da,
                samples: sa,
                resets: ra,
                admissions: aa,
                rejections: ja,
            },
            PolicySnap::TinyLfu {
                sketch: kb,
                doorkeeper: db,
                samples: sb,
                resets: rb,
                admissions: ab,
                rejections: jb,
            },
        ) => {
            if ka != kb {
                for (row, (xa, xb)) in ka.iter().zip(kb).enumerate() {
                    for (col, (ca, cb)) in xa.iter().zip(xb).enumerate() {
                        if ca != cb {
                            return Some(format!(
                                "TinyLFU sketch[{row}][{col}]: oracle {ca}, real {cb}"
                            ));
                        }
                    }
                }
            }
            if da != db {
                return Some("TinyLFU doorkeeper bits differ".to_string());
            }
            if (sa, ra) != (sb, rb) {
                return Some(format!(
                    "TinyLFU (samples, resets): oracle ({sa}, {ra}), real ({sb}, {rb})"
                ));
            }
            if (aa, ja) != (ab, jb) {
                return Some(format!(
                    "TinyLFU (admissions, rejections): oracle ({aa}, {ja}), real ({ab}, {jb})"
                ));
            }
            None
        }
        (
            PolicySnap::Rdcb {
                ssl: sa,
                bip: ba,
                activations: aa,
                predictor: pa,
                clock: ca,
                copy_backs: cba,
            },
            PolicySnap::Rdcb {
                ssl: sb,
                bip: bb,
                activations: ab,
                predictor: pb,
                clock: cb,
                copy_backs: cbb,
            },
        ) => {
            if sa != sb {
                return Some(format!("RD-CB SSL counters: oracle {sa:?}, real {sb:?}"));
            }
            if ba != bb {
                return Some(format!("RD-CB BIP flags: oracle {ba:?}, real {bb:?}"));
            }
            if aa != ab {
                return Some(format!(
                    "RD-CB capacity activations: oracle {aa}, real {ab}"
                ));
            }
            if ca != cb {
                return Some(format!("RD-CB access clocks: oracle {ca:?}, real {cb:?}"));
            }
            if pa != pb {
                for (core, (xa, xb)) in pa.iter().zip(pb).enumerate() {
                    for (slot, (ra, rb)) in xa.iter().zip(xb).enumerate() {
                        if ra != rb {
                            return Some(format!(
                                "RD-CB predictor[{core}][{slot}]: oracle {ra:?}, real {rb:?}"
                            ));
                        }
                    }
                }
            }
            if cba != cbb {
                return Some(format!("RD-CB copy-backs: oracle {cba}, real {cbb}"));
            }
            None
        }
        _ => Some("policy snapshot kinds differ (harness bug)".to_string()),
    }
}

/// Compares two state dumps; `None` means bit-identical, otherwise a
/// description of the first difference found (cache contents first, then
/// counters, then policy state).
pub fn diff_snapshots(oracle: &SysSnap, real: &SysSnap) -> Option<String> {
    if let Some(d) = diff_caches("L2", &oracle.l2, &real.l2) {
        return Some(d);
    }
    if let Some(d) = diff_caches("L1", &oracle.l1, &real.l1) {
        return Some(d);
    }
    for (i, (a, b)) in oracle.cores.iter().zip(&real.cores).enumerate() {
        if a != b {
            return Some(format!("core {i} counters: oracle {a:?}, real {b:?}"));
        }
    }
    let ga = (oracle.spills, oracle.swaps, oracle.spill_hits);
    let gb = (real.spills, real.swaps, real.spill_hits);
    if ga != gb {
        return Some(format!(
            "global (spills, swaps, spill_hits): oracle {ga:?}, real {gb:?}"
        ));
    }
    if oracle.bus != real.bus {
        return Some(format!(
            "bus (snoops, transfers, invalidations, probes): oracle {:?}, real {:?}",
            oracle.bus, real.bus
        ));
    }
    diff_policy(&oracle.policy, &real.policy)
}
