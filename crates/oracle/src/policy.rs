//! Prose-transcribed spill policies: ASCC (§3), AVGCC (§4–§5) and the QoS
//! extension (§8), written from the paper's text with plain `Vec`s.
//!
//! Fixed point matches the paper's hardware: SSL counters carry three
//! fractional bits (`8` represents 1.0) so the QoS extension can add a
//! fractional ratio per miss. All thresholds below are in that fixed point.
//!
//! RNG discipline: the optimized policies draw from one `SmallRng` at
//! exactly two kinds of sites — breaking a receiver tie among two or more
//! candidates, and the ε-test of a BIP/SABIP insertion. The oracle seeds
//! the same generator and draws at the same sites in the same order;
//! anything else would make lockstep comparison impossible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::snapshot::PolicySnap;

/// Fixed-point 1.0 (three fractional bits).
const ONE: u16 = 1 << 3;
/// QoS ratio fixed-point 1.0.
const QOS_ONE: u16 = 1 << 3;

/// Receiver threshold `K` in fixed point.
fn k_fixed(ways: u16) -> u16 {
    ways << 3
}

/// Saturation value `2K - 1` in fixed point (the default §9 tuning:
/// `max(ceil(2K), K + 2) - 1`).
fn max_fixed(ways: u16) -> u16 {
    let k = ways as u32;
    let max = ((k as f64 * 2.0).ceil() as u32).max(k + 2) - 1;
    (max as u16) << 3
}

/// Set role under the 3-state classification (§3.1): below `K` the set can
/// receive, saturated at `2K-1` it spills, in between it stays neutral.
fn is_spiller_3s(v: u16, ways: u16) -> bool {
    v >= max_fixed(ways)
}

fn is_receiver(v: u16, ways: u16) -> bool {
    v < k_fixed(ways)
}

/// Receiver choice rule (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleSelection {
    /// Any receiver, chosen uniformly.
    Random,
    /// The receiver with the minimum SSL, ties broken uniformly.
    MinSsl,
}

/// Reaction to the capacity problem — a spiller that finds no receiver
/// (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleCapacity {
    /// Keep inserting at MRU.
    None,
    /// Bimodal insertion at LRU.
    Bip,
    /// Spill-aware bimodal insertion at LRU-1.
    Sabip,
}

/// Literal ASCC configuration (covers the ablation variants).
#[derive(Clone, Copy, Debug)]
pub struct OracleAsccConfig {
    /// Cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Associativity `K`.
    pub ways: u16,
    /// Adjacent sets sharing one SSL counter.
    pub sets_per_counter: u32,
    /// Receiver choice rule.
    pub selection: OracleSelection,
    /// Capacity-problem reaction.
    pub capacity: OracleCapacity,
    /// 2-state classification (ASCC-2S): everything at or above `K` spills.
    pub two_state: bool,
    /// §3.2 requested/victim swap.
    pub swap: bool,
    /// BIP/SABIP MRU probability (the paper's 1/32).
    pub epsilon: f64,
    /// RNG seed (must match the optimized policy's).
    pub seed: u64,
}

/// Literal AVGCC / QoS-AVGCC configuration.
#[derive(Clone, Copy, Debug)]
pub struct OracleAvgccConfig {
    /// Cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Associativity `K`.
    pub ways: u16,
    /// Accesses per cache between granularity epochs (§5: 100 000).
    pub epoch_accesses: u64,
    /// Enable the §8 QoS extension.
    pub qos: bool,
    /// Cycles between QoS ratio recalculations.
    pub qos_epoch_cycles: u64,
    /// Counter-count cap (§7), `None` = one counter per set allowed.
    pub max_counters: Option<u32>,
    /// SABIP MRU probability.
    pub epsilon: f64,
    /// §3.2 swap.
    pub swap: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Literal per-set ARC configuration (Megiddo & Modha, FAST 2003), run
/// independently in every `(core, set)` pair.
#[derive(Clone, Copy, Debug)]
pub struct OracleArcConfig {
    /// Cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Associativity (the per-set ARC capacity `c`).
    pub ways: u16,
}

/// Literal TinyLFU admission-filter configuration (Einziger, Friedman &
/// Manes, ACM ToS 2017) over the plain private-LRU baseline.
#[derive(Clone, Copy, Debug)]
pub struct OracleTinyLfuConfig {
    /// Counters per sketch row (power of two).
    pub width: u32,
    /// Sketch rows, `1..=8`.
    pub depth: u32,
    /// Observations between halving resets.
    pub sample_period: u64,
}

/// Literal RD-CB configuration: reuse-distance clean-line copy-back
/// refining ASCC's spill decision.
#[derive(Clone, Copy, Debug)]
pub struct OracleRdcbConfig {
    /// The wrapped ASCC configuration.
    pub ascc: OracleAsccConfig,
    /// Predictor rows per core (power of two).
    pub entries: u32,
    /// Copy-back reuse-distance threshold.
    pub threshold: u64,
}

/// Which policy the oracle system runs.
#[derive(Clone, Copy, Debug)]
pub enum OraclePolicyConfig {
    /// ASCC or an ablation variant.
    Ascc(OracleAsccConfig),
    /// AVGCC or QoS-AVGCC.
    Avgcc(OracleAvgccConfig),
    /// Per-set ARC.
    Arc(OracleArcConfig),
    /// TinyLFU admission over the private-LRU baseline.
    TinyLfu(OracleTinyLfuConfig),
    /// Reuse-distance copy-back over ASCC.
    Rdcb(OracleRdcbConfig),
}

/// Outcome of offering an evicted last copy to the policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleSpill {
    /// Spill into this core's same-index set.
    Spill(usize),
    /// A spiller set, but no receiver on chip (capacity problem).
    NoCandidate,
    /// The set is not a spiller; retire the line.
    NotSpiller,
}

/// The transcribed ASCC policy: per-core counter arrays plus BIP flags.
#[derive(Debug)]
pub struct OracleAscc {
    cfg: OracleAsccConfig,
    /// `ssl[core][counter]`.
    ssl: Vec<Vec<u16>>,
    /// `bip[core][counter]`.
    bip: Vec<Vec<bool>>,
    activations: u64,
    rng: SmallRng,
    gran_log2: u32,
}

impl OracleAscc {
    /// Builds the policy with every counter at `K - 1`.
    pub fn new(cfg: OracleAsccConfig) -> Self {
        let gran_log2 = cfg.sets_per_counter.trailing_zeros();
        let n = (cfg.sets >> gran_log2) as usize;
        OracleAscc {
            ssl: vec![vec![(cfg.ways - 1) << 3; n]; cfg.cores],
            bip: vec![vec![false; n]; cfg.cores],
            activations: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            gran_log2,
            cfg,
        }
    }

    fn idx(&self, set: u32) -> usize {
        (set >> self.gran_log2) as usize
    }

    /// §3.1: increment the covering counter on a miss, decrement on a hit
    /// (saturating at `2K-1` and 0); §3.2: leaving the `SSL >= K` region
    /// reverts the counter to MRU insertion.
    pub fn record_access(&mut self, core: usize, set: u32, hit: bool) {
        let idx = self.idx(set);
        let old = self.ssl[core][idx];
        let new = if hit {
            old.saturating_sub(ONE)
        } else {
            old.saturating_add(ONE).min(max_fixed(self.cfg.ways))
        };
        self.ssl[core][idx] = new;
        if new < k_fixed(self.cfg.ways) {
            self.bip[core][idx] = false;
        }
    }

    fn is_spiller(&self, core: usize, set: u32) -> bool {
        let v = self.ssl[core][self.idx(set)];
        if self.cfg.two_state {
            !is_receiver(v, self.cfg.ways)
        } else {
            is_spiller_3s(v, self.cfg.ways)
        }
    }

    /// §3.1's broadcast reply evaluation: every peer whose covering counter
    /// is below `K` is a candidate; ties on the minimum (or any candidate,
    /// for the random-selection ablation) break uniformly.
    fn find_receiver(&mut self, from: usize, set: u32) -> Option<usize> {
        let k = k_fixed(self.cfg.ways);
        let mut best = k;
        let mut candidates: Vec<usize> = Vec::with_capacity(self.cfg.cores);
        for i in 0..self.cfg.cores {
            if i == from {
                continue;
            }
            let v = self.ssl[i][self.idx(set)];
            if v >= k {
                continue;
            }
            match self.cfg.selection {
                OracleSelection::Random => candidates.push(i),
                OracleSelection::MinSsl => {
                    if v < best {
                        best = v;
                        candidates.clear();
                        candidates.push(i);
                    } else if v == best {
                        candidates.push(i);
                    }
                }
            }
        }
        match candidates.len() {
            0 => None,
            1 => Some(candidates[0]),
            n => Some(candidates[self.rng.gen_range(0..n)]),
        }
    }

    /// Demand-fill insertion depth: MRU normally; under an active capacity
    /// flag, the ε-test picks MRU with probability ε, else the deep
    /// position (LRU for BIP, LRU-1 for SABIP).
    pub fn demand_insert_pos(&mut self, core: usize, set: u32) -> crate::OraclePos {
        let idx = self.idx(set);
        if !self.bip[core][idx] {
            return crate::OraclePos::Mru;
        }
        let deep = match self.cfg.capacity {
            OracleCapacity::None => return crate::OraclePos::Mru,
            OracleCapacity::Bip => crate::OraclePos::Lru,
            OracleCapacity::Sabip => crate::OraclePos::LruMinus1,
        };
        if self.rng.gen::<f64>() < self.cfg.epsilon {
            crate::OraclePos::Mru
        } else {
            deep
        }
    }

    /// §3.1/§3.2: a spilling set looks for a receiver; finding none flags
    /// the capacity problem (switching the counter to deep insertion).
    pub fn spill_decision(&mut self, from: usize, set: u32) -> OracleSpill {
        if !self.is_spiller(from, set) {
            return OracleSpill::NotSpiller;
        }
        match self.find_receiver(from, set) {
            Some(to) => OracleSpill::Spill(to),
            None => {
                if self.cfg.capacity != OracleCapacity::None {
                    let idx = self.idx(set);
                    if !self.bip[from][idx] {
                        self.bip[from][idx] = true;
                        self.activations += 1;
                    }
                }
                OracleSpill::NoCandidate
            }
        }
    }

    fn snap(&self) -> PolicySnap {
        PolicySnap::Ascc {
            ssl: self.ssl.clone(),
            bip: self.bip.clone(),
            activations: self.activations,
        }
    }
}

/// One core's AVGCC state: a counter array at the current granularity.
#[derive(Debug)]
struct OracleAvgccCache {
    /// Granularity `D` = log2 sets per counter.
    d: u8,
    ssl: Vec<u16>,
    bip: Vec<bool>,
    accesses: u64,
    // QoS (§8) sampling state.
    misses_with: u64,
    sampled_misses: u64,
    last_cycle: u64,
    ratio_fixed: u16,
}

impl OracleAvgccCache {
    fn idx(&self, set: u32) -> usize {
        (set >> self.d) as usize
    }

    fn reinit(&mut self, sets: u32, ways: u16) {
        let n = (sets >> self.d) as usize;
        self.ssl = vec![(ways - 1) << 3; n];
        self.bip = vec![false; n];
    }

    /// §4: adjacent counters are "similar" when their values differ by at
    /// most 2 and their insertion modes agree.
    fn pair_similar(&self, idx: usize) -> bool {
        let j = idx ^ 1;
        if j >= self.ssl.len() {
            return false;
        }
        let (vi, vj) = (self.ssl[idx] as i32, self.ssl[j] as i32);
        (vi - vj).abs() <= 2 * ONE as i32 && self.bip[idx] == self.bip[j]
    }

    /// §4's epoch statistics, recomputed from scratch: `A` counts similar
    /// adjacent pairs, `B` counts below-`K` counters.
    fn recount_ab(&self, ways: u16) -> (u32, u32) {
        let n = self.ssl.len();
        let a = (0..n / 2).filter(|&m| self.pair_similar(2 * m)).count() as u32;
        let b = self.ssl.iter().filter(|&&v| v < k_fixed(ways)).count() as u32;
        (a, b)
    }
}

/// The transcribed AVGCC / QoS-AVGCC policy.
#[derive(Debug)]
pub struct OracleAvgcc {
    cfg: OracleAvgccConfig,
    caches: Vec<OracleAvgccCache>,
    d_min: u8,
    d_max: u8,
    granularity_changes: u64,
    rng: SmallRng,
}

impl OracleAvgcc {
    /// Builds the policy at the coarsest granularity (one counter per
    /// cache, §4).
    pub fn new(cfg: OracleAvgccConfig) -> Self {
        let d_max = cfg.sets.trailing_zeros() as u8;
        let d_min = cfg
            .max_counters
            .map(|mc| d_max - mc.trailing_zeros() as u8)
            .unwrap_or(0);
        let caches = (0..cfg.cores)
            .map(|_| {
                let mut c = OracleAvgccCache {
                    d: d_max,
                    ssl: Vec::new(),
                    bip: Vec::new(),
                    accesses: 0,
                    misses_with: 0,
                    sampled_misses: 0,
                    last_cycle: 0,
                    ratio_fixed: QOS_ONE,
                };
                c.reinit(cfg.sets, cfg.ways);
                c
            })
            .collect();
        OracleAvgcc {
            caches,
            d_min,
            d_max,
            granularity_changes: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// §4/§8: counter update on each access; under QoS a miss adds the
    /// fractional ratio instead of 1 and feeds the baseline-miss sampler.
    /// Every `epoch_accesses` accesses the granularity is re-evaluated.
    pub fn record_access(&mut self, core: usize, set: u32, hit: bool) {
        let ways = self.cfg.ways;
        let qos = self.cfg.qos;
        let c = &mut self.caches[core];
        let idx = c.idx(set);
        let old = c.ssl[idx];
        let k = k_fixed(ways);
        let new = if hit {
            old.saturating_sub(ONE)
        } else {
            if qos {
                c.misses_with += 1;
                if !c.bip[idx] && old >= k {
                    c.sampled_misses += 1;
                }
            }
            let inc = if qos { c.ratio_fixed } else { ONE };
            old.saturating_add(inc).min(max_fixed(ways))
        };
        c.ssl[idx] = new;
        if new < k && c.bip[idx] {
            c.bip[idx] = false;
        }
        c.accesses += 1;
        if c.accesses.is_multiple_of(self.cfg.epoch_accesses) {
            self.epoch(core);
        }
    }

    /// §4's granularity step: duplicate the counters ("halve the
    /// granularity") when more than half signal spare capacity (`B`),
    /// halve them when every adjacent pair is redundant (`A`). Refinement
    /// is checked first.
    fn epoch(&mut self, core: usize) {
        let (sets, ways) = (self.cfg.sets, self.cfg.ways);
        let c = &mut self.caches[core];
        let in_use = c.ssl.len() as u32;
        let (a, b) = c.recount_ab(ways);
        if b > in_use / 2 && c.d > self.d_min {
            c.d -= 1;
            c.reinit(sets, ways);
            self.granularity_changes += 1;
        } else if in_use >= 2 && a == in_use / 2 && c.d < self.d_max {
            c.d += 1;
            c.reinit(sets, ways);
            self.granularity_changes += 1;
        }
    }

    /// Demand-fill insertion depth: SABIP's ε-test whenever the covering
    /// counter is in capacity mode, plain MRU otherwise.
    pub fn demand_insert_pos(&mut self, core: usize, set: u32) -> crate::OraclePos {
        let c = &self.caches[core];
        if !c.bip[c.idx(set)] {
            return crate::OraclePos::Mru;
        }
        if self.rng.gen::<f64>() < self.cfg.epsilon {
            crate::OraclePos::Mru
        } else {
            crate::OraclePos::LruMinus1
        }
    }

    /// §4/§8 spill decision: minimum-SSL receiver among peers, each
    /// evaluated at its own granularity; under QoS a fully inhibited cache
    /// neither spills nor receives, and a below-1 ratio excludes a peer
    /// from receiving.
    pub fn spill_decision(&mut self, from: usize, set: u32) -> OracleSpill {
        if self.cfg.qos && self.caches[from].ratio_fixed == 0 {
            return OracleSpill::NotSpiller;
        }
        let ways = self.cfg.ways;
        {
            let c = &self.caches[from];
            if !is_spiller_3s(c.ssl[c.idx(set)], ways) {
                return OracleSpill::NotSpiller;
            }
        }
        let k = k_fixed(ways);
        let mut best = k;
        let mut candidates: Vec<usize> = Vec::with_capacity(self.cfg.cores);
        for (i, c) in self.caches.iter().enumerate() {
            if i == from {
                continue;
            }
            if self.cfg.qos && c.ratio_fixed < QOS_ONE {
                continue;
            }
            let v = c.ssl[c.idx(set)];
            if v < best {
                best = v;
                candidates.clear();
                candidates.push(i);
            } else if v < k && v == best {
                candidates.push(i);
            }
        }
        match candidates.len() {
            0 => {
                let c = &mut self.caches[from];
                let idx = c.idx(set);
                if !c.bip[idx] {
                    c.bip[idx] = true;
                }
                OracleSpill::NoCandidate
            }
            1 => OracleSpill::Spill(candidates[0]),
            n => OracleSpill::Spill(candidates[self.rng.gen_range(0..n)]),
        }
    }

    /// §8's per-core QoS epoch: once `qos_epoch_cycles` cycles elapsed,
    /// estimate the baseline's misses from the MRU-mode saturated sets
    /// (Eq. 1) and refresh the ratio.
    pub fn on_cycle(&mut self, core: usize, cycles: u64) {
        if !self.cfg.qos {
            return;
        }
        let sets = self.cfg.sets;
        let ways = self.cfg.ways;
        let c = &mut self.caches[core];
        if cycles.saturating_sub(c.last_cycle) < self.cfg.qos_epoch_cycles {
            return;
        }
        c.last_cycle = cycles;
        let spc = 1u64 << c.d;
        let k = k_fixed(ways);
        let sampled_counters = (0..c.ssl.len())
            .filter(|&i| !c.bip[i] && c.ssl[i] >= k)
            .count() as u64;
        let sampled_sets = sampled_counters * spc;
        let ratio = if sampled_sets == 0 || c.misses_with == 0 {
            1.0
        } else {
            let mbc = sets as f64 * (c.sampled_misses as f64 / sampled_sets as f64);
            mbc / mbc.max(c.misses_with as f64)
        };
        c.ratio_fixed = ((ratio * QOS_ONE as f64).round() as u16).min(QOS_ONE);
        c.misses_with = 0;
        c.sampled_misses = 0;
    }

    fn snap(&self) -> PolicySnap {
        PolicySnap::Avgcc {
            d: self.caches.iter().map(|c| c.d).collect(),
            ssl: self.caches.iter().map(|c| c.ssl.clone()).collect(),
            bip: self.caches.iter().map(|c| c.bip.clone()).collect(),
            ab: self
                .caches
                .iter()
                .map(|c| c.recount_ab(self.cfg.ways))
                .collect(),
            ratio_fixed: self.caches.iter().map(|c| c.ratio_fixed).collect(),
            granularity_changes: self.granularity_changes,
        }
    }
}

/// Ghost-hit classification of an in-flight miss (mirrors the optimized
/// policy's per-core pending latch).
const ARC_FRESH: u8 = 0;
const ARC_B1: u8 = 1;
const ARC_B2: u8 = 2;

/// One `(core, set)` ARC directory entry, the naive way: a membership flag
/// per way and two plain ghost-tag vectors (index 0 = MRU).
#[derive(Debug)]
struct OracleArcSet {
    /// `t2[w]`: way `w` belongs to T2 (seen at least twice); clear = T1.
    t2: Vec<bool>,
    b1: Vec<u64>,
    b2: Vec<u64>,
    /// Adaptive target size of T1, `0..=ways`.
    p: u16,
}

/// Pushes `addr` at the MRU end of a ghost list capped at `cap` entries,
/// dropping the LRU entry first when full.
fn ghost_push(list: &mut Vec<u64>, cap: usize, addr: u64) {
    if list.len() >= cap {
        list.truncate(cap - 1);
    }
    list.insert(0, addr);
}

/// The transcribed per-set ARC policy. Decision-identical to the optimized
/// `ascc::ArcPolicy`: same pending-latch discipline, same DBL(2c)
/// trimming (including the case-IV-A discard without a ghost), same
/// REPLACE(p) rule over the recency order filtered by T1/T2 membership.
/// ARC never spills and draws no randomness.
#[derive(Debug)]
pub struct OracleArc {
    cfg: OracleArcConfig,
    /// `sets[core][set]`.
    sets: Vec<Vec<OracleArcSet>>,
    /// Ghost classification of the in-flight miss, per core.
    pending: Vec<u8>,
    b1_hits: u64,
    b2_hits: u64,
}

impl OracleArc {
    /// Builds the policy with empty lists and `p = 0` everywhere.
    pub fn new(cfg: OracleArcConfig) -> Self {
        OracleArc {
            sets: (0..cfg.cores)
                .map(|_| {
                    (0..cfg.sets)
                        .map(|_| OracleArcSet {
                            t2: vec![false; cfg.ways as usize],
                            b1: Vec::new(),
                            b2: Vec::new(),
                            p: 0,
                        })
                        .collect()
                })
                .collect(),
            pending: vec![ARC_FRESH; cfg.cores],
            b1_hits: 0,
            b2_hits: 0,
            cfg,
        }
    }

    /// Address-carrying access notification: hits promote the touched way
    /// to T2; misses classify against the ghost lists and move `p`.
    pub fn note_access(&mut self, core: usize, set: u32, line: u64, hit: bool, way: Option<usize>) {
        let k = self.cfg.ways as u64;
        let s = &mut self.sets[core][set as usize];
        if hit {
            if let Some(w) = way {
                s.t2[w] = true;
            }
            return;
        }
        if let Some(pos) = s.b1.iter().position(|&t| t == line) {
            // Case II: hit in B1 -> grow the recency target.
            self.b1_hits += 1;
            let delta = ((s.b2.len() as u64) / (s.b1.len() as u64)).max(1);
            s.p = ((s.p as u64 + delta).min(k)) as u16;
            s.b1.remove(pos);
            self.pending[core] = ARC_B1;
        } else if let Some(pos) = s.b2.iter().position(|&t| t == line) {
            // Case III: hit in B2 -> grow the frequency target.
            self.b2_hits += 1;
            let delta = ((s.b1.len() as u64) / (s.b2.len() as u64)).max(1);
            s.p = (s.p as u64).saturating_sub(delta) as u16;
            s.b2.remove(pos);
            self.pending[core] = ARC_B2;
        } else {
            // Case IV: a completely fresh line.
            self.pending[core] = ARC_FRESH;
        }
    }

    /// ARC's victim choice for a fill into `core`'s `set` of `cache`.
    pub fn choose_victim(
        &mut self,
        core: usize,
        set: usize,
        kind: crate::OracleFill,
        cache: &crate::OracleCache,
    ) -> usize {
        let demand = kind == crate::OracleFill::Demand;
        let pending = if demand {
            std::mem::replace(&mut self.pending[core], ARC_FRESH)
        } else {
            ARC_FRESH
        };
        let k = self.cfg.ways as usize;
        if let Some(w) = cache.invalid_way(set) {
            // Coherence invalidations open holes classic ARC never sees;
            // fill them without evicting. Ghost hits still enter as T2.
            self.sets[core][set].t2[w] = demand && pending != ARC_FRESH;
            return w;
        }
        if !demand {
            // Spilled-in lines have no ARC history; treat them as
            // single-touch (T1) residents at the LRU way, remembering the
            // displaced line in its list's ghost.
            let w = cache.default_victim(set);
            let s = &mut self.sets[core][set];
            if let Some(victim) = cache.line(set, w) {
                if s.t2[w] {
                    ghost_push(&mut s.b2, k, victim.addr);
                } else {
                    ghost_push(&mut s.b1, k, victim.addr);
                }
            }
            s.t2[w] = false;
            return w;
        }

        let s = &mut self.sets[core][set];
        let valid_count = cache.valid_count(set);
        let t1_size = (0..k)
            .filter(|&w| cache.line(set, w).is_some() && !s.t2[w])
            .count();
        // Each list's LRU: the deepest way of the recency order that is
        // valid and carries the list's membership flag.
        let t1_lru = cache
            .order(set)
            .iter()
            .rev()
            .map(|&w| w as usize)
            .find(|&w| cache.line(set, w).is_some() && !s.t2[w]);
        let t2_lru = cache
            .order(set)
            .iter()
            .rev()
            .map(|&w| w as usize)
            .find(|&w| cache.line(set, w).is_some() && s.t2[w]);

        // DBL(2c) directory trimming (paper's case IV), fresh misses only:
        // ghost hits already freed a slot in their own list.
        let mut push_ghost = true;
        if pending == ARC_FRESH {
            if t1_size + s.b1.len() >= k {
                if !s.b1.is_empty() {
                    s.b1.pop();
                } else {
                    // |T1| == c and B1 empty: ARC discards the T1 LRU
                    // without remembering it.
                    push_ghost = false;
                }
            } else if valid_count + s.b1.len() + s.b2.len() >= 2 * k && !s.b2.is_empty() {
                s.b2.pop();
            }
        }

        // REPLACE(p): evict the T1 LRU when T1 exceeds its target (or a B2
        // hit demands frequency room at the boundary), else the T2 LRU.
        let evict_t1 = match (t1_lru, t2_lru) {
            (Some(_), None) => true,
            (None, _) => false,
            (Some(_), Some(_)) => {
                t1_size > s.p as usize || (pending == ARC_B2 && t1_size == s.p as usize)
            }
        };
        let way = if evict_t1 {
            t1_lru.expect("T1 nonempty")
        } else {
            t2_lru.expect("full set has a T2 line")
        };
        if push_ghost {
            let victim = cache.line(set, way).expect("victim is valid").addr;
            if evict_t1 {
                ghost_push(&mut s.b1, k, victim);
            } else {
                ghost_push(&mut s.b2, k, victim);
            }
        }
        // The newcomer joins T2 exactly when it was a ghost hit.
        s.t2[way] = pending != ARC_FRESH;
        way
    }

    fn snap(&self) -> PolicySnap {
        PolicySnap::Arc {
            p: self
                .sets
                .iter()
                .map(|c| c.iter().map(|s| s.p).collect())
                .collect(),
            t2: self
                .sets
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|s| {
                            s.t2.iter()
                                .enumerate()
                                .fold(0u16, |m, (w, &b)| m | (b as u16) << w)
                        })
                        .collect()
                })
                .collect(),
            b1: self
                .sets
                .iter()
                .map(|c| c.iter().map(|s| s.b1.clone()).collect())
                .collect(),
            b2: self
                .sets
                .iter()
                .map(|c| c.iter().map(|s| s.b2.clone()).collect())
                .collect(),
            ghost_hits: (self.b1_hits, self.b2_hits),
        }
    }
}

/// Per-row seed constants of the count-min sketch rows — the same fixed
/// constants as the optimized filter; they are part of the policy's
/// specified behavior, not an implementation detail.
const TINYLFU_ROW_SEEDS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x27d4_eb2f_1656_67c5,
    0xff51_afd7_ed55_8ccd,
    0xc4ce_b9fe_1a85_ec53,
    0x8538_ecb5_bd45_6ea3,
    0x2545_f491_4f6c_dd1d,
];

/// Doorkeeper bloom-bit seed.
const TINYLFU_DOORKEEPER_SEED: u64 = 0x5851_f42d_4c95_7f2d;

/// SplitMix64 finalizer, transcribed.
fn tinylfu_mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The transcribed TinyLFU admission filter over the plain private-LRU
/// baseline: counters are a `Vec<Vec<u8>>` count-min sketch (values
/// saturating at 15) behind a `Vec<bool>` doorkeeper, halved and cleared
/// every `sample_period` observations. Eviction, insertion and spilling
/// are the baseline's (LRU victim, MRU insert, never spill).
#[derive(Debug)]
pub struct OracleTinyLfu {
    cfg: OracleTinyLfuConfig,
    /// `counters[row][col]`, each `0..=15`.
    counters: Vec<Vec<u8>>,
    doorkeeper: Vec<bool>,
    samples: u64,
    resets: u64,
    admissions: u64,
    rejections: u64,
}

impl OracleTinyLfu {
    /// Builds the filter with a cold sketch.
    pub fn new(cfg: OracleTinyLfuConfig) -> Self {
        OracleTinyLfu {
            counters: vec![vec![0; cfg.width as usize]; cfg.depth as usize],
            doorkeeper: vec![false; cfg.width as usize],
            samples: 0,
            resets: 0,
            admissions: 0,
            rejections: 0,
            cfg,
        }
    }

    fn column(&self, row: usize, line: u64) -> usize {
        (tinylfu_mix(line ^ TINYLFU_ROW_SEEDS[row]) & (self.cfg.width as u64 - 1)) as usize
    }

    fn doorkeeper_slot(&self, line: u64) -> usize {
        (tinylfu_mix(line ^ TINYLFU_DOORKEEPER_SEED) & (self.cfg.width as u64 - 1)) as usize
    }

    fn estimate(&self, line: u64) -> u32 {
        let sketch_min = (0..self.cfg.depth as usize)
            .map(|row| self.counters[row][self.column(row, line)] as u32)
            .min()
            .unwrap_or(0);
        sketch_min + self.doorkeeper[self.doorkeeper_slot(line)] as u32
    }

    /// Every L2 access feeds the sketch: first sight in a window sets the
    /// doorkeeper bit, recurrences bump every row; the window's end halves
    /// everything.
    pub fn note_access(&mut self, line: u64) {
        let slot = self.doorkeeper_slot(line);
        if self.doorkeeper[slot] {
            for row in 0..self.cfg.depth as usize {
                let col = self.column(row, line);
                if self.counters[row][col] < 15 {
                    self.counters[row][col] += 1;
                }
            }
        } else {
            self.doorkeeper[slot] = true;
        }
        self.samples += 1;
        if self.samples >= self.cfg.sample_period {
            for row in &mut self.counters {
                for c in row {
                    *c >>= 1;
                }
            }
            self.doorkeeper.iter_mut().for_each(|b| *b = false);
            self.samples = 0;
            self.resets += 1;
        }
    }

    /// The admission test: a free way always admits; otherwise the
    /// candidate must *strictly* beat the line the default victim choice
    /// would displace.
    pub fn admit_fill(&mut self, line: u64, set: usize, cache: &crate::OracleCache) -> bool {
        let victim = cache.line(set, cache.default_victim(set));
        let Some(victim) = victim else {
            self.admissions += 1;
            return true;
        };
        if self.estimate(line) > self.estimate(victim.addr) {
            self.admissions += 1;
            true
        } else {
            self.rejections += 1;
            false
        }
    }

    fn snap(&self) -> PolicySnap {
        PolicySnap::TinyLfu {
            sketch: self.counters.clone(),
            doorkeeper: self.doorkeeper.clone(),
            samples: self.samples,
            resets: self.resets,
            admissions: self.admissions,
            rejections: self.rejections,
        }
    }
}

/// Sentinel distance for "seen once, no distance yet" (matches the
/// optimized predictor's encoding so snapshots compare bit-for-bit).
const RDCB_DIST_UNKNOWN: u64 = u64::MAX;

/// The transcribed RD-CB refinement: plain ASCC plus a direct-mapped
/// per-core reuse-distance predictor (`[tag+1, last stamp, distance]`
/// rows) that forwards clean, short-distance victims to the receiver
/// ASCC's own scan picks — consuming the same RNG draws in the same order.
#[derive(Debug)]
pub struct OracleRdcb {
    cfg: OracleRdcbConfig,
    ascc: OracleAscc,
    /// `table[core][slot]` = `[tag+1, last stamp, distance]`.
    table: Vec<Vec<[u64; 3]>>,
    clock: Vec<u64>,
    copy_backs: u64,
}

impl OracleRdcb {
    /// Builds the refinement over a fresh ASCC.
    pub fn new(cfg: OracleRdcbConfig) -> Self {
        OracleRdcb {
            ascc: OracleAscc::new(cfg.ascc),
            table: vec![vec![[0; 3]; cfg.entries as usize]; cfg.ascc.cores],
            clock: vec![0; cfg.ascc.cores],
            copy_backs: 0,
            cfg,
        }
    }

    fn slot(&self, line: u64) -> usize {
        ((line ^ (line >> 20)) & (self.cfg.entries as u64 - 1)) as usize
    }

    /// Predictor update on every L2 access by `core`.
    pub fn note_access(&mut self, core: usize, line: u64) {
        let now = self.clock[core];
        self.clock[core] += 1;
        let slot = self.slot(line);
        let row = &mut self.table[core][slot];
        if row[0] == line.wrapping_add(1) {
            row[2] = now - row[1];
            row[1] = now;
        } else {
            row[0] = line.wrapping_add(1);
            row[1] = now;
            row[2] = RDCB_DIST_UNKNOWN;
        }
    }

    fn would_copy_back(&self, core: usize, line: u64) -> bool {
        let row = &self.table[core][self.slot(line)];
        row[0] == line.wrapping_add(1)
            && row[2] != RDCB_DIST_UNKNOWN
            && row[2] <= self.cfg.threshold
    }

    /// ASCC decides first (its spill is final); a clean victim with a
    /// short predicted reuse distance is then copied back to the receiver
    /// the same allocator scan chooses.
    pub fn spill_decision(&mut self, from: usize, set: u32, addr: u64, dirty: bool) -> OracleSpill {
        let base = self.ascc.spill_decision(from, set);
        if matches!(base, OracleSpill::Spill(_)) {
            return base;
        }
        if !dirty && self.would_copy_back(from, addr) {
            if let Some(to) = self.ascc.find_receiver(from, set) {
                self.copy_backs += 1;
                return OracleSpill::Spill(to);
            }
        }
        base
    }

    fn snap(&self) -> PolicySnap {
        PolicySnap::Rdcb {
            ssl: self.ascc.ssl.clone(),
            bip: self.ascc.bip.clone(),
            activations: self.ascc.activations,
            predictor: self
                .table
                .iter()
                .map(|c| c.iter().map(|r| (r[0], r[1], r[2])).collect())
                .collect(),
            clock: self.clock.clone(),
            copy_backs: self.copy_backs,
        }
    }
}

/// Either transcribed policy behind one dispatch surface for the system.
#[derive(Debug)]
pub enum OraclePolicy {
    /// ASCC or an ablation variant.
    Ascc(OracleAscc),
    /// AVGCC or QoS-AVGCC.
    Avgcc(OracleAvgcc),
    /// Per-set ARC.
    Arc(OracleArc),
    /// TinyLFU admission over the private-LRU baseline.
    TinyLfu(OracleTinyLfu),
    /// Reuse-distance copy-back over ASCC.
    Rdcb(OracleRdcb),
}

impl OraclePolicy {
    /// Builds the configured policy.
    pub fn new(cfg: OraclePolicyConfig) -> Self {
        match cfg {
            OraclePolicyConfig::Ascc(c) => OraclePolicy::Ascc(OracleAscc::new(c)),
            OraclePolicyConfig::Avgcc(c) => OraclePolicy::Avgcc(OracleAvgcc::new(c)),
            OraclePolicyConfig::Arc(c) => OraclePolicy::Arc(OracleArc::new(c)),
            OraclePolicyConfig::TinyLfu(c) => OraclePolicy::TinyLfu(OracleTinyLfu::new(c)),
            OraclePolicyConfig::Rdcb(c) => OraclePolicy::Rdcb(OracleRdcb::new(c)),
        }
    }

    /// Counter update for a local L2 access.
    pub fn record_access(&mut self, core: usize, set: u32, hit: bool) {
        match self {
            OraclePolicy::Ascc(p) => p.record_access(core, set, hit),
            OraclePolicy::Avgcc(p) => p.record_access(core, set, hit),
            OraclePolicy::Arc(_) | OraclePolicy::TinyLfu(_) => {}
            OraclePolicy::Rdcb(p) => p.ascc.record_access(core, set, hit),
        }
    }

    /// Address-carrying access notification, called right after
    /// [`record_access`](Self::record_access) with the same outcome plus
    /// the line and — on a hit — the way it was found in (pre-promotion).
    pub fn note_access(&mut self, core: usize, set: u32, line: u64, hit: bool, way: Option<usize>) {
        match self {
            OraclePolicy::Ascc(_) | OraclePolicy::Avgcc(_) => {}
            OraclePolicy::Arc(p) => p.note_access(core, set, line, hit, way),
            OraclePolicy::TinyLfu(p) => p.note_access(line),
            OraclePolicy::Rdcb(p) => p.note_access(core, line),
        }
    }

    /// Whether an off-chip fetch may enter `core`'s `set` (TinyLFU's gate;
    /// everything else admits unconditionally).
    pub fn admit_fill(&mut self, set: usize, line: u64, cache: &crate::OracleCache) -> bool {
        match self {
            OraclePolicy::TinyLfu(p) => p.admit_fill(line, set, cache),
            _ => true,
        }
    }

    /// Victim way for a fill of `kind` into `core`'s `set` of `cache`:
    /// ARC's REPLACE(p) choice, everyone else the first invalid way then
    /// the LRU way.
    pub fn choose_victim(
        &mut self,
        core: usize,
        set: usize,
        kind: crate::OracleFill,
        cache: &crate::OracleCache,
    ) -> usize {
        match self {
            OraclePolicy::Arc(p) => p.choose_victim(core, set, kind, cache),
            _ => cache.default_victim(set),
        }
    }

    /// Demand-fill insertion depth (may draw the ε-test).
    pub fn demand_insert_pos(&mut self, core: usize, set: u32) -> crate::OraclePos {
        match self {
            OraclePolicy::Ascc(p) => p.demand_insert_pos(core, set),
            OraclePolicy::Avgcc(p) => p.demand_insert_pos(core, set),
            OraclePolicy::Arc(_) | OraclePolicy::TinyLfu(_) => crate::OraclePos::Mru,
            OraclePolicy::Rdcb(p) => p.ascc.demand_insert_pos(core, set),
        }
    }

    /// Spill-fill insertion depth (every design installs spills at MRU).
    pub fn spill_insert_pos(&mut self) -> crate::OraclePos {
        crate::OraclePos::Mru
    }

    /// Last-copy eviction decision. `addr` and `dirty` describe the
    /// victim; only RD-CB's copy-back refinement consults them.
    pub fn spill_decision(&mut self, from: usize, set: u32, addr: u64, dirty: bool) -> OracleSpill {
        match self {
            OraclePolicy::Ascc(p) => p.spill_decision(from, set),
            OraclePolicy::Avgcc(p) => p.spill_decision(from, set),
            OraclePolicy::Arc(_) | OraclePolicy::TinyLfu(_) => OracleSpill::NotSpiller,
            OraclePolicy::Rdcb(p) => p.spill_decision(from, set, addr, dirty),
        }
    }

    /// Whether §3.2 swapping is on.
    pub fn swap_enabled(&self) -> bool {
        match self {
            OraclePolicy::Ascc(p) => p.cfg.swap,
            OraclePolicy::Avgcc(p) => p.cfg.swap,
            OraclePolicy::Arc(_) | OraclePolicy::TinyLfu(_) => false,
            OraclePolicy::Rdcb(p) => p.cfg.ascc.swap,
        }
    }

    /// Clock notification (QoS epochs only).
    pub fn on_cycle(&mut self, core: usize, cycles: u64) {
        if let OraclePolicy::Avgcc(p) = self {
            p.on_cycle(core, cycles)
        }
    }

    /// Policy-state dump for lockstep comparison.
    pub fn snap(&self) -> PolicySnap {
        match self {
            OraclePolicy::Ascc(p) => p.snap(),
            OraclePolicy::Avgcc(p) => p.snap(),
            OraclePolicy::Arc(p) => p.snap(),
            OraclePolicy::TinyLfu(p) => p.snap(),
            OraclePolicy::Rdcb(p) => p.snap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ascc_cfg() -> OracleAsccConfig {
        OracleAsccConfig {
            cores: 2,
            sets: 4,
            ways: 4,
            sets_per_counter: 1,
            selection: OracleSelection::MinSsl,
            capacity: OracleCapacity::Sabip,
            two_state: false,
            swap: true,
            epsilon: 1.0 / 32.0,
            seed: 0xA5CC,
        }
    }

    #[test]
    fn ssl_saturates_at_2k_minus_1() {
        let mut p = OracleAscc::new(ascc_cfg());
        for _ in 0..100 {
            p.record_access(0, 0, false);
        }
        assert_eq!(p.ssl[0][0], 7 << 3); // 2K-1 = 7 for K=4
        assert!(p.is_spiller(0, 0));
    }

    #[test]
    fn capacity_flag_set_and_reverted() {
        let mut p = OracleAscc::new(ascc_cfg());
        // Saturate both cores' set 0: no receiver anywhere.
        for _ in 0..100 {
            p.record_access(0, 0, false);
            p.record_access(1, 0, false);
        }
        assert_eq!(p.spill_decision(0, 0), OracleSpill::NoCandidate);
        assert!(p.bip[0][0]);
        // Hits bring SSL below K -> MRU insertion again.
        for _ in 0..100 {
            p.record_access(0, 0, true);
        }
        assert!(!p.bip[0][0]);
    }

    #[test]
    fn avgcc_starts_coarse_and_refines() {
        let mut p = OracleAvgcc::new(OracleAvgccConfig {
            cores: 2,
            sets: 8,
            ways: 2,
            epoch_accesses: 4,
            qos: false,
            qos_epoch_cycles: 1000,
            max_counters: None,
            epsilon: 1.0 / 32.0,
            swap: true,
            seed: 0xA26CC,
        });
        assert_eq!(p.caches[0].ssl.len(), 1);
        // Counters start at K-1 < K: B = 1 > in_use/2 = 0 -> refine at the
        // first epoch.
        for _ in 0..4 {
            p.record_access(0, 0, true);
        }
        assert_eq!(p.caches[0].ssl.len(), 2);
        assert_eq!(p.granularity_changes, 1);
    }
}
