//! Prose-transcribed spill policies: ASCC (§3), AVGCC (§4–§5) and the QoS
//! extension (§8), written from the paper's text with plain `Vec`s.
//!
//! Fixed point matches the paper's hardware: SSL counters carry three
//! fractional bits (`8` represents 1.0) so the QoS extension can add a
//! fractional ratio per miss. All thresholds below are in that fixed point.
//!
//! RNG discipline: the optimized policies draw from one `SmallRng` at
//! exactly two kinds of sites — breaking a receiver tie among two or more
//! candidates, and the ε-test of a BIP/SABIP insertion. The oracle seeds
//! the same generator and draws at the same sites in the same order;
//! anything else would make lockstep comparison impossible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::snapshot::PolicySnap;

/// Fixed-point 1.0 (three fractional bits).
const ONE: u16 = 1 << 3;
/// QoS ratio fixed-point 1.0.
const QOS_ONE: u16 = 1 << 3;

/// Receiver threshold `K` in fixed point.
fn k_fixed(ways: u16) -> u16 {
    ways << 3
}

/// Saturation value `2K - 1` in fixed point (the default §9 tuning:
/// `max(ceil(2K), K + 2) - 1`).
fn max_fixed(ways: u16) -> u16 {
    let k = ways as u32;
    let max = ((k as f64 * 2.0).ceil() as u32).max(k + 2) - 1;
    (max as u16) << 3
}

/// Set role under the 3-state classification (§3.1): below `K` the set can
/// receive, saturated at `2K-1` it spills, in between it stays neutral.
fn is_spiller_3s(v: u16, ways: u16) -> bool {
    v >= max_fixed(ways)
}

fn is_receiver(v: u16, ways: u16) -> bool {
    v < k_fixed(ways)
}

/// Receiver choice rule (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleSelection {
    /// Any receiver, chosen uniformly.
    Random,
    /// The receiver with the minimum SSL, ties broken uniformly.
    MinSsl,
}

/// Reaction to the capacity problem — a spiller that finds no receiver
/// (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleCapacity {
    /// Keep inserting at MRU.
    None,
    /// Bimodal insertion at LRU.
    Bip,
    /// Spill-aware bimodal insertion at LRU-1.
    Sabip,
}

/// Literal ASCC configuration (covers the ablation variants).
#[derive(Clone, Copy, Debug)]
pub struct OracleAsccConfig {
    /// Cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Associativity `K`.
    pub ways: u16,
    /// Adjacent sets sharing one SSL counter.
    pub sets_per_counter: u32,
    /// Receiver choice rule.
    pub selection: OracleSelection,
    /// Capacity-problem reaction.
    pub capacity: OracleCapacity,
    /// 2-state classification (ASCC-2S): everything at or above `K` spills.
    pub two_state: bool,
    /// §3.2 requested/victim swap.
    pub swap: bool,
    /// BIP/SABIP MRU probability (the paper's 1/32).
    pub epsilon: f64,
    /// RNG seed (must match the optimized policy's).
    pub seed: u64,
}

/// Literal AVGCC / QoS-AVGCC configuration.
#[derive(Clone, Copy, Debug)]
pub struct OracleAvgccConfig {
    /// Cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Associativity `K`.
    pub ways: u16,
    /// Accesses per cache between granularity epochs (§5: 100 000).
    pub epoch_accesses: u64,
    /// Enable the §8 QoS extension.
    pub qos: bool,
    /// Cycles between QoS ratio recalculations.
    pub qos_epoch_cycles: u64,
    /// Counter-count cap (§7), `None` = one counter per set allowed.
    pub max_counters: Option<u32>,
    /// SABIP MRU probability.
    pub epsilon: f64,
    /// §3.2 swap.
    pub swap: bool,
    /// RNG seed.
    pub seed: u64,
}

/// Which policy the oracle system runs.
#[derive(Clone, Copy, Debug)]
pub enum OraclePolicyConfig {
    /// ASCC or an ablation variant.
    Ascc(OracleAsccConfig),
    /// AVGCC or QoS-AVGCC.
    Avgcc(OracleAvgccConfig),
}

/// Outcome of offering an evicted last copy to the policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OracleSpill {
    /// Spill into this core's same-index set.
    Spill(usize),
    /// A spiller set, but no receiver on chip (capacity problem).
    NoCandidate,
    /// The set is not a spiller; retire the line.
    NotSpiller,
}

/// The transcribed ASCC policy: per-core counter arrays plus BIP flags.
#[derive(Debug)]
pub struct OracleAscc {
    cfg: OracleAsccConfig,
    /// `ssl[core][counter]`.
    ssl: Vec<Vec<u16>>,
    /// `bip[core][counter]`.
    bip: Vec<Vec<bool>>,
    activations: u64,
    rng: SmallRng,
    gran_log2: u32,
}

impl OracleAscc {
    /// Builds the policy with every counter at `K - 1`.
    pub fn new(cfg: OracleAsccConfig) -> Self {
        let gran_log2 = cfg.sets_per_counter.trailing_zeros();
        let n = (cfg.sets >> gran_log2) as usize;
        OracleAscc {
            ssl: vec![vec![(cfg.ways - 1) << 3; n]; cfg.cores],
            bip: vec![vec![false; n]; cfg.cores],
            activations: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            gran_log2,
            cfg,
        }
    }

    fn idx(&self, set: u32) -> usize {
        (set >> self.gran_log2) as usize
    }

    /// §3.1: increment the covering counter on a miss, decrement on a hit
    /// (saturating at `2K-1` and 0); §3.2: leaving the `SSL >= K` region
    /// reverts the counter to MRU insertion.
    pub fn record_access(&mut self, core: usize, set: u32, hit: bool) {
        let idx = self.idx(set);
        let old = self.ssl[core][idx];
        let new = if hit {
            old.saturating_sub(ONE)
        } else {
            old.saturating_add(ONE).min(max_fixed(self.cfg.ways))
        };
        self.ssl[core][idx] = new;
        if new < k_fixed(self.cfg.ways) {
            self.bip[core][idx] = false;
        }
    }

    fn is_spiller(&self, core: usize, set: u32) -> bool {
        let v = self.ssl[core][self.idx(set)];
        if self.cfg.two_state {
            !is_receiver(v, self.cfg.ways)
        } else {
            is_spiller_3s(v, self.cfg.ways)
        }
    }

    /// §3.1's broadcast reply evaluation: every peer whose covering counter
    /// is below `K` is a candidate; ties on the minimum (or any candidate,
    /// for the random-selection ablation) break uniformly.
    fn find_receiver(&mut self, from: usize, set: u32) -> Option<usize> {
        let k = k_fixed(self.cfg.ways);
        let mut best = k;
        let mut candidates: Vec<usize> = Vec::with_capacity(self.cfg.cores);
        for i in 0..self.cfg.cores {
            if i == from {
                continue;
            }
            let v = self.ssl[i][self.idx(set)];
            if v >= k {
                continue;
            }
            match self.cfg.selection {
                OracleSelection::Random => candidates.push(i),
                OracleSelection::MinSsl => {
                    if v < best {
                        best = v;
                        candidates.clear();
                        candidates.push(i);
                    } else if v == best {
                        candidates.push(i);
                    }
                }
            }
        }
        match candidates.len() {
            0 => None,
            1 => Some(candidates[0]),
            n => Some(candidates[self.rng.gen_range(0..n)]),
        }
    }

    /// Demand-fill insertion depth: MRU normally; under an active capacity
    /// flag, the ε-test picks MRU with probability ε, else the deep
    /// position (LRU for BIP, LRU-1 for SABIP).
    pub fn demand_insert_pos(&mut self, core: usize, set: u32) -> crate::OraclePos {
        let idx = self.idx(set);
        if !self.bip[core][idx] {
            return crate::OraclePos::Mru;
        }
        let deep = match self.cfg.capacity {
            OracleCapacity::None => return crate::OraclePos::Mru,
            OracleCapacity::Bip => crate::OraclePos::Lru,
            OracleCapacity::Sabip => crate::OraclePos::LruMinus1,
        };
        if self.rng.gen::<f64>() < self.cfg.epsilon {
            crate::OraclePos::Mru
        } else {
            deep
        }
    }

    /// §3.1/§3.2: a spilling set looks for a receiver; finding none flags
    /// the capacity problem (switching the counter to deep insertion).
    pub fn spill_decision(&mut self, from: usize, set: u32) -> OracleSpill {
        if !self.is_spiller(from, set) {
            return OracleSpill::NotSpiller;
        }
        match self.find_receiver(from, set) {
            Some(to) => OracleSpill::Spill(to),
            None => {
                if self.cfg.capacity != OracleCapacity::None {
                    let idx = self.idx(set);
                    if !self.bip[from][idx] {
                        self.bip[from][idx] = true;
                        self.activations += 1;
                    }
                }
                OracleSpill::NoCandidate
            }
        }
    }

    fn snap(&self) -> PolicySnap {
        PolicySnap::Ascc {
            ssl: self.ssl.clone(),
            bip: self.bip.clone(),
            activations: self.activations,
        }
    }
}

/// One core's AVGCC state: a counter array at the current granularity.
#[derive(Debug)]
struct OracleAvgccCache {
    /// Granularity `D` = log2 sets per counter.
    d: u8,
    ssl: Vec<u16>,
    bip: Vec<bool>,
    accesses: u64,
    // QoS (§8) sampling state.
    misses_with: u64,
    sampled_misses: u64,
    last_cycle: u64,
    ratio_fixed: u16,
}

impl OracleAvgccCache {
    fn idx(&self, set: u32) -> usize {
        (set >> self.d) as usize
    }

    fn reinit(&mut self, sets: u32, ways: u16) {
        let n = (sets >> self.d) as usize;
        self.ssl = vec![(ways - 1) << 3; n];
        self.bip = vec![false; n];
    }

    /// §4: adjacent counters are "similar" when their values differ by at
    /// most 2 and their insertion modes agree.
    fn pair_similar(&self, idx: usize) -> bool {
        let j = idx ^ 1;
        if j >= self.ssl.len() {
            return false;
        }
        let (vi, vj) = (self.ssl[idx] as i32, self.ssl[j] as i32);
        (vi - vj).abs() <= 2 * ONE as i32 && self.bip[idx] == self.bip[j]
    }

    /// §4's epoch statistics, recomputed from scratch: `A` counts similar
    /// adjacent pairs, `B` counts below-`K` counters.
    fn recount_ab(&self, ways: u16) -> (u32, u32) {
        let n = self.ssl.len();
        let a = (0..n / 2).filter(|&m| self.pair_similar(2 * m)).count() as u32;
        let b = self.ssl.iter().filter(|&&v| v < k_fixed(ways)).count() as u32;
        (a, b)
    }
}

/// The transcribed AVGCC / QoS-AVGCC policy.
#[derive(Debug)]
pub struct OracleAvgcc {
    cfg: OracleAvgccConfig,
    caches: Vec<OracleAvgccCache>,
    d_min: u8,
    d_max: u8,
    granularity_changes: u64,
    rng: SmallRng,
}

impl OracleAvgcc {
    /// Builds the policy at the coarsest granularity (one counter per
    /// cache, §4).
    pub fn new(cfg: OracleAvgccConfig) -> Self {
        let d_max = cfg.sets.trailing_zeros() as u8;
        let d_min = cfg
            .max_counters
            .map(|mc| d_max - mc.trailing_zeros() as u8)
            .unwrap_or(0);
        let caches = (0..cfg.cores)
            .map(|_| {
                let mut c = OracleAvgccCache {
                    d: d_max,
                    ssl: Vec::new(),
                    bip: Vec::new(),
                    accesses: 0,
                    misses_with: 0,
                    sampled_misses: 0,
                    last_cycle: 0,
                    ratio_fixed: QOS_ONE,
                };
                c.reinit(cfg.sets, cfg.ways);
                c
            })
            .collect();
        OracleAvgcc {
            caches,
            d_min,
            d_max,
            granularity_changes: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// §4/§8: counter update on each access; under QoS a miss adds the
    /// fractional ratio instead of 1 and feeds the baseline-miss sampler.
    /// Every `epoch_accesses` accesses the granularity is re-evaluated.
    pub fn record_access(&mut self, core: usize, set: u32, hit: bool) {
        let ways = self.cfg.ways;
        let qos = self.cfg.qos;
        let c = &mut self.caches[core];
        let idx = c.idx(set);
        let old = c.ssl[idx];
        let k = k_fixed(ways);
        let new = if hit {
            old.saturating_sub(ONE)
        } else {
            if qos {
                c.misses_with += 1;
                if !c.bip[idx] && old >= k {
                    c.sampled_misses += 1;
                }
            }
            let inc = if qos { c.ratio_fixed } else { ONE };
            old.saturating_add(inc).min(max_fixed(ways))
        };
        c.ssl[idx] = new;
        if new < k && c.bip[idx] {
            c.bip[idx] = false;
        }
        c.accesses += 1;
        if c.accesses.is_multiple_of(self.cfg.epoch_accesses) {
            self.epoch(core);
        }
    }

    /// §4's granularity step: duplicate the counters ("halve the
    /// granularity") when more than half signal spare capacity (`B`),
    /// halve them when every adjacent pair is redundant (`A`). Refinement
    /// is checked first.
    fn epoch(&mut self, core: usize) {
        let (sets, ways) = (self.cfg.sets, self.cfg.ways);
        let c = &mut self.caches[core];
        let in_use = c.ssl.len() as u32;
        let (a, b) = c.recount_ab(ways);
        if b > in_use / 2 && c.d > self.d_min {
            c.d -= 1;
            c.reinit(sets, ways);
            self.granularity_changes += 1;
        } else if in_use >= 2 && a == in_use / 2 && c.d < self.d_max {
            c.d += 1;
            c.reinit(sets, ways);
            self.granularity_changes += 1;
        }
    }

    /// Demand-fill insertion depth: SABIP's ε-test whenever the covering
    /// counter is in capacity mode, plain MRU otherwise.
    pub fn demand_insert_pos(&mut self, core: usize, set: u32) -> crate::OraclePos {
        let c = &self.caches[core];
        if !c.bip[c.idx(set)] {
            return crate::OraclePos::Mru;
        }
        if self.rng.gen::<f64>() < self.cfg.epsilon {
            crate::OraclePos::Mru
        } else {
            crate::OraclePos::LruMinus1
        }
    }

    /// §4/§8 spill decision: minimum-SSL receiver among peers, each
    /// evaluated at its own granularity; under QoS a fully inhibited cache
    /// neither spills nor receives, and a below-1 ratio excludes a peer
    /// from receiving.
    pub fn spill_decision(&mut self, from: usize, set: u32) -> OracleSpill {
        if self.cfg.qos && self.caches[from].ratio_fixed == 0 {
            return OracleSpill::NotSpiller;
        }
        let ways = self.cfg.ways;
        {
            let c = &self.caches[from];
            if !is_spiller_3s(c.ssl[c.idx(set)], ways) {
                return OracleSpill::NotSpiller;
            }
        }
        let k = k_fixed(ways);
        let mut best = k;
        let mut candidates: Vec<usize> = Vec::with_capacity(self.cfg.cores);
        for (i, c) in self.caches.iter().enumerate() {
            if i == from {
                continue;
            }
            if self.cfg.qos && c.ratio_fixed < QOS_ONE {
                continue;
            }
            let v = c.ssl[c.idx(set)];
            if v < best {
                best = v;
                candidates.clear();
                candidates.push(i);
            } else if v < k && v == best {
                candidates.push(i);
            }
        }
        match candidates.len() {
            0 => {
                let c = &mut self.caches[from];
                let idx = c.idx(set);
                if !c.bip[idx] {
                    c.bip[idx] = true;
                }
                OracleSpill::NoCandidate
            }
            1 => OracleSpill::Spill(candidates[0]),
            n => OracleSpill::Spill(candidates[self.rng.gen_range(0..n)]),
        }
    }

    /// §8's per-core QoS epoch: once `qos_epoch_cycles` cycles elapsed,
    /// estimate the baseline's misses from the MRU-mode saturated sets
    /// (Eq. 1) and refresh the ratio.
    pub fn on_cycle(&mut self, core: usize, cycles: u64) {
        if !self.cfg.qos {
            return;
        }
        let sets = self.cfg.sets;
        let ways = self.cfg.ways;
        let c = &mut self.caches[core];
        if cycles.saturating_sub(c.last_cycle) < self.cfg.qos_epoch_cycles {
            return;
        }
        c.last_cycle = cycles;
        let spc = 1u64 << c.d;
        let k = k_fixed(ways);
        let sampled_counters = (0..c.ssl.len())
            .filter(|&i| !c.bip[i] && c.ssl[i] >= k)
            .count() as u64;
        let sampled_sets = sampled_counters * spc;
        let ratio = if sampled_sets == 0 || c.misses_with == 0 {
            1.0
        } else {
            let mbc = sets as f64 * (c.sampled_misses as f64 / sampled_sets as f64);
            mbc / mbc.max(c.misses_with as f64)
        };
        c.ratio_fixed = ((ratio * QOS_ONE as f64).round() as u16).min(QOS_ONE);
        c.misses_with = 0;
        c.sampled_misses = 0;
    }

    fn snap(&self) -> PolicySnap {
        PolicySnap::Avgcc {
            d: self.caches.iter().map(|c| c.d).collect(),
            ssl: self.caches.iter().map(|c| c.ssl.clone()).collect(),
            bip: self.caches.iter().map(|c| c.bip.clone()).collect(),
            ab: self
                .caches
                .iter()
                .map(|c| c.recount_ab(self.cfg.ways))
                .collect(),
            ratio_fixed: self.caches.iter().map(|c| c.ratio_fixed).collect(),
            granularity_changes: self.granularity_changes,
        }
    }
}

/// Either transcribed policy behind one dispatch surface for the system.
#[derive(Debug)]
pub enum OraclePolicy {
    /// ASCC or an ablation variant.
    Ascc(OracleAscc),
    /// AVGCC or QoS-AVGCC.
    Avgcc(OracleAvgcc),
}

impl OraclePolicy {
    /// Builds the configured policy.
    pub fn new(cfg: OraclePolicyConfig) -> Self {
        match cfg {
            OraclePolicyConfig::Ascc(c) => OraclePolicy::Ascc(OracleAscc::new(c)),
            OraclePolicyConfig::Avgcc(c) => OraclePolicy::Avgcc(OracleAvgcc::new(c)),
        }
    }

    /// Counter update for a local L2 access.
    pub fn record_access(&mut self, core: usize, set: u32, hit: bool) {
        match self {
            OraclePolicy::Ascc(p) => p.record_access(core, set, hit),
            OraclePolicy::Avgcc(p) => p.record_access(core, set, hit),
        }
    }

    /// Demand-fill insertion depth (may draw the ε-test).
    pub fn demand_insert_pos(&mut self, core: usize, set: u32) -> crate::OraclePos {
        match self {
            OraclePolicy::Ascc(p) => p.demand_insert_pos(core, set),
            OraclePolicy::Avgcc(p) => p.demand_insert_pos(core, set),
        }
    }

    /// Spill-fill insertion depth (both designs install spills at MRU).
    pub fn spill_insert_pos(&mut self) -> crate::OraclePos {
        crate::OraclePos::Mru
    }

    /// Last-copy eviction decision.
    pub fn spill_decision(&mut self, from: usize, set: u32) -> OracleSpill {
        match self {
            OraclePolicy::Ascc(p) => p.spill_decision(from, set),
            OraclePolicy::Avgcc(p) => p.spill_decision(from, set),
        }
    }

    /// Whether §3.2 swapping is on.
    pub fn swap_enabled(&self) -> bool {
        match self {
            OraclePolicy::Ascc(p) => p.cfg.swap,
            OraclePolicy::Avgcc(p) => p.cfg.swap,
        }
    }

    /// Clock notification (QoS epochs only).
    pub fn on_cycle(&mut self, core: usize, cycles: u64) {
        match self {
            OraclePolicy::Ascc(_) => {}
            OraclePolicy::Avgcc(p) => p.on_cycle(core, cycles),
        }
    }

    /// Policy-state dump for lockstep comparison.
    pub fn snap(&self) -> PolicySnap {
        match self {
            OraclePolicy::Ascc(p) => p.snap(),
            OraclePolicy::Avgcc(p) => p.snap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ascc_cfg() -> OracleAsccConfig {
        OracleAsccConfig {
            cores: 2,
            sets: 4,
            ways: 4,
            sets_per_counter: 1,
            selection: OracleSelection::MinSsl,
            capacity: OracleCapacity::Sabip,
            two_state: false,
            swap: true,
            epsilon: 1.0 / 32.0,
            seed: 0xA5CC,
        }
    }

    #[test]
    fn ssl_saturates_at_2k_minus_1() {
        let mut p = OracleAscc::new(ascc_cfg());
        for _ in 0..100 {
            p.record_access(0, 0, false);
        }
        assert_eq!(p.ssl[0][0], 7 << 3); // 2K-1 = 7 for K=4
        assert!(p.is_spiller(0, 0));
    }

    #[test]
    fn capacity_flag_set_and_reverted() {
        let mut p = OracleAscc::new(ascc_cfg());
        // Saturate both cores' set 0: no receiver anywhere.
        for _ in 0..100 {
            p.record_access(0, 0, false);
            p.record_access(1, 0, false);
        }
        assert_eq!(p.spill_decision(0, 0), OracleSpill::NoCandidate);
        assert!(p.bip[0][0]);
        // Hits bring SSL below K -> MRU insertion again.
        for _ in 0..100 {
            p.record_access(0, 0, true);
        }
        assert!(!p.bip[0][0]);
    }

    #[test]
    fn avgcc_starts_coarse_and_refines() {
        let mut p = OracleAvgcc::new(OracleAvgccConfig {
            cores: 2,
            sets: 8,
            ways: 2,
            epoch_accesses: 4,
            qos: false,
            qos_epoch_cycles: 1000,
            max_counters: None,
            epsilon: 1.0 / 32.0,
            swap: true,
            seed: 0xA26CC,
        });
        assert_eq!(p.caches[0].ssl.len(), 1);
        // Counters start at K-1 < K: B = 1 > in_use/2 = 0 -> refine at the
        // first epoch.
        for _ in 0..4 {
            p.record_access(0, 0, true);
        }
        assert_eq!(p.caches[0].ssl.len(), 2);
        assert_eq!(p.granularity_changes, 1);
    }
}
