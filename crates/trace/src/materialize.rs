//! Shared trace materialization: generate a workload once, replay it
//! everywhere.
//!
//! Every experiment sweep in this repository runs the *same* workloads —
//! `(bench, base, seed)` fully determines an access stream — under dozens of
//! `(policy × config)` combinations. Before this layer, every run re-drew
//! the identical sequence from the nested `Phased`/`Mixture`/`Zipf`
//! generator stack: a virtual call plus several RNG draws per access,
//! multiplied by the whole sweep. [`SharedTrace`] materializes a stream
//! lazily into flat SoA chunks ([`TraceChunk`]) and memoizes them behind
//! `Arc`s, so concurrent [`SweepPool`](../cmp_sim) jobs replay the same
//! buffers; the process-wide [`TraceArena`] keys shared traces by
//! `(bench, base, seed)` so generation cost is paid once per workload per
//! process, not once per run.
//!
//! Determinism is the whole point: a [`TraceCursor`] yields exactly the
//! access sequence the factory stream would have produced — access for
//! access, including the byte address, kind and stream id — which the
//! engine goldens and the `trace_equivalence` integration test pin.
//!
//! ## Chunk format
//!
//! A chunk holds [`CHUNK_ACCESSES`] accesses in structure-of-arrays form: a
//! packed `u64` byte-address array, a parallel `u16` stream-id array, and a
//! store-kind bitset (one bit per access) — ≈ 10.1 bytes per access, ~660
//! kB per chunk. Streams are infinite, so chunks are grown on demand; the
//! arena's byte budget (`ASCC_TRACE_ARENA_MB`, default 4096) caps total
//! materialized bytes, beyond which cursors fall back to private streaming
//! generation (identical output, no sharing).
//!
//! `ASCC_TRACE_CACHE=0` disables the arena entirely:
//! [`SpecBench::source`] then hands out plain streaming generators.

use crate::access::{Access, AccessStream};
use crate::spec::{CoreWorkload, CpuModel, SpecBench};
use crate::tenant::TenantScenario;
use cmp_cache::{AccessKind, Addr};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Accesses per materialized chunk (64 Ki): large enough that the
/// chunk-boundary bookkeeping vanishes, small enough that lazy growth
/// tracks the longest-running job without much overshoot.
pub const CHUNK_ACCESSES: usize = 1 << 16;

/// One materialized slab of accesses in structure-of-arrays layout.
#[derive(Clone, Debug)]
pub struct TraceChunk {
    /// Byte addresses, one per access.
    addrs: Box<[u64]>,
    /// Stream ids (PC surrogates), parallel to `addrs`.
    streams: Box<[u16]>,
    /// Store-kind bitset: bit `i % 64` of word `i / 64` is set for stores.
    stores: Box<[u64]>,
}

impl TraceChunk {
    /// Materializes the next `n` accesses of `stream`.
    fn from_stream(stream: &mut dyn AccessStream, n: usize) -> Self {
        let mut addrs = Vec::with_capacity(n);
        let mut streams = Vec::with_capacity(n);
        let mut stores = vec![0u64; n.div_ceil(64)];
        for i in 0..n {
            let a = stream.next_access();
            addrs.push(a.addr.raw());
            streams.push(a.stream);
            if a.kind.is_store() {
                stores[i / 64] |= 1 << (i % 64);
            }
        }
        TraceChunk {
            addrs: addrs.into_boxed_slice(),
            streams: streams.into_boxed_slice(),
            stores: stores.into_boxed_slice(),
        }
    }

    /// Number of accesses in the chunk.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` if the chunk holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Reconstructs access `i` from the SoA arrays.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Access {
        let kind = if self.stores[i / 64] >> (i % 64) & 1 == 1 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        Access {
            addr: Addr::new(self.addrs[i]),
            kind,
            stream: self.streams[i],
        }
    }

    /// Heap bytes a chunk of `n` accesses occupies (the budget unit).
    pub fn bytes_for(n: usize) -> u64 {
        (n * 8 + n * 2 + n.div_ceil(64) * 8) as u64
    }

    /// The raw byte addresses, one per access — the batched engine indexes
    /// these directly instead of reconstructing [`Access`] values.
    #[inline]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The raw stream ids, parallel to [`addrs`](TraceChunk::addrs).
    #[inline]
    pub fn streams(&self) -> &[u16] {
        &self.streams
    }

    /// The store-kind bitset words: bit `i % 64` of word `i / 64` is set
    /// when access `i` is a store.
    #[inline]
    pub fn store_words(&self) -> &[u64] {
        &self.stores
    }
}

/// Byte budget shared by every trace of an arena.
#[derive(Debug)]
struct ArenaBudget {
    max_bytes: u64,
    used: AtomicU64,
}

impl ArenaBudget {
    fn unbounded() -> Arc<Self> {
        Arc::new(ArenaBudget {
            max_bytes: u64::MAX,
            used: AtomicU64::new(0),
        })
    }

    /// Reserves `n` bytes; `false` if that would exceed the cap.
    fn reserve(&self, n: u64) -> bool {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(n) {
                Some(v) if v <= self.max_bytes => v,
                _ => return false,
            };
            match self
                .used
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Factory re-creating the underlying generator stream from scratch (pure
/// in its captured inputs, so every instantiation yields the same stream).
type StreamFactory = dyn Fn() -> Box<dyn AccessStream> + Send + Sync;

/// A lazily materialized, shareable access trace.
///
/// Thread-safe: any number of [`TraceCursor`]s can replay concurrently;
/// each chunk is generated exactly once (generation is serialized behind a
/// mutex because the source stream is sequential) and then served from an
/// `Arc` slice for the lifetime of the trace.
pub struct SharedTrace {
    factory: Box<StreamFactory>,
    chunk_accesses: usize,
    chunks: RwLock<Vec<Arc<TraceChunk>>>,
    /// The live generator stream (instantiated on first demand) — holds the
    /// position `chunks.len() * chunk_accesses` accesses into the stream.
    gen: Mutex<Option<Box<dyn AccessStream>>>,
    generated: AtomicUsize,
    capped: AtomicBool,
    budget: Arc<ArenaBudget>,
}

impl std::fmt::Debug for SharedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTrace")
            .field("chunk_accesses", &self.chunk_accesses)
            .field("chunks", &self.chunks_generated())
            .field("capped", &self.capped.load(Ordering::Relaxed))
            .finish()
    }
}

impl SharedTrace {
    /// A trace with the default chunk size and no byte cap.
    pub fn new(factory: impl Fn() -> Box<dyn AccessStream> + Send + Sync + 'static) -> Arc<Self> {
        Self::with_chunk_accesses(factory, CHUNK_ACCESSES)
    }

    /// A trace with an explicit chunk size (tests use small chunks to cross
    /// many boundaries cheaply) and no byte cap.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_accesses == 0`.
    pub fn with_chunk_accesses(
        factory: impl Fn() -> Box<dyn AccessStream> + Send + Sync + 'static,
        chunk_accesses: usize,
    ) -> Arc<Self> {
        Self::with_budget(Box::new(factory), chunk_accesses, ArenaBudget::unbounded())
    }

    fn with_budget(
        factory: Box<StreamFactory>,
        chunk_accesses: usize,
        budget: Arc<ArenaBudget>,
    ) -> Arc<Self> {
        assert!(chunk_accesses > 0, "chunks must hold at least one access");
        Arc::new(SharedTrace {
            factory,
            chunk_accesses,
            chunks: RwLock::new(Vec::new()),
            gen: Mutex::new(None),
            generated: AtomicUsize::new(0),
            capped: AtomicBool::new(false),
            budget,
        })
    }

    /// Accesses per chunk.
    pub fn chunk_accesses(&self) -> usize {
        self.chunk_accesses
    }

    /// Chunks materialized so far (each was generated exactly once).
    pub fn chunks_generated(&self) -> usize {
        self.generated.load(Ordering::Acquire)
    }

    /// Chunk `idx`, materializing up to it if needed. `None` once the byte
    /// budget is exhausted and `idx` lies beyond the materialized prefix —
    /// the caller then falls back to private streaming generation.
    pub fn chunk(&self, idx: usize) -> Option<Arc<TraceChunk>> {
        {
            let chunks = self.chunks.read().expect("unpoisoned");
            if let Some(c) = chunks.get(idx) {
                return Some(c.clone());
            }
        }
        self.materialize_through(idx)
    }

    /// Slow path: serialize on the generator and extend the chunk list
    /// until `idx` exists (or the budget says stop).
    fn materialize_through(&self, idx: usize) -> Option<Arc<TraceChunk>> {
        let mut gen = self.gen.lock().expect("unpoisoned");
        loop {
            // Another thread may have materialized it while we waited.
            {
                let chunks = self.chunks.read().expect("unpoisoned");
                if let Some(c) = chunks.get(idx) {
                    return Some(c.clone());
                }
            }
            if self.capped.load(Ordering::Relaxed) {
                return None;
            }
            if !self
                .budget
                .reserve(TraceChunk::bytes_for(self.chunk_accesses))
            {
                self.capped.store(true, Ordering::Relaxed);
                return None;
            }
            let stream = gen.get_or_insert_with(|| (self.factory)());
            let chunk = Arc::new(TraceChunk::from_stream(
                stream.as_mut(),
                self.chunk_accesses,
            ));
            self.chunks.write().expect("unpoisoned").push(chunk);
            self.generated.fetch_add(1, Ordering::Release);
        }
    }

    /// A replay cursor positioned at access 0.
    pub fn cursor(self: &Arc<Self>) -> TraceCursor {
        TraceCursor {
            trace: self.clone(),
            chunk: None,
            next_chunk: 0,
            pos: 0,
            fallback: None,
        }
    }
}

/// Batched replay over a [`SharedTrace`]: the hot path is a bounds check
/// and three indexed loads from the current chunk's SoA arrays — no
/// virtual dispatch, no RNG.
pub struct TraceCursor {
    trace: Arc<SharedTrace>,
    chunk: Option<Arc<TraceChunk>>,
    /// Index of the chunk after the current one.
    next_chunk: usize,
    pos: usize,
    /// Private regeneration once the arena budget is exhausted.
    fallback: Option<Box<dyn AccessStream>>,
}

impl std::fmt::Debug for TraceCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCursor")
            .field("next_chunk", &self.next_chunk)
            .field("pos", &self.pos)
            .field("fallback", &self.fallback.is_some())
            .finish()
    }
}

impl TraceCursor {
    /// Produces the next access (identical to what the factory stream
    /// would have produced at this position).
    #[inline]
    pub fn next_access(&mut self) -> Access {
        if let Some(c) = &self.chunk {
            if self.pos < c.len() {
                let a = c.get(self.pos);
                self.pos += 1;
                return a;
            }
        }
        self.next_access_cold()
    }

    /// Off-chunk path: fetch the next chunk, or regenerate privately once
    /// the arena refuses to grow.
    #[cold]
    fn next_access_cold(&mut self) -> Access {
        if let Some(fb) = &mut self.fallback {
            return fb.next_access();
        }
        match self.trace.chunk(self.next_chunk) {
            Some(c) => {
                self.chunk = Some(c);
                self.next_chunk += 1;
                self.pos = 0;
                self.next_access()
            }
            None => {
                // Budget exhausted: rebuild the stream from its factory and
                // discard the prefix this cursor already replayed. From here
                // on the cursor is an ordinary private generator.
                let consumed = self.consumed();
                let mut s = (self.trace.factory)();
                for _ in 0..consumed {
                    s.next_access();
                }
                let a = s.next_access();
                self.fallback = Some(s);
                a
            }
        }
    }

    /// The chunk this cursor currently points into plus the index of the
    /// next unconsumed access in it, materializing the next chunk when the
    /// current one is exhausted. Returns `None` once the arena budget has
    /// forced private regeneration (callers then fall back to per-access
    /// [`next_access`](TraceCursor::next_access), which installs the
    /// fallback stream) — so the batched engine can scan a whole chunk run
    /// without per-access dispatch, committing consumption afterwards via
    /// [`advance`](TraceCursor::advance).
    pub fn run_slice(&mut self) -> Option<(Arc<TraceChunk>, usize)> {
        if self.fallback.is_some() {
            return None;
        }
        if let Some(c) = &self.chunk {
            if self.pos < c.len() {
                return Some((c.clone(), self.pos));
            }
        }
        match self.trace.chunk(self.next_chunk) {
            Some(c) => {
                self.chunk = Some(c.clone());
                self.next_chunk += 1;
                self.pos = 0;
                Some((c, 0))
            }
            None => None,
        }
    }

    /// Commits `n` accesses consumed out of the slice handed back by
    /// [`run_slice`](TraceCursor::run_slice).
    ///
    /// # Panics
    ///
    /// Debug-panics when the commit runs past the current chunk.
    #[inline]
    pub fn advance(&mut self, n: usize) {
        debug_assert!(
            self.chunk.as_ref().is_some_and(|c| self.pos + n <= c.len()),
            "advance({n}) past the current chunk"
        );
        self.pos += n;
    }

    /// Accesses replayed so far (chunks are uniformly sized; `next_chunk`
    /// counts the current chunk when one is loaded).
    fn consumed(&self) -> u64 {
        match &self.chunk {
            Some(_) => {
                (self.next_chunk as u64 - 1) * self.trace.chunk_accesses as u64 + self.pos as u64
            }
            None => 0,
        }
    }

    /// Advances past `n` accesses without producing them.
    ///
    /// On the chunk path this is O(1) cursor arithmetic (plus materializing
    /// the target chunk); once the budget forces private regeneration it
    /// degrades to generating and discarding the skipped prefix — the same
    /// cost the fallback path already pays. Checkpoint restore uses this to
    /// reposition a fresh cursor at the snapshot's access index.
    pub fn fast_forward(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(fb) = &mut self.fallback {
            for _ in 0..n {
                fb.next_access();
            }
            return;
        }
        let target = self.consumed() + n;
        let ca = self.trace.chunk_accesses as u64;
        let (chunk_idx, pos) = ((target / ca) as usize, (target % ca) as usize);
        match self.trace.chunk(chunk_idx) {
            Some(c) => {
                self.chunk = Some(c);
                self.next_chunk = chunk_idx + 1;
                self.pos = pos;
            }
            None => {
                // Budget exhausted before the target chunk: regenerate
                // privately and discard the prefix, exactly as
                // `next_access_cold` would.
                let mut s = (self.trace.factory)();
                for _ in 0..target {
                    s.next_access();
                }
                self.fallback = Some(s);
            }
        }
    }
}

impl AccessStream for TraceCursor {
    fn next_access(&mut self) -> Access {
        TraceCursor::next_access(self)
    }
}

/// Identity of a shared trace in a [`TraceArena`]: every workload family
/// that routes through the arena gets a variant, so one process-wide map
/// memoizes them all without aliasing across families.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TraceKey {
    /// `SpecBench::workload(base, seed)`.
    Spec(SpecBench, u64, u64),
    /// `TenantScenario::stream(cores, core, seed)` — the core index is
    /// part of the key because tenant streams of one run share an address
    /// space instead of disjoint per-core regions.
    Tenant(TenantScenario, u16, u16, u64),
}

/// A process-wide memo of shared traces keyed by [`TraceKey`].
#[derive(Debug)]
pub struct TraceArena {
    traces: Mutex<HashMap<TraceKey, Arc<SharedTrace>>>,
    budget: Arc<ArenaBudget>,
}

impl TraceArena {
    /// An arena capped at `max_bytes` of materialized chunk data.
    pub fn with_max_bytes(max_bytes: u64) -> Self {
        TraceArena {
            traces: Mutex::new(HashMap::new()),
            budget: Arc::new(ArenaBudget {
                max_bytes,
                used: AtomicU64::new(0),
            }),
        }
    }

    /// The process-wide arena, capped by `ASCC_TRACE_ARENA_MB` (default
    /// 4096 MB; zero or unparsable values fall back to the default).
    pub fn global() -> &'static TraceArena {
        static GLOBAL: OnceLock<TraceArena> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mb = std::env::var("ASCC_TRACE_ARENA_MB")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(4096);
            TraceArena::with_max_bytes(mb << 20)
        })
    }

    /// The shared trace for `bench.workload(base, seed)`, creating it on
    /// first use. All callers with the same key observe the same chunks.
    pub fn shared(&self, bench: SpecBench, base: u64, seed: u64) -> Arc<SharedTrace> {
        self.shared_keyed(TraceKey::Spec(bench, base, seed), move || {
            bench.workload(base, seed).stream
        })
    }

    /// The shared trace for an arbitrary [`TraceKey`], creating it from
    /// `factory` on first use. The factory must be a pure function of the
    /// key — every instantiation has to yield the identical stream, or
    /// replay would diverge from generation.
    pub fn shared_keyed(
        &self,
        key: TraceKey,
        factory: impl Fn() -> Box<dyn AccessStream> + Send + Sync + 'static,
    ) -> Arc<SharedTrace> {
        let mut traces = self.traces.lock().expect("unpoisoned");
        traces
            .entry(key)
            .or_insert_with(|| {
                SharedTrace::with_budget(Box::new(factory), CHUNK_ACCESSES, self.budget.clone())
            })
            .clone()
    }

    /// Distinct workloads the arena currently holds.
    pub fn traces(&self) -> usize {
        self.traces.lock().expect("unpoisoned").len()
    }

    /// Materialized bytes across every trace of the arena.
    pub fn bytes(&self) -> u64 {
        self.budget.used.load(Ordering::Relaxed)
    }
}

/// `false` when `ASCC_TRACE_CACHE=0` asked for plain streaming generation
/// (cached after the first read: the choice is per-process).
pub fn trace_cache_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("ASCC_TRACE_CACHE").map_or(true, |v| v != "0"))
}

/// The access front-end of one simulated core: either a live generator
/// stream (arbitrary workloads, tests, `trace_tool`) or a batched cursor
/// over shared materialized chunks (the sweep fast path).
pub enum AccessFeed {
    /// One virtual call into a generator stack per access.
    Streaming(Box<dyn AccessStream>),
    /// Monomorphic chunk replay from a [`SharedTrace`].
    Replay(TraceCursor),
}

impl std::fmt::Debug for AccessFeed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessFeed::Streaming(_) => f.write_str("AccessFeed::Streaming"),
            AccessFeed::Replay(c) => f.debug_tuple("AccessFeed::Replay").field(c).finish(),
        }
    }
}

impl AccessFeed {
    /// Produces the next access.
    #[inline]
    pub fn next_access(&mut self) -> Access {
        match self {
            AccessFeed::Streaming(s) => s.next_access(),
            AccessFeed::Replay(c) => c.next_access(),
        }
    }

    /// The current chunk run for batched draining, or `None` for streaming
    /// generators and budget-degraded cursors (which only serve per-access
    /// [`next_access`](AccessFeed::next_access)). See
    /// [`TraceCursor::run_slice`].
    #[inline]
    pub fn run_slice(&mut self) -> Option<(Arc<TraceChunk>, usize)> {
        match self {
            AccessFeed::Streaming(_) => None,
            AccessFeed::Replay(c) => c.run_slice(),
        }
    }

    /// Commits `n` accesses consumed out of [`run_slice`](AccessFeed::run_slice).
    ///
    /// # Panics
    ///
    /// Panics on a streaming feed — there is no slice to commit against.
    #[inline]
    pub fn advance(&mut self, n: usize) {
        match self {
            AccessFeed::Streaming(_) => panic!("advance() without a run_slice()"),
            AccessFeed::Replay(c) => c.advance(n),
        }
    }

    /// Advances past `n` accesses without producing them.
    ///
    /// Streams are fully deterministic, so a restored run repositions a
    /// freshly built feed with this instead of serialising generator
    /// internals: replay cursors seek in O(1), streaming generators pay one
    /// generate-and-discard pass over the skipped prefix.
    pub fn fast_forward(&mut self, n: u64) {
        match self {
            AccessFeed::Streaming(s) => {
                for _ in 0..n {
                    s.next_access();
                }
            }
            AccessFeed::Replay(c) => c.fast_forward(n),
        }
    }
}

impl AccessStream for AccessFeed {
    fn next_access(&mut self) -> Access {
        AccessFeed::next_access(self)
    }
}

/// A per-core workload source: like [`CoreWorkload`], but its accesses come
/// through an [`AccessFeed`] so materialized replay and live generation are
/// interchangeable at the simulator front-end.
#[derive(Debug)]
pub struct CoreSource {
    /// Display label, e.g. `"473.astar"`.
    pub label: String,
    /// CPU-side timing parameters.
    pub cpu: CpuModel,
    /// The access front-end.
    pub feed: AccessFeed,
}

impl From<CoreWorkload> for CoreSource {
    fn from(w: CoreWorkload) -> Self {
        CoreSource {
            label: w.label,
            cpu: w.cpu,
            feed: AccessFeed::Streaming(w.stream),
        }
    }
}

impl SpecBench {
    /// The benchmark's workload as a [`CoreSource`]: replayed from the
    /// process-wide [`TraceArena`] when trace caching is enabled (the
    /// default), or a plain streaming generator under
    /// `ASCC_TRACE_CACHE=0`. Identical access sequence either way.
    pub fn source(self, base: u64, seed: u64) -> CoreSource {
        let w = |feed| CoreSource {
            label: self.name().to_string(),
            cpu: self.cpu_model(),
            feed,
        };
        if trace_cache_enabled() {
            let cursor = TraceArena::global().shared(self, base, seed).cursor();
            w(AccessFeed::Replay(cursor))
        } else {
            self.workload(base, seed).into()
        }
    }
}

impl TenantScenario {
    /// The scenario's per-core workload as a [`CoreSource`], replayed from
    /// the process-wide [`TraceArena`] when trace caching is enabled —
    /// same arena discipline as [`SpecBench::source`], keyed by
    /// `(scenario, cores, core, seed)` so sweeps over the policy zoo pay
    /// the (expensive, millions-of-keys) generation once per process.
    pub fn source(self, cores: usize, core: usize, seed: u64) -> CoreSource {
        let w = |feed| CoreSource {
            label: format!("tenant:{}.c{core}", self.name()),
            cpu: self.cpu_model(),
            feed,
        };
        if trace_cache_enabled() {
            let key = TraceKey::Tenant(self, cores as u16, core as u16, seed);
            let cursor = TraceArena::global()
                .shared_keyed(key, move || self.stream(cores, core, seed))
                .cursor();
            w(AccessFeed::Replay(cursor))
        } else {
            self.workload(cores, core, seed).into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ChaseStream, CyclicStream, Mixture, ZipfStream};

    /// A deliberately layered stream (zipf + chase + stores) so replay has
    /// to reproduce RNG-driven kinds, addresses and stream ids exactly.
    fn layered() -> Box<dyn AccessStream> {
        let z = ZipfStream::new(0, 128, 32, 0.9, 11, 0);
        let c = ChaseStream::new(1 << 24, 64, 32, 12, 1);
        Box::new(Mixture::new(
            vec![
                (0.6, Box::new(z) as Box<dyn AccessStream>),
                (0.4, Box::new(c)),
            ],
            0.25,
            13,
        ))
    }

    #[test]
    fn chunk_soa_round_trips_all_fields() {
        let mut s = layered();
        let mut reference = layered();
        let chunk = TraceChunk::from_stream(s.as_mut(), 1000);
        assert_eq!(chunk.len(), 1000);
        assert!(!chunk.is_empty());
        for i in 0..1000 {
            assert_eq!(chunk.get(i), reference.next_access(), "access {i}");
        }
    }

    #[test]
    fn fast_forward_matches_discarding_reads() {
        // Chunked path, including a seek landing exactly on a boundary.
        for skip in [0u64, 1, 63, 64, 65, 200, 640] {
            let trace = SharedTrace::with_chunk_accesses(layered, 64);
            let mut seeked = trace.cursor();
            seeked.fast_forward(skip);
            let mut walked = trace.cursor();
            for _ in 0..skip {
                walked.next_access();
            }
            for i in 0..300 {
                assert_eq!(
                    seeked.next_access(),
                    walked.next_access(),
                    "skip {skip}, access {i}"
                );
            }
        }
        // Mid-stream (not from zero), and again after the first seek.
        let trace = SharedTrace::with_chunk_accesses(layered, 64);
        let mut seeked = trace.cursor();
        let mut walked = trace.cursor();
        for _ in 0..37 {
            seeked.next_access();
            walked.next_access();
        }
        seeked.fast_forward(100);
        for _ in 0..100 {
            walked.next_access();
        }
        assert_eq!(seeked.next_access(), walked.next_access());
        // Budget-capped path: seeking past the cap falls back to private
        // regeneration and still lands on the right access.
        let capped = SharedTrace::with_budget(
            Box::new(layered),
            64,
            Arc::new(ArenaBudget {
                max_bytes: TraceChunk::bytes_for(64),
                used: AtomicU64::new(0),
            }),
        );
        let mut seeked = capped.cursor();
        seeked.fast_forward(500);
        let mut reference = layered();
        for _ in 0..500 {
            reference.next_access();
        }
        for i in 0..100 {
            assert_eq!(seeked.next_access(), reference.next_access(), "access {i}");
        }
        // Streaming feed wrapper.
        let mut feed = AccessFeed::Streaming(layered());
        feed.fast_forward(123);
        let mut reference = layered();
        for _ in 0..123 {
            reference.next_access();
        }
        assert_eq!(feed.next_access(), reference.next_access());
    }

    #[test]
    fn cursor_matches_streaming_across_chunk_boundaries() {
        let trace = SharedTrace::with_chunk_accesses(layered, 64);
        let mut cursor = trace.cursor();
        let mut stream = layered();
        for i in 0..1000 {
            assert_eq!(cursor.next_access(), stream.next_access(), "access {i}");
        }
        assert_eq!(trace.chunks_generated(), 1000_usize.div_ceil(64));
    }

    #[test]
    fn two_cursors_see_identical_sequences_without_regeneration() {
        let trace = SharedTrace::with_chunk_accesses(layered, 128);
        let a: Vec<Access> = {
            let mut c = trace.cursor();
            (0..500).map(|_| c.next_access()).collect()
        };
        let generated = trace.chunks_generated();
        let b: Vec<Access> = {
            let mut c = trace.cursor();
            (0..500).map(|_| c.next_access()).collect()
        };
        assert_eq!(a, b);
        assert_eq!(
            trace.chunks_generated(),
            generated,
            "second cursor must replay, not regenerate"
        );
    }

    #[test]
    fn budget_cap_falls_back_to_identical_streaming() {
        // Budget fits exactly two 64-access chunks; the rest must come from
        // the private fallback and still match streaming bit for bit.
        let budget = Arc::new(ArenaBudget {
            max_bytes: 2 * TraceChunk::bytes_for(64),
            used: AtomicU64::new(0),
        });
        let trace = SharedTrace::with_budget(Box::new(layered), 64, budget);
        let mut cursor = trace.cursor();
        let mut stream = layered();
        for i in 0..1000 {
            assert_eq!(cursor.next_access(), stream.next_access(), "access {i}");
        }
        assert_eq!(trace.chunks_generated(), 2, "cap allows exactly 2 chunks");
        assert!(trace.chunk(2).is_none(), "beyond-cap chunks refuse");
        // A fresh cursor starts over from the shared prefix, then falls
        // back again — still identical.
        let mut c2 = trace.cursor();
        let mut s2 = layered();
        for i in 0..300 {
            assert_eq!(c2.next_access(), s2.next_access(), "fresh cursor {i}");
        }
    }

    #[test]
    fn arena_memoizes_by_key() {
        let arena = TraceArena::with_max_bytes(u64::MAX);
        let a = arena.shared(SpecBench::Astar, 0, 42);
        let b = arena.shared(SpecBench::Astar, 0, 42);
        assert!(Arc::ptr_eq(&a, &b), "same key, same trace");
        let c = arena.shared(SpecBench::Astar, 0, 43);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different trace");
        let d = arena.shared(SpecBench::Mcf, 0, 42);
        assert!(!Arc::ptr_eq(&a, &d), "different bench, different trace");
        assert_eq!(arena.traces(), 3);
    }

    #[test]
    fn arena_keys_tenant_streams_per_core_without_aliasing() {
        let arena = TraceArena::with_max_bytes(u64::MAX);
        let mk = |scenario: TenantScenario, cores: usize, core: usize, seed: u64| {
            arena.shared_keyed(
                TraceKey::Tenant(scenario, cores as u16, core as u16, seed),
                move || scenario.stream(cores, core, seed),
            )
        };
        let a = mk(TenantScenario::Steady, 2, 0, 1);
        assert!(
            Arc::ptr_eq(&a, &mk(TenantScenario::Steady, 2, 0, 1)),
            "same key, same trace"
        );
        for (other, why) in [
            (mk(TenantScenario::Steady, 2, 1, 1), "different core"),
            (mk(TenantScenario::Steady, 4, 0, 1), "different width"),
            (mk(TenantScenario::Churn, 2, 0, 1), "different scenario"),
            (mk(TenantScenario::Steady, 2, 0, 2), "different seed"),
        ] {
            assert!(!Arc::ptr_eq(&a, &other), "{why} must not alias");
        }
        // Spec and tenant families never collide in the shared map.
        let spec = arena.shared(SpecBench::Astar, 0, 1);
        assert!(!Arc::ptr_eq(&a, &spec));
        assert_eq!(arena.traces(), 6);
    }

    #[test]
    fn tenant_source_replays_streaming_sequence() {
        // The arena-replayed tenant source must be access-for-access
        // identical to plain streaming generation.
        let (scenario, cores, core, seed) = (TenantScenario::Churn, 2, 1, 77);
        let arena = TraceArena::with_max_bytes(u64::MAX);
        let trace = arena.shared_keyed(
            TraceKey::Tenant(scenario, cores as u16, core as u16, seed),
            move || scenario.stream(cores, core, seed),
        );
        let mut cursor = trace.cursor();
        let mut stream = scenario.stream(cores, core, seed);
        for i in 0..(2 * CHUNK_ACCESSES + 100) {
            assert_eq!(cursor.next_access(), stream.next_access(), "access {i}");
        }
    }

    #[test]
    fn arena_accounts_bytes() {
        let arena = TraceArena::with_max_bytes(u64::MAX);
        let t = arena.shared(SpecBench::Namd, 0, 1);
        assert_eq!(arena.bytes(), 0);
        t.chunk(0).expect("within budget");
        assert_eq!(arena.bytes(), TraceChunk::bytes_for(CHUNK_ACCESSES));
    }

    #[test]
    fn concurrent_readers_generate_each_chunk_exactly_once() {
        // Satellite: hammer one trace from 8 threads; every chunk must be
        // generated once and all readers must observe identical slices.
        const CHUNK: usize = 256;
        const CHUNKS: usize = 16;
        let trace = SharedTrace::with_chunk_accesses(layered, CHUNK);
        let sequences: Vec<Vec<Access>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let trace = &trace;
                    s.spawn(move || {
                        let mut c = trace.cursor();
                        (0..CHUNK * CHUNKS).map(|_| c.next_access()).collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        assert_eq!(
            trace.chunks_generated(),
            CHUNKS,
            "each chunk generated exactly once despite 8 concurrent readers"
        );
        for (i, seq) in sequences.iter().enumerate() {
            assert_eq!(seq, &sequences[0], "thread {i} diverged");
        }
        // And the chunks really are the same allocations.
        for idx in 0..CHUNKS {
            let a = trace.chunk(idx).expect("materialized");
            let b = trace.chunk(idx).expect("materialized");
            assert!(Arc::ptr_eq(&a, &b));
        }
    }

    #[test]
    fn feed_and_source_wrap_streams() {
        let mut feed = AccessFeed::Streaming(Box::new(CyclicStream::words(0, 8, 5)));
        assert_eq!(feed.next_access().addr.raw(), 0);
        assert_eq!(feed.next_access().addr.raw(), 4);
        let w = SpecBench::Namd.workload(0, 3);
        let mut src: CoreSource = w.into();
        assert_eq!(src.label, "444.namd");
        assert_eq!(src.cpu, SpecBench::Namd.cpu_model());
        let _ = src.feed.next_access();
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_chunk_size_rejected() {
        let _ = SharedTrace::with_chunk_accesses(layered, 0);
    }
}
