//! The multiprogrammed workload mixes of the evaluation.
//!
//! The paper builds 14 two-application and 6 four-application mixes from the
//! 13 benchmarks of Table 3, covering combinations of capacity-hungry
//! applications and capacity providers (§5). The four-app mixes are named
//! explicitly in Table 1; the two-app list is not given (only `429+401`
//! appears, in Fig. 10), so we construct 14 mixes spanning the same four
//! categories — see DESIGN.md substitution #5.

use crate::spec::SpecBench;

/// A named multiprogrammed mix: one benchmark per core.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WorkloadMix {
    /// Paper-style name, e.g. `"445+401+444+456"`.
    pub name: String,
    /// The benchmark run by each core, in core order.
    pub benches: Vec<SpecBench>,
}

impl WorkloadMix {
    /// Builds a mix from benchmarks, deriving the paper-style name.
    pub fn new(benches: Vec<SpecBench>) -> Self {
        let name = benches
            .iter()
            .map(|b| b.id().to_string())
            .collect::<Vec<_>>()
            .join("+");
        WorkloadMix { name, benches }
    }

    /// Number of cores this mix occupies.
    pub fn cores(&self) -> usize {
        self.benches.len()
    }
}

impl std::fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

fn mix(ids: &[u16]) -> WorkloadMix {
    WorkloadMix::new(
        ids.iter()
            .map(|&id| SpecBench::from_id(id).unwrap_or_else(|| panic!("unknown SPEC id {id}")))
            .collect(),
    )
}

/// The six four-application mixes of Table 1 / Figs. 4, 5, 8, 9.
pub fn four_app_mixes() -> Vec<WorkloadMix> {
    vec![
        mix(&[445, 401, 444, 456]),
        mix(&[445, 444, 456, 471]),
        mix(&[433, 462, 450, 401]),
        mix(&[433, 471, 473, 482]),
        mix(&[458, 444, 401, 471]),
        mix(&[458, 444, 471, 462]),
    ]
}

/// Fourteen two-application mixes (Figs. 7, 10, 11), covering:
/// hungry+provider, hungry+hungry, provider+provider and streaming+hungry
/// combinations. `429+401` is the one mix the paper names (Fig. 10).
pub fn two_app_mixes() -> Vec<WorkloadMix> {
    vec![
        mix(&[429, 401]), // named in Fig. 10 (mcf + bzip2)
        mix(&[433, 473]), // streaming + hungry
        mix(&[482, 450]),
        mix(&[462, 471]),
        mix(&[445, 456]), // provider + provider
        mix(&[444, 473]), // provider + hungry
        mix(&[471, 444]), // hungry + provider (the quickstart pair)
        mix(&[470, 401]),
        mix(&[429, 444]),
        mix(&[473, 482]), // hungry + streaming-ish
        mix(&[458, 450]),
        mix(&[458, 471]), // provider + hungry
        mix(&[471, 473]), // hungry + hungry
        mix(&[433, 445]), // nobody benefits
    ]
}

/// Workload mixes for an arbitrary core count: the paper's own lists at 2
/// and 4 cores, and — for the core-scaling study — six synthetic `cores`-app
/// mixes built by cycling Table 3's 13 benchmarks from a different offset
/// per mix, so every width gets the same blend of hungry applications and
/// providers.
///
/// # Panics
///
/// Panics if `cores` is zero or above 64.
pub fn mixes_for(cores: usize) -> Vec<WorkloadMix> {
    assert!(cores > 0 && cores <= 64, "1..=64 cores supported");
    match cores {
        2 => two_app_mixes(),
        4 => four_app_mixes(),
        n => (0..6)
            .map(|i| {
                WorkloadMix::new(
                    (0..n)
                        .map(|j| SpecBench::ALL[(i * 5 + j) % SpecBench::ALL.len()])
                        .collect(),
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_app_mixes_match_table1() {
        let mixes = four_app_mixes();
        assert_eq!(mixes.len(), 6);
        assert_eq!(mixes[0].name, "445+401+444+456");
        assert_eq!(mixes[5].name, "458+444+471+462");
        assert!(mixes.iter().all(|m| m.cores() == 4));
    }

    #[test]
    fn two_app_mixes_count_and_shape() {
        let mixes = two_app_mixes();
        assert_eq!(mixes.len(), 14);
        assert!(mixes.iter().all(|m| m.cores() == 2));
        assert_eq!(mixes[0].name, "429+401", "the Fig. 10 mix comes first");
    }

    #[test]
    fn mixes_are_unique() {
        let mut names: Vec<String> = two_app_mixes().into_iter().map(|m| m.name).collect();
        names.extend(four_app_mixes().into_iter().map(|m| m.name));
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate mixes");
    }

    #[test]
    fn display_matches_name() {
        let m = mix(&[429, 401]);
        assert_eq!(m.to_string(), "429+401");
    }

    #[test]
    fn mixes_for_covers_every_width() {
        assert_eq!(mixes_for(2), two_app_mixes());
        assert_eq!(mixes_for(4), four_app_mixes());
        for cores in [1usize, 3, 8, 16, 32, 64] {
            let mixes = mixes_for(cores);
            assert_eq!(mixes.len(), 6, "{cores} cores");
            assert!(mixes.iter().all(|m| m.cores() == cores), "{cores} cores");
            let mut names: Vec<&str> = mixes.iter().map(|m| m.name.as_str()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), 6, "duplicate {cores}-core mixes");
        }
    }
}
