//! Zipf-distributed rank sampling.
//!
//! Skewed reuse is what gives real applications their smooth
//! "more-ways-help-a-bit" miss curves (Fig. 1's lower row) and their uneven
//! per-set pressure (Fig. 2). We sample ranks from a Zipf distribution with
//! a precomputed inverse-CDF table — exact, O(log n) per sample, and easy to
//! verify, which matters more here than constant-time sampling.

use rand::rngs::SmallRng;
use rand::Rng;

/// Zipf sampler over ranks `0..n` where rank `k` has probability
/// proportional to `1 / (k+1)^alpha`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "alpha must be a nonnegative finite number"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating error at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the sampler holds no ranks. Construction enforces
    /// `n > 0`, so this is always `false` for a live sampler — it exists
    /// to keep the conventional `len`/`is_empty` pair consistent.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "counts {counts:?}");
        }
    }

    #[test]
    fn rank_zero_dominates_with_high_alpha() {
        let z = Zipf::new(1024, 1.2);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut zero = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) == 0 {
                zero += 1;
            }
        }
        // With alpha=1.2 and n=1024, P(0) ~ 1/H ~ 0.17.
        assert!(zero > N / 10, "rank 0 sampled only {zero} times");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(17, 0.8);
        assert_eq!(z.len(), 17);
        assert!(!z.is_empty());
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn monotone_probabilities() {
        // Empirically check P(k) >= P(k+1) for a few ranks.
        let z = Zipf::new(8, 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for w in counts.windows(2) {
            assert!(
                w[0] as f64 >= w[1] as f64 * 0.8,
                "not roughly monotone: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn is_empty_agrees_with_len() {
        // The contract: is_empty() == (len() == 0), for every
        // constructible sampler — including the single-rank edge case,
        // which the old hardcoded `false` happened to get right only by
        // accident of the construction-time assert.
        for n in [1usize, 2, 17, 1024] {
            let z = Zipf::new(n, 0.9);
            assert_eq!(z.len(), n);
            assert_eq!(z.is_empty(), z.len() == 0);
            assert!(!z.is_empty());
        }
    }
}
