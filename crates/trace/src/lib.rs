//! # cmp-trace — synthetic workloads for the ASCC/AVGCC reproduction
//!
//! The paper evaluates on SPEC CPU2006 reference runs (multiprogrammed) and
//! SPLASH2/PARSEC (multithreaded). Neither binaries nor traces are
//! available here, so this crate provides *calibrated synthetic
//! equivalents*:
//!
//! * [`SpecBench`] — models of the 13 Table 3 benchmarks as weighted
//!   mixtures of archetypal reference streams, calibrated to Table 3's
//!   L2 MPKI/CPI and Fig. 1's way-sensitivity split;
//! * [`ParallelBench`] — shared-address-space models of eight
//!   SPLASH2/PARSEC benchmarks for the §6.3 study, with a tunable sharing
//!   degree ([`SharingSpec`]) so the compulsory-miss component of data
//!   sharing is a swept parameter;
//! * [`TenantScenario`] — multi-tenant sharded service traffic (Zipf
//!   popularity, tenant churn, scan storms, flash crowds, diurnal phase
//!   shifts) at millions-of-keys scale;
//! * [`two_app_mixes`] / [`four_app_mixes`] — the multiprogrammed mixes of
//!   the evaluation (Table 1 names the four-app ones);
//! * the generator toolbox ([`CyclicStream`], [`ZipfStream`],
//!   [`ChaseStream`], [`Mixture`], [`Phased`]) for building custom
//!   workloads;
//! * [`RecordedTrace`] — capture a stream once and replay it exactly
//!   (regression pinning, sharing problematic patterns, external traces);
//! * [`SharedTrace`] / [`TraceArena`] — materialize a workload lazily into
//!   shared SoA chunks so sweeps replay identical buffers instead of
//!   regenerating them per run (see [`materialize`](SharedTrace)).
//!
//! Spill-receive policies only observe the per-set hit/miss stream, so
//! matching per-set pressure statistics — not instruction semantics — is
//! what preserves the behaviour under study (DESIGN.md §2).
//!
//! ## Example
//!
//! ```
//! use cmp_trace::{AccessStream, SpecBench};
//!
//! let mut astar = SpecBench::Astar.workload(/*base=*/0, /*seed=*/42);
//! let a = astar.stream.next_access();
//! assert!(a.addr.raw() < 1 << 40);
//! assert!(astar.cpu.mem_fraction > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod gen;
mod materialize;
mod mixes;
mod parallel;
mod replay;
mod spec;
mod tenant;
mod zipf;

pub use access::{Access, AccessStream};
pub use gen::{ChaseStream, CyclicStream, Mixture, Phased, ZipfStream};
pub use materialize::{
    trace_cache_enabled, AccessFeed, CoreSource, SharedTrace, TraceArena, TraceChunk, TraceCursor,
    TraceKey, CHUNK_ACCESSES,
};
pub use mixes::{four_app_mixes, mixes_for, two_app_mixes, WorkloadMix};
pub use parallel::{ParallelBench, SharingSpec};
pub use replay::{RecordedTrace, ReplayStream, TraceError};
pub use spec::{CoreWorkload, CpuModel, SpecBench, LINE_BYTES};
pub use tenant::{tenant_seed, TenantParams, TenantScenario, TenantStream};
pub use zipf::Zipf;
