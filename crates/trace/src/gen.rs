//! Archetypal address-stream generators.
//!
//! Real applications are modelled as weighted mixtures of a few archetypes:
//!
//! * [`CyclicStream`] — sequential walk over a region, wrapping around.
//!   A region much larger than the LLC is *streaming* (milc, libquantum,
//!   lbm); a region slightly larger than the LLC share is a *thrashing
//!   loop* whose misses vanish once enough ways are available (the Fig. 1
//!   lower-row cliff); a small region is a *hot working set*.
//! * [`ZipfStream`] — skewed reuse over a region, giving the smooth
//!   more-capacity-helps curves and uneven per-set pressure.
//! * [`ChaseStream`] — uniform random lines (pointer chasing, mcf-like).
//! * [`Mixture`] — per-access weighted choice between components, also
//!   responsible for turning a fraction of accesses into stores.
//! * [`Phased`] — round-robin through sub-streams with dwell counts,
//!   modelling program phases.

use crate::access::{Access, AccessStream};
use crate::zipf::Zipf;
use cmp_cache::Addr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sequential walk over `region_bytes` starting at `base`, stepping
/// `step_bytes`, wrapping at the end.
#[derive(Clone, Debug)]
pub struct CyclicStream {
    base: u64,
    region_bytes: u64,
    step_bytes: u64,
    pos: u64,
    stream: u16,
}

impl CyclicStream {
    /// Creates a cyclic walker.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes` or `step_bytes` is zero.
    pub fn new(base: u64, region_bytes: u64, step_bytes: u64, stream: u16) -> Self {
        assert!(region_bytes > 0, "region must be nonempty");
        assert!(step_bytes > 0, "step must be nonzero");
        CyclicStream {
            base,
            region_bytes,
            step_bytes,
            pos: 0,
            stream,
        }
    }

    /// A word-granular (4-byte step) walker, the common case.
    pub fn words(base: u64, region_bytes: u64, stream: u16) -> Self {
        CyclicStream::new(base, region_bytes, 4, stream)
    }
}

impl AccessStream for CyclicStream {
    fn next_access(&mut self) -> Access {
        let a = Access::load(Addr::new(self.base + self.pos), self.stream);
        self.pos += self.step_bytes;
        if self.pos >= self.region_bytes {
            self.pos = 0;
        }
        a
    }
}

/// Zipf-skewed accesses over `lines` cache lines starting at `base`.
///
/// Ranks are scrambled with a bijective multiplicative hash so the hottest
/// lines scatter over the sets instead of clustering at the region start.
#[derive(Clone, Debug)]
pub struct ZipfStream {
    base_line: u64,
    lines: u64,
    line_bytes: u64,
    zipf: Zipf,
    rng: SmallRng,
    stream: u16,
}

impl ZipfStream {
    /// Creates a Zipf stream.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is not a nonzero power of two (required by the
    /// rank-scrambling bijection) or `line_bytes` is zero.
    pub fn new(base: u64, lines: u64, line_bytes: u64, alpha: f64, seed: u64, stream: u16) -> Self {
        assert!(
            lines > 0 && lines.is_power_of_two(),
            "lines must be a nonzero power of two"
        );
        assert!(line_bytes > 0, "line_bytes must be nonzero");
        ZipfStream {
            base_line: base / line_bytes,
            lines,
            line_bytes,
            zipf: Zipf::new(lines as usize, alpha),
            rng: SmallRng::seed_from_u64(seed),
            stream,
        }
    }
}

impl AccessStream for ZipfStream {
    fn next_access(&mut self) -> Access {
        let rank = self.zipf.sample(&mut self.rng) as u64;
        // Bijective scramble: odd multiplier modulo a power of two.
        let line = rank.wrapping_mul(0x9E37_79B1) & (self.lines - 1);
        Access::load(
            Addr::new((self.base_line + line) * self.line_bytes),
            self.stream,
        )
    }
}

/// Uniform random line accesses over a region: pointer chasing with no
/// locality beyond what the region size provides.
#[derive(Clone, Debug)]
pub struct ChaseStream {
    base_line: u64,
    lines: u64,
    line_bytes: u64,
    rng: SmallRng,
    stream: u16,
}

impl ChaseStream {
    /// Creates a chase stream over `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `line_bytes` is zero.
    pub fn new(base: u64, lines: u64, line_bytes: u64, seed: u64, stream: u16) -> Self {
        assert!(lines > 0, "lines must be nonzero");
        assert!(line_bytes > 0, "line_bytes must be nonzero");
        ChaseStream {
            base_line: base / line_bytes,
            lines,
            line_bytes,
            rng: SmallRng::seed_from_u64(seed),
            stream,
        }
    }
}

impl AccessStream for ChaseStream {
    fn next_access(&mut self) -> Access {
        let line = self.rng.gen_range(0..self.lines);
        Access::load(
            Addr::new((self.base_line + line) * self.line_bytes),
            self.stream,
        )
    }
}

/// Weighted per-access mixture of component streams, which also converts a
/// fraction of the emitted accesses into stores.
pub struct Mixture {
    components: Vec<(f64, Box<dyn AccessStream>)>, // (cumulative weight, stream)
    store_fraction: f64,
    rng: SmallRng,
}

impl std::fmt::Debug for Mixture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mixture")
            .field("components", &self.components.len())
            .field("store_fraction", &self.store_fraction)
            .finish()
    }
}

impl Mixture {
    /// Builds a mixture from `(weight, stream)` pairs; weights are
    /// normalised internally.
    ///
    /// # Panics
    ///
    /// Panics if no components are given, any weight is negative or the
    /// weights sum to zero, or `store_fraction` is outside `[0, 1]`.
    pub fn new(
        components: Vec<(f64, Box<dyn AccessStream>)>,
        store_fraction: f64,
        seed: u64,
    ) -> Self {
        assert!(!components.is_empty(), "mixture needs components");
        assert!(
            (0.0..=1.0).contains(&store_fraction),
            "store fraction must be in [0, 1]"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0.0 && components.iter().all(|(w, _)| *w >= 0.0),
            "weights must be nonnegative and sum to a positive value"
        );
        let mut acc = 0.0;
        let components = components
            .into_iter()
            .map(|(w, s)| {
                acc += w / total;
                (acc, s)
            })
            .collect();
        Mixture {
            components,
            store_fraction,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl AccessStream for Mixture {
    fn next_access(&mut self) -> Access {
        let u: f64 = self.rng.gen();
        let idx = self
            .components
            .partition_point(|(c, _)| *c < u)
            .min(self.components.len() - 1);
        let mut a = self.components[idx].1.next_access();
        if self.rng.gen::<f64>() < self.store_fraction {
            a.kind = cmp_cache::AccessKind::Store;
        }
        a
    }
}

/// Cycles through sub-streams, emitting `dwell` accesses from each before
/// moving on — a coarse model of program phases.
pub struct Phased {
    phases: Vec<(u64, Box<dyn AccessStream>)>,
    current: usize,
    emitted: u64,
}

impl std::fmt::Debug for Phased {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Phased")
            .field("phases", &self.phases.len())
            .field("current", &self.current)
            .finish()
    }
}

impl Phased {
    /// Builds a phased stream from `(dwell_accesses, stream)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if no phases are given or any dwell count is zero.
    pub fn new(phases: Vec<(u64, Box<dyn AccessStream>)>) -> Self {
        assert!(!phases.is_empty(), "phased stream needs phases");
        assert!(
            phases.iter().all(|(d, _)| *d > 0),
            "dwell counts must be nonzero"
        );
        Phased {
            phases,
            current: 0,
            emitted: 0,
        }
    }
}

impl AccessStream for Phased {
    fn next_access(&mut self) -> Access {
        let (dwell, stream) = &mut self.phases[self.current];
        let a = stream.next_access();
        self.emitted += 1;
        if self.emitted >= *dwell {
            self.emitted = 0;
            self.current = (self.current + 1) % self.phases.len();
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::AccessKind;

    #[test]
    fn cyclic_wraps() {
        let mut s = CyclicStream::new(1000, 12, 4, 0);
        let addrs: Vec<u64> = (0..5).map(|_| s.next_access().addr.raw()).collect();
        assert_eq!(addrs, vec![1000, 1004, 1008, 1000, 1004]);
    }

    #[test]
    fn cyclic_words_step_is_4() {
        let mut s = CyclicStream::words(0, 8, 3);
        assert_eq!(s.next_access().addr.raw(), 0);
        let a = s.next_access();
        assert_eq!(a.addr.raw(), 4);
        assert_eq!(a.stream, 3);
    }

    #[test]
    fn zipf_stays_in_region() {
        let mut s = ZipfStream::new(1 << 20, 64, 32, 0.9, 42, 1);
        for _ in 0..1000 {
            let a = s.next_access().addr.raw();
            assert!(a >= 1 << 20, "address {a:#x} below base");
            assert!(a < (1 << 20) + 64 * 32, "address {a:#x} beyond region");
            assert_eq!(a % 32, 0, "zipf addresses are line-aligned");
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let mut s = ZipfStream::new(0, 256, 32, 1.1, 7, 0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(s.next_access().addr.raw()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(
            max > 20_000 / 64,
            "hottest line only hit {max} times; distribution not skewed"
        );
    }

    #[test]
    fn chase_covers_region() {
        let mut s = ChaseStream::new(0, 16, 32, 9, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let a = s.next_access().addr.raw();
            assert!(a < 16 * 32);
            seen.insert(a / 32);
        }
        assert!(seen.len() > 12, "random chase should cover most lines");
    }

    #[test]
    fn mixture_respects_weights() {
        let a = CyclicStream::new(0, 4, 4, 0); // always addr 0 region
        let b = CyclicStream::new(1 << 30, 4, 4, 1);
        let mut m = Mixture::new(
            vec![
                (0.9, Box::new(a) as Box<dyn AccessStream>),
                (0.1, Box::new(b)),
            ],
            0.0,
            5,
        );
        let mut low = 0usize;
        for _ in 0..10_000 {
            if m.next_access().addr.raw() < 1 << 29 {
                low += 1;
            }
        }
        assert!((8_500..9_500).contains(&low), "low-component count {low}");
    }

    #[test]
    fn mixture_emits_stores() {
        let a = CyclicStream::new(0, 1024, 4, 0);
        let mut m = Mixture::new(vec![(1.0, Box::new(a) as Box<dyn AccessStream>)], 0.3, 5);
        let stores = (0..10_000)
            .filter(|_| m.next_access().kind == AccessKind::Store)
            .count();
        assert!((2_500..3_500).contains(&stores), "store count {stores}");
    }

    #[test]
    fn phased_switches() {
        let a = CyclicStream::new(0, 1 << 20, 4, 0);
        let b = CyclicStream::new(1 << 30, 1 << 20, 4, 1);
        let mut p = Phased::new(vec![
            (3, Box::new(a) as Box<dyn AccessStream>),
            (2, Box::new(b)),
        ]);
        let streams: Vec<u16> = (0..8).map(|_| p.next_access().stream).collect();
        assert_eq!(streams, vec![0, 0, 0, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn determinism_under_same_seed() {
        let mk = || {
            let z = ZipfStream::new(0, 128, 32, 0.8, 11, 0);
            let c = ChaseStream::new(1 << 24, 64, 32, 12, 1);
            Mixture::new(
                vec![
                    (0.5, Box::new(z) as Box<dyn AccessStream>),
                    (0.5, Box::new(c)),
                ],
                0.2,
                13,
            )
        };
        let mut m1 = mk();
        let mut m2 = mk();
        for _ in 0..500 {
            assert_eq!(m1.next_access(), m2.next_access());
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn zipf_rejects_non_pow2() {
        let _ = ZipfStream::new(0, 100, 32, 1.0, 0, 0);
    }
}
