//! Multithreaded shared-memory workload models (§6.3 sensitivity study).
//!
//! The paper runs SPLASH2 and PARSEC benchmarks with 4 threads on a reduced
//! 512 kB LLC. We model eight of them as per-thread mixtures over a *shared*
//! address space: a shared data region touched by every thread (read-mostly
//! or read-write), per-thread private regions, and for some workloads a
//! partitioned streaming sweep. Shared regions exercise MESI replication,
//! invalidation and genuine last-copy detection — the parts of the
//! coherence/spill machinery that multiprogrammed runs cannot reach.

use crate::access::AccessStream;
use crate::gen::{ChaseStream, CyclicStream, Mixture, ZipfStream};
use crate::spec::{CoreWorkload, CpuModel, LINE_BYTES};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// Base of the shared heap; every thread addresses the same region.
const SHARED_BASE: u64 = 0x1000_0000;
/// Base of the per-thread private regions.
const PRIVATE_BASE: u64 = 0x10_0000_0000;

/// The multithreaded benchmarks modelled for the §6.3 study.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParallelBench {
    /// SPLASH2 barnes: skewed shared octree + private bodies.
    Barnes,
    /// SPLASH2 fft: partitioned streaming over a shared array.
    Fft,
    /// SPLASH2 lu: blocked shared matrix, medium reuse.
    Lu,
    /// SPLASH2 ocean: large streaming grids, little reuse.
    Ocean,
    /// SPLASH2 radix: streaming keys + scattered histogram stores.
    Radix,
    /// PARSEC blackscholes: mostly private option data.
    Blackscholes,
    /// PARSEC canneal: pointer chasing over a large shared netlist.
    Canneal,
    /// PARSEC streamcluster: repeated sweeps over a shared block of points.
    Streamcluster,
}

impl ParallelBench {
    /// All modelled benchmarks.
    pub const ALL: [ParallelBench; 8] = [
        ParallelBench::Barnes,
        ParallelBench::Fft,
        ParallelBench::Lu,
        ParallelBench::Ocean,
        ParallelBench::Radix,
        ParallelBench::Blackscholes,
        ParallelBench::Canneal,
        ParallelBench::Streamcluster,
    ];

    /// Benchmark name as used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            ParallelBench::Barnes => "barnes",
            ParallelBench::Fft => "fft",
            ParallelBench::Lu => "lu",
            ParallelBench::Ocean => "ocean",
            ParallelBench::Radix => "radix",
            ParallelBench::Blackscholes => "blackscholes",
            ParallelBench::Canneal => "canneal",
            ParallelBench::Streamcluster => "streamcluster",
        }
    }

    /// Builds the workload of thread `tid` out of `threads`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= threads` or `threads == 0`.
    pub fn thread_workload(self, tid: usize, threads: usize, seed: u64) -> CoreWorkload {
        assert!(threads > 0 && tid < threads, "bad thread index");
        let tseed = seed ^ ((tid as u64 + 1) << 20);
        let private = PRIVATE_BASE + (tid as u64) * (1 << 32);
        let sid = |i: u16| i; // stream ids are per-thread
        let mk = |comps: Vec<(f64, Box<dyn AccessStream>)>,
                  cpu: CpuModel,
                  label: &str|
         -> CoreWorkload {
            CoreWorkload {
                label: format!("{label}.t{tid}"),
                cpu,
                stream: Box::new(Mixture::new(comps, cpu.store_fraction, tseed ^ 0xBEEF)),
            }
        };
        let cpu = |f: f64, b: f64, o: f64, st: f64| CpuModel {
            mem_fraction: f,
            base_cpi: b,
            overlap: o,
            store_fraction: st,
        };
        match self {
            ParallelBench::Barnes => mk(
                vec![
                    (
                        0.55,
                        Box::new(ZipfStream::new(
                            SHARED_BASE,
                            32768, // 1 MB shared octree
                            LINE_BYTES,
                            0.90,
                            tseed ^ 1,
                            sid(0),
                        )),
                    ),
                    (
                        0.45,
                        Box::new(CyclicStream::words(private, 48 * KB, sid(1))),
                    ),
                ],
                cpu(0.28, 1.0, 0.5, 0.15),
                "barnes",
            ),
            ParallelBench::Fft => {
                // Each thread sweeps its own partition of the shared array,
                // with occasional reads into other partitions (transpose).
                let part = 2 * MB / threads as u64;
                mk(
                    vec![
                        (
                            0.62,
                            Box::new(CyclicStream::words(
                                SHARED_BASE + tid as u64 * part,
                                part,
                                sid(0),
                            )),
                        ),
                        (
                            0.13,
                            Box::new(ChaseStream::new(
                                SHARED_BASE,
                                (2 * MB) / LINE_BYTES,
                                LINE_BYTES,
                                tseed ^ 2,
                                sid(1),
                            )),
                        ),
                        (
                            0.25,
                            Box::new(CyclicStream::words(private, 24 * KB, sid(2))),
                        ),
                    ],
                    cpu(0.30, 0.9, 0.35, 0.30),
                    "fft",
                )
            }
            ParallelBench::Lu => mk(
                vec![
                    (
                        0.50,
                        Box::new(ZipfStream::new(
                            SHARED_BASE,
                            16384, // 512 kB shared matrix blocks
                            LINE_BYTES,
                            0.70,
                            tseed ^ 3,
                            sid(0),
                        )),
                    ),
                    (
                        0.50,
                        Box::new(CyclicStream::words(private, 64 * KB, sid(1))),
                    ),
                ],
                cpu(0.30, 0.8, 0.5, 0.25),
                "lu",
            ),
            ParallelBench::Ocean => {
                let part = 8 * MB / threads as u64;
                mk(
                    vec![
                        (
                            0.70,
                            Box::new(CyclicStream::words(
                                SHARED_BASE + tid as u64 * part,
                                part,
                                sid(0),
                            )),
                        ),
                        (
                            0.30,
                            Box::new(CyclicStream::words(private, 16 * KB, sid(1))),
                        ),
                    ],
                    cpu(0.33, 0.85, 0.2, 0.35),
                    "ocean",
                )
            }
            ParallelBench::Radix => {
                let part = 4 * MB / threads as u64;
                mk(
                    vec![
                        (
                            0.45,
                            Box::new(CyclicStream::words(
                                SHARED_BASE + tid as u64 * part,
                                part,
                                sid(0),
                            )),
                        ),
                        (
                            0.20,
                            Box::new(ChaseStream::new(
                                SHARED_BASE + 32 * MB,
                                MB / LINE_BYTES,
                                LINE_BYTES,
                                tseed ^ 4,
                                sid(1),
                            )),
                        ),
                        (
                            0.35,
                            Box::new(CyclicStream::words(private, 16 * KB, sid(2))),
                        ),
                    ],
                    cpu(0.30, 0.9, 0.3, 0.40),
                    "radix",
                )
            }
            ParallelBench::Blackscholes => mk(
                vec![
                    (
                        0.85,
                        Box::new(CyclicStream::words(private, 96 * KB, sid(0))),
                    ),
                    (
                        0.15,
                        Box::new(ZipfStream::new(
                            SHARED_BASE,
                            8192, // 256 kB shared parameters
                            LINE_BYTES,
                            1.10,
                            tseed ^ 5,
                            sid(1),
                        )),
                    ),
                ],
                cpu(0.25, 0.7, 0.55, 0.15),
                "blackscholes",
            ),
            ParallelBench::Canneal => mk(
                vec![
                    (
                        0.40,
                        Box::new(ChaseStream::new(
                            SHARED_BASE,
                            (16 * MB) / LINE_BYTES,
                            LINE_BYTES,
                            tseed ^ 6,
                            sid(0),
                        )),
                    ),
                    (
                        0.60,
                        Box::new(CyclicStream::words(private, 32 * KB, sid(1))),
                    ),
                ],
                cpu(0.30, 0.9, 0.55, 0.20),
                "canneal",
            ),
            ParallelBench::Streamcluster => mk(
                vec![
                    (
                        0.65,
                        Box::new(CyclicStream::words(SHARED_BASE, 1536 * KB, sid(0))),
                    ),
                    (
                        0.35,
                        Box::new(CyclicStream::words(private, 16 * KB, sid(1))),
                    ),
                ],
                cpu(0.32, 0.8, 0.3, 0.10),
                "streamcluster",
            ),
        }
    }

    /// Builds all `threads` workloads of this benchmark.
    pub fn workloads(self, threads: usize, seed: u64) -> Vec<CoreWorkload> {
        (0..threads)
            .map(|t| self.thread_workload(t, threads, seed))
            .collect()
    }
}

impl std::fmt::Display for ParallelBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_models_build_for_four_threads() {
        for b in ParallelBench::ALL {
            let ws = b.workloads(4, 99);
            assert_eq!(ws.len(), 4);
            for w in &ws {
                assert!(w.label.starts_with(b.name()));
            }
        }
    }

    #[test]
    fn threads_share_addresses() {
        // Two threads of streamcluster must touch overlapping shared lines.
        let mut w0 = ParallelBench::Streamcluster.thread_workload(0, 4, 1);
        let mut w1 = ParallelBench::Streamcluster.thread_workload(1, 4, 1);
        let lines = |w: &mut CoreWorkload| -> HashSet<u64> {
            (0..20_000)
                .map(|_| w.stream.next_access().addr.raw() / LINE_BYTES)
                .collect()
        };
        let l0 = lines(&mut w0);
        let l1 = lines(&mut w1);
        assert!(
            l0.intersection(&l1).count() > 100,
            "threads never share lines"
        );
    }

    #[test]
    fn private_regions_are_disjoint() {
        let mut w0 = ParallelBench::Blackscholes.thread_workload(0, 2, 1);
        let mut w1 = ParallelBench::Blackscholes.thread_workload(1, 2, 1);
        let privates = |w: &mut CoreWorkload| -> HashSet<u64> {
            (0..20_000)
                .map(|_| w.stream.next_access().addr.raw())
                .filter(|&a| a >= PRIVATE_BASE)
                .map(|a| a / LINE_BYTES)
                .collect()
        };
        let p0 = privates(&mut w0);
        let p1 = privates(&mut w1);
        assert!(!p0.is_empty() && !p1.is_empty());
        assert_eq!(p0.intersection(&p1).count(), 0);
    }

    #[test]
    fn partitioned_benches_split_the_shared_sweep() {
        let mut w0 = ParallelBench::Fft.thread_workload(0, 4, 1);
        let mut addrs = HashSet::new();
        for _ in 0..10_000 {
            let a = w0.stream.next_access().addr.raw();
            if (SHARED_BASE..SHARED_BASE + 2 * MB).contains(&a) {
                addrs.insert(a);
            }
        }
        // Thread 0's sweep stays in the first partition except for the
        // transpose chase, which can reach anywhere in the shared array.
        let part = 2 * MB / 4;
        let in_own = addrs.iter().filter(|&&a| a < SHARED_BASE + part).count();
        assert!(
            in_own * 2 > addrs.len(),
            "most shared touches in own partition"
        );
    }

    #[test]
    #[should_panic(expected = "bad thread index")]
    fn bad_tid_panics() {
        let _ = ParallelBench::Lu.thread_workload(4, 4, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ParallelBench::Canneal.to_string(), "canneal");
    }
}
