//! Multithreaded shared-memory workload models (§6.3 sensitivity study).
//!
//! The paper runs SPLASH2 and PARSEC benchmarks with 4 threads on a reduced
//! 512 kB LLC. We model eight of them as per-thread mixtures over a *shared*
//! address space: a shared data region touched by every thread (read-mostly
//! or read-write), per-thread private regions, and for some workloads a
//! partitioned streaming sweep. Shared regions exercise MESI replication,
//! invalidation and genuine last-copy detection — the parts of the
//! coherence/spill machinery that multiprogrammed runs cannot reach.

use crate::access::AccessStream;
use crate::gen::{ChaseStream, CyclicStream, Mixture, ZipfStream};
use crate::spec::{CoreWorkload, CpuModel, LINE_BYTES};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// Base of the shared heap; every thread addresses the same region.
const SHARED_BASE: u64 = 0x1000_0000;
/// Base of the per-thread private regions.
const PRIVATE_BASE: u64 = 0x10_0000_0000;
/// Base of the extra shared pool the tunable sharing degree redirects
/// into; placed well above every model's shared heap so redirected traffic
/// never aliases a benchmark's own regions.
const SHARING_POOL_BASE: u64 = 0x4000_0000;
/// Lines in the sharing pool: 2 MB, several times any private LLC share in
/// the §6.3 configuration, so redirected accesses carry a capacity/
/// compulsory miss component that grows with the redirected fraction.
const SHARING_POOL_LINES: u64 = (2 * MB) / LINE_BYTES;

/// `(offset, bytes)` of thread `tid`'s slice of a `total`-byte partitioned
/// sweep. Boundaries are rounded *down* to `LINE_BYTES` so adjacent
/// threads never share a boundary line (no accidental false sharing in the
/// "partitioned streaming" model), and the last thread absorbs the
/// division remainder so the slices cover `[0, total)` exactly — for
/// non-power-of-two thread counts the plain `total / threads` used to
/// leave a tail of the array never swept by anyone.
///
/// # Panics
///
/// Panics if `threads == 0`, `tid >= threads`, or the per-thread slice
/// would round down to zero lines.
fn partition(total: u64, tid: usize, threads: usize) -> (u64, u64) {
    assert!(threads > 0 && tid < threads, "bad thread index");
    let part = (total / threads as u64) & !(LINE_BYTES - 1);
    assert!(part > 0, "partition smaller than a cache line");
    let offset = tid as u64 * part;
    let bytes = if tid + 1 == threads {
        total - offset
    } else {
        part
    };
    (offset, bytes)
}

/// Tunable sharing degree for the [`ParallelBench`] models: `degree` of
/// each thread's accesses are redirected into a common 2 MB Zipf-skewed
/// pool every thread addresses identically, and `write_fraction` of those
/// redirected accesses are stores. Read-mostly sharing (small
/// `write_fraction`) exercises replication; read-write sharing drives
/// invalidations and coherence misses on top of the pool's capacity
/// misses. With `degree == 0.0` the base model's access *addresses* are
/// unchanged (the selection draw still advances the thread RNG, so use
/// [`ParallelBench::thread_workload`] when no sharing knob is wanted).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SharingSpec {
    /// Fraction of each thread's accesses redirected into the shared pool
    /// (`0.0..=1.0`).
    pub degree: f64,
    /// Fraction of redirected accesses that are stores (`0.0..=1.0`).
    pub write_fraction: f64,
}

impl SharingSpec {
    /// Read-mostly sharing at `degree` (5% of redirected accesses store).
    pub fn read_mostly(degree: f64) -> Self {
        SharingSpec {
            degree,
            write_fraction: 0.05,
        }
    }

    /// Read-write sharing at `degree` (35% of redirected accesses store).
    pub fn read_write(degree: f64) -> Self {
        SharingSpec {
            degree,
            write_fraction: 0.35,
        }
    }
}

/// The multithreaded benchmarks modelled for the §6.3 study.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParallelBench {
    /// SPLASH2 barnes: skewed shared octree + private bodies.
    Barnes,
    /// SPLASH2 fft: partitioned streaming over a shared array.
    Fft,
    /// SPLASH2 lu: blocked shared matrix, medium reuse.
    Lu,
    /// SPLASH2 ocean: large streaming grids, little reuse.
    Ocean,
    /// SPLASH2 radix: streaming keys + scattered histogram stores.
    Radix,
    /// PARSEC blackscholes: mostly private option data.
    Blackscholes,
    /// PARSEC canneal: pointer chasing over a large shared netlist.
    Canneal,
    /// PARSEC streamcluster: repeated sweeps over a shared block of points.
    Streamcluster,
}

impl ParallelBench {
    /// All modelled benchmarks.
    pub const ALL: [ParallelBench; 8] = [
        ParallelBench::Barnes,
        ParallelBench::Fft,
        ParallelBench::Lu,
        ParallelBench::Ocean,
        ParallelBench::Radix,
        ParallelBench::Blackscholes,
        ParallelBench::Canneal,
        ParallelBench::Streamcluster,
    ];

    /// Benchmark name as used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            ParallelBench::Barnes => "barnes",
            ParallelBench::Fft => "fft",
            ParallelBench::Lu => "lu",
            ParallelBench::Ocean => "ocean",
            ParallelBench::Radix => "radix",
            ParallelBench::Blackscholes => "blackscholes",
            ParallelBench::Canneal => "canneal",
            ParallelBench::Streamcluster => "streamcluster",
        }
    }

    /// Builds the workload of thread `tid` out of `threads`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= threads` or `threads == 0`.
    pub fn thread_workload(self, tid: usize, threads: usize, seed: u64) -> CoreWorkload {
        assert!(threads > 0 && tid < threads, "bad thread index");
        let tseed = seed ^ ((tid as u64 + 1) << 20);
        let private = PRIVATE_BASE + (tid as u64) * (1 << 32);
        let sid = |i: u16| i; // stream ids are per-thread
        let mk = |comps: Vec<(f64, Box<dyn AccessStream>)>,
                  cpu: CpuModel,
                  label: &str|
         -> CoreWorkload {
            CoreWorkload {
                label: format!("{label}.t{tid}"),
                cpu,
                stream: Box::new(Mixture::new(comps, cpu.store_fraction, tseed ^ 0xBEEF)),
            }
        };
        let cpu = |f: f64, b: f64, o: f64, st: f64| CpuModel {
            mem_fraction: f,
            base_cpi: b,
            overlap: o,
            store_fraction: st,
        };
        match self {
            ParallelBench::Barnes => mk(
                vec![
                    (
                        0.55,
                        Box::new(ZipfStream::new(
                            SHARED_BASE,
                            32768, // 1 MB shared octree
                            LINE_BYTES,
                            0.90,
                            tseed ^ 1,
                            sid(0),
                        )),
                    ),
                    (
                        0.45,
                        Box::new(CyclicStream::words(private, 48 * KB, sid(1))),
                    ),
                ],
                cpu(0.28, 1.0, 0.5, 0.15),
                "barnes",
            ),
            ParallelBench::Fft => {
                // Each thread sweeps its own partition of the shared array,
                // with occasional reads into other partitions (transpose).
                let (off, bytes) = partition(2 * MB, tid, threads);
                mk(
                    vec![
                        (
                            0.62,
                            Box::new(CyclicStream::words(SHARED_BASE + off, bytes, sid(0))),
                        ),
                        (
                            0.13,
                            Box::new(ChaseStream::new(
                                SHARED_BASE,
                                (2 * MB) / LINE_BYTES,
                                LINE_BYTES,
                                tseed ^ 2,
                                sid(1),
                            )),
                        ),
                        (
                            0.25,
                            Box::new(CyclicStream::words(private, 24 * KB, sid(2))),
                        ),
                    ],
                    cpu(0.30, 0.9, 0.35, 0.30),
                    "fft",
                )
            }
            ParallelBench::Lu => mk(
                vec![
                    (
                        0.50,
                        Box::new(ZipfStream::new(
                            SHARED_BASE,
                            16384, // 512 kB shared matrix blocks
                            LINE_BYTES,
                            0.70,
                            tseed ^ 3,
                            sid(0),
                        )),
                    ),
                    (
                        0.50,
                        Box::new(CyclicStream::words(private, 64 * KB, sid(1))),
                    ),
                ],
                cpu(0.30, 0.8, 0.5, 0.25),
                "lu",
            ),
            ParallelBench::Ocean => {
                let (off, bytes) = partition(8 * MB, tid, threads);
                mk(
                    vec![
                        (
                            0.70,
                            Box::new(CyclicStream::words(SHARED_BASE + off, bytes, sid(0))),
                        ),
                        (
                            0.30,
                            Box::new(CyclicStream::words(private, 16 * KB, sid(1))),
                        ),
                    ],
                    cpu(0.33, 0.85, 0.2, 0.35),
                    "ocean",
                )
            }
            ParallelBench::Radix => {
                let (off, bytes) = partition(4 * MB, tid, threads);
                mk(
                    vec![
                        (
                            0.45,
                            Box::new(CyclicStream::words(SHARED_BASE + off, bytes, sid(0))),
                        ),
                        (
                            0.20,
                            Box::new(ChaseStream::new(
                                SHARED_BASE + 32 * MB,
                                MB / LINE_BYTES,
                                LINE_BYTES,
                                tseed ^ 4,
                                sid(1),
                            )),
                        ),
                        (
                            0.35,
                            Box::new(CyclicStream::words(private, 16 * KB, sid(2))),
                        ),
                    ],
                    cpu(0.30, 0.9, 0.3, 0.40),
                    "radix",
                )
            }
            ParallelBench::Blackscholes => mk(
                vec![
                    (
                        0.85,
                        Box::new(CyclicStream::words(private, 96 * KB, sid(0))),
                    ),
                    (
                        0.15,
                        Box::new(ZipfStream::new(
                            SHARED_BASE,
                            8192, // 256 kB shared parameters
                            LINE_BYTES,
                            1.10,
                            tseed ^ 5,
                            sid(1),
                        )),
                    ),
                ],
                cpu(0.25, 0.7, 0.55, 0.15),
                "blackscholes",
            ),
            ParallelBench::Canneal => mk(
                vec![
                    (
                        0.40,
                        Box::new(ChaseStream::new(
                            SHARED_BASE,
                            (16 * MB) / LINE_BYTES,
                            LINE_BYTES,
                            tseed ^ 6,
                            sid(0),
                        )),
                    ),
                    (
                        0.60,
                        Box::new(CyclicStream::words(private, 32 * KB, sid(1))),
                    ),
                ],
                cpu(0.30, 0.9, 0.55, 0.20),
                "canneal",
            ),
            ParallelBench::Streamcluster => mk(
                vec![
                    (
                        0.65,
                        Box::new(CyclicStream::words(SHARED_BASE, 1536 * KB, sid(0))),
                    ),
                    (
                        0.35,
                        Box::new(CyclicStream::words(private, 16 * KB, sid(1))),
                    ),
                ],
                cpu(0.32, 0.8, 0.3, 0.10),
                "streamcluster",
            ),
        }
    }

    /// Builds all `threads` workloads of this benchmark.
    pub fn workloads(self, threads: usize, seed: u64) -> Vec<CoreWorkload> {
        (0..threads)
            .map(|t| self.thread_workload(t, threads, seed))
            .collect()
    }

    /// [`thread_workload`](ParallelBench::thread_workload) with a tunable
    /// sharing degree: `spec.degree` of the thread's accesses are
    /// redirected into the common [`SharingSpec`] pool (same lines for
    /// every thread), `spec.write_fraction` of which are stores. The base
    /// model is wrapped unchanged, so the redirected fraction — not the
    /// model itself — is the swept parameter.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= threads`, `threads == 0`, or either `spec` field
    /// is outside `[0, 1]`.
    pub fn thread_workload_sharing(
        self,
        tid: usize,
        threads: usize,
        seed: u64,
        spec: SharingSpec,
    ) -> CoreWorkload {
        assert!(
            (0.0..=1.0).contains(&spec.degree),
            "sharing degree must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&spec.write_fraction),
            "write fraction must be in [0, 1]"
        );
        let base = self.thread_workload(tid, threads, seed);
        let tseed = seed ^ ((tid as u64 + 1) << 20);
        // Every thread draws from the same pool with the same rank
        // scramble, so popular lines coincide across threads; only the
        // per-thread sample sequence differs.
        let pool = ZipfStream::new(
            SHARING_POOL_BASE,
            SHARING_POOL_LINES,
            LINE_BYTES,
            0.60,
            tseed ^ 0x51,
            8, // stream id outside the base models' per-thread ids
        );
        // Inner mixture owns the redirected accesses' store fraction; the
        // outer one only selects and never rewrites kinds (fraction 0), so
        // base-stream stores pass through untouched.
        let shared = Mixture::new(
            vec![(1.0, Box::new(pool) as Box<dyn AccessStream>)],
            spec.write_fraction,
            tseed ^ 0x52,
        );
        CoreWorkload {
            label: format!("{}.d{:.2}", base.label, spec.degree),
            cpu: base.cpu,
            stream: Box::new(Mixture::new(
                vec![
                    (1.0 - spec.degree, base.stream),
                    (spec.degree, Box::new(shared)),
                ],
                0.0,
                tseed ^ 0x53,
            )),
        }
    }

    /// Builds all `threads` sharing-degree workloads of this benchmark.
    pub fn workloads_sharing(
        self,
        threads: usize,
        seed: u64,
        spec: SharingSpec,
    ) -> Vec<CoreWorkload> {
        (0..threads)
            .map(|t| self.thread_workload_sharing(t, threads, seed, spec))
            .collect()
    }
}

impl std::fmt::Display for ParallelBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_models_build_for_four_threads() {
        for b in ParallelBench::ALL {
            let ws = b.workloads(4, 99);
            assert_eq!(ws.len(), 4);
            for w in &ws {
                assert!(w.label.starts_with(b.name()));
            }
        }
    }

    #[test]
    fn threads_share_addresses() {
        // Two threads of streamcluster must touch overlapping shared lines.
        let mut w0 = ParallelBench::Streamcluster.thread_workload(0, 4, 1);
        let mut w1 = ParallelBench::Streamcluster.thread_workload(1, 4, 1);
        let lines = |w: &mut CoreWorkload| -> HashSet<u64> {
            (0..20_000)
                .map(|_| w.stream.next_access().addr.raw() / LINE_BYTES)
                .collect()
        };
        let l0 = lines(&mut w0);
        let l1 = lines(&mut w1);
        assert!(
            l0.intersection(&l1).count() > 100,
            "threads never share lines"
        );
    }

    #[test]
    fn private_regions_are_disjoint() {
        let mut w0 = ParallelBench::Blackscholes.thread_workload(0, 2, 1);
        let mut w1 = ParallelBench::Blackscholes.thread_workload(1, 2, 1);
        let privates = |w: &mut CoreWorkload| -> HashSet<u64> {
            (0..20_000)
                .map(|_| w.stream.next_access().addr.raw())
                .filter(|&a| a >= PRIVATE_BASE)
                .map(|a| a / LINE_BYTES)
                .collect()
        };
        let p0 = privates(&mut w0);
        let p1 = privates(&mut w1);
        assert!(!p0.is_empty() && !p1.is_empty());
        assert_eq!(p0.intersection(&p1).count(), 0);
    }

    #[test]
    fn partitioned_benches_split_the_shared_sweep() {
        let mut w0 = ParallelBench::Fft.thread_workload(0, 4, 1);
        let mut addrs = HashSet::new();
        for _ in 0..10_000 {
            let a = w0.stream.next_access().addr.raw();
            if (SHARED_BASE..SHARED_BASE + 2 * MB).contains(&a) {
                addrs.insert(a);
            }
        }
        // Thread 0's sweep stays in the first partition except for the
        // transpose chase, which can reach anywhere in the shared array.
        let part = 2 * MB / 4;
        let in_own = addrs.iter().filter(|&&a| a < SHARED_BASE + part).count();
        assert!(
            in_own * 2 > addrs.len(),
            "most shared touches in own partition"
        );
    }

    #[test]
    #[should_panic(expected = "bad thread index")]
    fn bad_tid_panics() {
        let _ = ParallelBench::Lu.thread_workload(4, 4, 0);
    }

    #[test]
    fn partitions_cover_exactly_and_line_aligned() {
        // Regression for the two partition bugs: the integer division used
        // to drop `total % threads` bytes (a tail no thread ever swept),
        // and non-line-multiple quotients put adjacent threads on the same
        // boundary line. Every thread count must now tile [0, total)
        // exactly with line-aligned interior boundaries.
        for total in [2 * MB, 4 * MB, 8 * MB] {
            for threads in [1usize, 2, 3, 4, 5, 6, 7, 12, 24, 48, 64] {
                let mut covered = 0u64;
                let mut expected_off = 0u64;
                for tid in 0..threads {
                    let (off, bytes) = partition(total, tid, threads);
                    assert_eq!(off, expected_off, "t{tid}/{threads} gap or overlap");
                    assert_eq!(off % LINE_BYTES, 0, "t{tid}/{threads} boundary mid-line");
                    assert!(bytes > 0);
                    covered += bytes;
                    expected_off = off + bytes;
                }
                assert_eq!(
                    covered, total,
                    "{threads} threads cover {covered} of {total} bytes"
                );
            }
        }
        // Three threads over 2 MB: the old `2*MB/3` left a 2-byte tail
        // unswept and split mid-line; the last thread now absorbs it.
        let (off2, bytes2) = partition(2 * MB, 2, 3);
        assert_eq!(off2 % LINE_BYTES, 0);
        assert_eq!(off2 + bytes2, 2 * MB);
        assert!(bytes2 >= (2 * MB) / 3);
    }

    #[test]
    fn nonpow2_thread_counts_sweep_the_whole_array() {
        // End-to-end coverage check through the fft model itself: with 3
        // threads, the union of the partition sweeps must reach the last
        // line of the 2 MB shared array (the old truncation never could).
        let threads = 3;
        let mut seen_last = false;
        let last_line = (SHARED_BASE + 2 * MB - LINE_BYTES) / LINE_BYTES;
        for tid in 0..threads {
            let mut w = ParallelBench::Fft.thread_workload(tid, threads, 7);
            for _ in 0..400_000 {
                let a = w.stream.next_access();
                if a.stream == 0 && a.addr.raw() / LINE_BYTES == last_line {
                    seen_last = true;
                    break;
                }
            }
        }
        assert!(seen_last, "no thread's sweep reached the array's last line");
    }

    #[test]
    fn power_of_two_partitions_unchanged() {
        // The committed 4-thread results rely on power-of-two partitions
        // staying byte-identical: exact division, already line-aligned.
        for threads in [1usize, 2, 4, 8, 16, 32, 64] {
            for tid in 0..threads {
                let (off, bytes) = partition(2 * MB, tid, threads);
                assert_eq!(off, tid as u64 * (2 * MB / threads as u64));
                assert_eq!(bytes, 2 * MB / threads as u64);
            }
        }
    }

    #[test]
    fn sharing_degree_zero_is_byte_identical_to_base() {
        let mut base = ParallelBench::Lu.thread_workload(1, 4, 11);
        let mut wrapped = ParallelBench::Lu.thread_workload_sharing(
            1,
            4,
            11,
            SharingSpec {
                degree: 0.0,
                write_fraction: 0.35,
            },
        );
        for i in 0..20_000 {
            assert_eq!(
                base.stream.next_access(),
                wrapped.stream.next_access(),
                "access {i}"
            );
        }
    }

    #[test]
    fn sharing_degree_routes_the_requested_fraction_into_the_pool() {
        let pool_range = SHARING_POOL_BASE..SHARING_POOL_BASE + SHARING_POOL_LINES * LINE_BYTES;
        for degree in [0.1, 0.4, 0.8] {
            let mut w = ParallelBench::Fft.thread_workload_sharing(
                0,
                4,
                3,
                SharingSpec::read_mostly(degree),
            );
            const N: usize = 40_000;
            let pooled = (0..N)
                .filter(|_| pool_range.contains(&w.stream.next_access().addr.raw()))
                .count();
            let got = pooled as f64 / N as f64;
            assert!(
                (got - degree).abs() < 0.02,
                "degree {degree}: {got} of accesses in the pool"
            );
        }
    }

    #[test]
    fn sharing_pool_lines_overlap_across_threads_and_split_reads_writes() {
        use cmp_cache::AccessKind;
        let spec = SharingSpec::read_write(0.5);
        let mut w0 = ParallelBench::Ocean.thread_workload_sharing(0, 2, 5, spec);
        let mut w1 = ParallelBench::Ocean.thread_workload_sharing(1, 2, 5, spec);
        let pool_range = SHARING_POOL_BASE..SHARING_POOL_BASE + SHARING_POOL_LINES * LINE_BYTES;
        let mut pool_lines = |w: &mut CoreWorkload| -> (HashSet<u64>, usize, usize) {
            let mut lines = HashSet::new();
            let (mut stores, mut total) = (0, 0);
            for _ in 0..40_000 {
                let a = w.stream.next_access();
                if pool_range.contains(&a.addr.raw()) {
                    lines.insert(a.addr.raw() / LINE_BYTES);
                    total += 1;
                    if a.kind == AccessKind::Store {
                        stores += 1;
                    }
                }
            }
            (lines, stores, total)
        };
        let (l0, stores, total) = pool_lines(&mut w0);
        let (l1, _, _) = pool_lines(&mut w1);
        assert!(
            l0.intersection(&l1).count() > 100,
            "threads must share pool lines"
        );
        let frac = stores as f64 / total as f64;
        assert!(
            (frac - 0.35).abs() < 0.05,
            "read-write split store fraction {frac}"
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ParallelBench::Canneal.to_string(), "canneal");
    }
}
