//! Multi-tenant service traffic: the "millions of users" scenario family.
//!
//! The SPEC mixes model 2012-era multiprogrammed batch work; a cache
//! serving a sharded online service sees none of their structure. This
//! module models that traffic directly: `N` tenants sharded over the
//! address space, each with Zipf-skewed key popularity, overlaid with the
//! disturbances such services actually produce — tenant churn (arrivals
//! map a fresh shard, a wave of compulsory misses), scan storms (a
//! sequential sweep flushing resident hot sets), hot-key flash crowds (one
//! globally shared line every core hammers at once) and diurnal phase
//! shifts (the popular-tenant ranking rotates on a long dwell, composed
//! with [`Phased`]).
//!
//! ## Sharding and scale
//!
//! Keys are routed to cores the way a sharded service routes requests:
//! tenant `t`'s key `k` as seen by core `c` lives at line `k * cores + c`
//! of the tenant's shard, so regular keyed traffic is per-core disjoint
//! (no false sharing between shards) while flash-crowd keys live in a
//! small dedicated region shared by every core. At the default 32 tenants
//! x 65,536 keys, each core addresses ~2.1 M distinct keys and an 8-core
//! system exposes ~16.8 M — millions-of-keys scale, far beyond any LLC.
//!
//! ## Determinism
//!
//! A stream is a pure function of `(scenario, cores, core, seed)`: every
//! churn/scan/flash event fires on the stream's own access counter, and
//! each `(tenant, generation, core)` draws its rank-scramble salt from the
//! [`tenant_seed`] schedule. That makes streams arena-materializable
//! (keyed by exactly those inputs), byte-identical across `ASCC_JOBS`
//! worker counts, and resumable via `fast_forward` after a crash.

use crate::access::{Access, AccessStream};
use crate::gen::Phased;
use crate::spec::{CoreWorkload, CpuModel, LINE_BYTES};
use crate::zipf::Zipf;
use cmp_cache::{AccessKind, Addr};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base of the tenant shard heap.
const TENANT_BASE: u64 = 0x100_0000_0000;
/// Base of the small flash-crowd region every core shares.
const FLASH_BASE: u64 = 0x8000_0000;
/// Distinct hot keys the flash-crowd region rotates through.
const FLASH_KEYS: u64 = 64;

/// Stream ids (PC surrogates) of the three traffic classes.
const SID_KEYED: u16 = 0;
const SID_SCAN: u16 = 1;
const SID_FLASH: u16 = 2;

/// The deterministic per-(tenant, core) seed schedule: the rank-scramble
/// salt of tenant slot `slot` in its `generation`-th incarnation as
/// observed by `core`, derived from the run `seed` with a SplitMix64
/// finalizer. Pure, so a resumed or re-materialized stream re-derives the
/// identical salt without serializing any state.
pub fn tenant_seed(seed: u64, slot: usize, generation: u64, core: usize) -> u64 {
    let mut z =
        seed ^ ((slot as u64) << 40) ^ (generation << 16) ^ core as u64 ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tuning knobs of a tenant-traffic stream. Periods count the stream's own
/// accesses; a period of zero disables that disturbance.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TenantParams {
    /// Live tenant slots.
    pub tenants: usize,
    /// Keys per tenant shard (power of two, for the rank-scramble
    /// bijection).
    pub keys_per_tenant: u64,
    /// Zipf exponent of the cross-tenant popularity ranking.
    pub tenant_alpha: f64,
    /// Zipf exponent of the within-tenant key popularity.
    pub key_alpha: f64,
    /// Fraction of keyed accesses that are stores.
    pub store_fraction: f64,
    /// Accesses between tenant replacements (arrival/departure churn).
    pub churn_every: u64,
    /// Accesses between scan storms.
    pub scan_every: u64,
    /// Length of one scan storm, in accesses.
    pub scan_len: u64,
    /// Accesses between flash crowds.
    pub flash_every: u64,
    /// Length of one flash-crowd window, in accesses.
    pub flash_len: u64,
    /// Fraction of in-window traffic the hot key absorbs.
    pub flash_weight: f64,
}

impl TenantParams {
    /// The base service shape every scenario starts from: 32 tenants of
    /// 64 Ki keys with a skewed-but-heavy-tailed popularity profile and no
    /// disturbances. See DESIGN.md for the calibration rationale.
    pub fn steady() -> Self {
        TenantParams {
            tenants: 32,
            keys_per_tenant: 1 << 16,
            tenant_alpha: 0.80,
            key_alpha: 0.95,
            store_fraction: 0.10,
            churn_every: 0,
            scan_every: 0,
            scan_len: 0,
            flash_every: 0,
            flash_len: 0,
            flash_weight: 0.0,
        }
    }
}

/// The named multi-tenant traffic scenarios of the `tenant_traffic`
/// experiment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TenantScenario {
    /// Stationary sharded Zipf traffic: the reference point.
    Steady,
    /// Tenant arrival/departure: every churn period one tenant departs and
    /// a fresh one maps a cold shard (compulsory-miss waves).
    Churn,
    /// Periodic sequential scans flushing the resident hot set.
    ScanStorm,
    /// Hot-key flash crowds: one globally shared line takes half the
    /// traffic of every core for a window.
    FlashCrowd,
    /// Diurnal phase shift: the popular-tenant ranking rotates on a long
    /// dwell (composed with [`Phased`]).
    Diurnal,
}

impl TenantScenario {
    /// All scenarios, in experiment-row order.
    pub const ALL: [TenantScenario; 5] = [
        TenantScenario::Steady,
        TenantScenario::Churn,
        TenantScenario::ScanStorm,
        TenantScenario::FlashCrowd,
        TenantScenario::Diurnal,
    ];

    /// Scenario name as used in result tables and the serve job API.
    pub fn name(self) -> &'static str {
        match self {
            TenantScenario::Steady => "steady",
            TenantScenario::Churn => "churn",
            TenantScenario::ScanStorm => "scan_storm",
            TenantScenario::FlashCrowd => "flash_crowd",
            TenantScenario::Diurnal => "diurnal",
        }
    }

    /// Parses a scenario name (the inverse of [`name`](Self::name)).
    pub fn parse(s: &str) -> Option<TenantScenario> {
        TenantScenario::ALL.into_iter().find(|t| t.name() == s)
    }

    /// The scenario's traffic parameters.
    pub fn params(self) -> TenantParams {
        let mut p = TenantParams::steady();
        match self {
            TenantScenario::Steady | TenantScenario::Diurnal => {}
            TenantScenario::Churn => p.churn_every = 200_000,
            TenantScenario::ScanStorm => {
                p.scan_every = 400_000;
                p.scan_len = 40_000;
            }
            TenantScenario::FlashCrowd => {
                p.flash_every = 300_000;
                p.flash_len = 60_000;
                p.flash_weight = 0.5;
            }
        }
        p
    }

    /// CPU-side model of a request-serving core: moderately memory-bound,
    /// decent memory-level parallelism, read-mostly.
    pub fn cpu_model(self) -> CpuModel {
        CpuModel {
            mem_fraction: 0.30,
            base_cpi: 1.0,
            overlap: 0.45,
            store_fraction: self.params().store_fraction,
        }
    }

    /// The scenario's access stream for `core` of `cores`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= cores` or `cores == 0`.
    pub fn stream(self, cores: usize, core: usize, seed: u64) -> Box<dyn AccessStream> {
        match self {
            TenantScenario::Diurnal => {
                // Day/night popularity shift: same traffic shape, but the
                // hot tenant ranking rotates half the slots. 250 k
                // accesses per phase ~ several LLC turnovers, so each
                // shift strands the previous phase's hot set.
                let p = self.params();
                let day = TenantStream::new(p, cores, core, core, seed);
                let night = TenantStream::new(p, cores, core, core + p.tenants / 2, seed ^ 0xD1);
                Box::new(Phased::new(vec![
                    (250_000, Box::new(day) as Box<dyn AccessStream>),
                    (250_000, Box::new(night)),
                ]))
            }
            _ => Box::new(TenantStream::new(self.params(), cores, core, core, seed)),
        }
    }

    /// The scenario's full per-core workload (CPU model + stream).
    pub fn workload(self, cores: usize, core: usize, seed: u64) -> CoreWorkload {
        CoreWorkload {
            label: format!("tenant:{}.c{core}", self.name()),
            cpu: self.cpu_model(),
            stream: self.stream(cores, core, seed),
        }
    }
}

impl std::fmt::Display for TenantScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One core's view of the sharded multi-tenant key space.
#[derive(Clone, Debug)]
pub struct TenantStream {
    params: TenantParams,
    cores: usize,
    core: usize,
    /// Rotation of the tenant popularity ranking: core `c`'s hottest
    /// tenant is slot `(0 + rotation) % tenants`, so per-core cache
    /// pressure is asymmetric (the spill/receive opportunity ASCC needs).
    rotation: usize,
    seed: u64,
    tenant_zipf: Zipf,
    key_zipf: Zipf,
    rng: SmallRng,
    /// Per-slot incarnation counters (bumped by churn).
    generations: Vec<u64>,
    /// Per-slot shard numbers (fresh on every churn; shards are never
    /// reused, so a new tenant's keys are all compulsory misses).
    shard_of: Vec<u64>,
    next_shard: u64,
    /// Per-slot rank-scramble salts from the [`tenant_seed`] schedule.
    salts: Vec<u64>,
    /// Accesses emitted.
    clock: u64,
    scan_slot: usize,
    scan_pos: u64,
}

impl TenantStream {
    /// Builds the stream for `core` of `cores` with the popularity ranking
    /// rotated by `rotation` slots.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`, `core >= cores`, `params.tenants == 0` or
    /// `params.keys_per_tenant` is not a power of two.
    pub fn new(
        params: TenantParams,
        cores: usize,
        core: usize,
        rotation: usize,
        seed: u64,
    ) -> Self {
        assert!(cores > 0 && core < cores, "bad core index");
        assert!(params.tenants > 0, "need at least one tenant");
        assert!(
            params.keys_per_tenant.is_power_of_two(),
            "keys_per_tenant must be a power of two"
        );
        let generations = vec![0u64; params.tenants];
        let shard_of: Vec<u64> = (0..params.tenants as u64).collect();
        let salts = (0..params.tenants)
            .map(|slot| tenant_seed(seed, slot, 0, core))
            .collect();
        TenantStream {
            params,
            cores,
            core,
            rotation,
            seed,
            tenant_zipf: Zipf::new(params.tenants, params.tenant_alpha),
            key_zipf: Zipf::new(params.keys_per_tenant as usize, params.key_alpha),
            rng: SmallRng::seed_from_u64(tenant_seed(seed, 0, u64::MAX, core)),
            generations,
            shard_of,
            next_shard: params.tenants as u64,
            salts,
            clock: 0,
            scan_slot: 0,
            scan_pos: 0,
        }
    }

    /// Byte address of `key` in `slot`'s current shard, as this core sees
    /// it (core-interleaved lines keep regular keyed traffic per-core
    /// disjoint).
    fn addr_of(&self, slot: usize, key: u64) -> u64 {
        let shard_bytes = self.params.keys_per_tenant * self.cores as u64 * LINE_BYTES;
        TENANT_BASE
            + self.shard_of[slot] * shard_bytes
            + (key * self.cores as u64 + self.core as u64) * LINE_BYTES
    }

    /// Retires one tenant slot and maps a fresh shard in its place.
    fn churn(&mut self, slot: usize) {
        self.generations[slot] += 1;
        self.shard_of[slot] = self.next_shard;
        self.next_shard += 1;
        self.salts[slot] = tenant_seed(self.seed, slot, self.generations[slot], self.core);
    }
}

impl AccessStream for TenantStream {
    fn next_access(&mut self) -> Access {
        let p = self.params;
        let c = self.clock;
        self.clock += 1;

        // Tenant churn: a departure/arrival every `churn_every` accesses,
        // round-robin over the slots. Clock-driven, so a re-created stream
        // replays the identical schedule.
        if p.churn_every > 0 && c > 0 && c % p.churn_every == 0 {
            let slot = ((c / p.churn_every - 1) % p.tenants as u64) as usize;
            self.churn(slot);
        }

        // Scan storm: a sequential sweep over one tenant's shard slice for
        // `scan_len` accesses at the top of every scan period.
        if p.scan_every > 0 && c % p.scan_every < p.scan_len {
            if c % p.scan_every == 0 {
                self.scan_slot = ((c / p.scan_every) % p.tenants as u64) as usize;
                self.scan_pos = 0;
            }
            let key = self.scan_pos % p.keys_per_tenant;
            self.scan_pos += 1;
            return Access::load(Addr::new(self.addr_of(self.scan_slot, key)), SID_SCAN);
        }

        // Flash crowd: inside the window, `flash_weight` of the traffic
        // collapses onto one globally shared line (every core, same line).
        if p.flash_every > 0
            && c % p.flash_every < p.flash_len
            && self.rng.gen::<f64>() < p.flash_weight
        {
            let hot = (c / p.flash_every) % FLASH_KEYS;
            return Access::load(Addr::new(FLASH_BASE + hot * LINE_BYTES), SID_FLASH);
        }

        // Regular keyed lookup: pick a tenant by rotated popularity rank,
        // then a key by within-tenant popularity, scrambled per
        // (tenant, generation, core) so hot keys scatter over the sets.
        let rank = self.tenant_zipf.sample(&mut self.rng);
        let slot = (rank + self.rotation) % p.tenants;
        let krank = self.key_zipf.sample(&mut self.rng) as u64;
        let salt = self.salts[slot];
        let key = (krank.wrapping_mul(salt | 1) ^ (salt >> 17)) & (p.keys_per_tenant - 1);
        let mut a = Access::load(Addr::new(self.addr_of(slot, key)), SID_KEYED);
        if self.rng.gen::<f64>() < p.store_fraction {
            a.kind = AccessKind::Store;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect(s: &mut dyn AccessStream, n: usize) -> Vec<Access> {
        (0..n).map(|_| s.next_access()).collect()
    }

    #[test]
    fn scenario_names_round_trip() {
        for t in TenantScenario::ALL {
            assert_eq!(TenantScenario::parse(t.name()), Some(t));
            assert_eq!(t.to_string(), t.name());
        }
        assert_eq!(TenantScenario::parse("nope"), None);
    }

    #[test]
    fn streams_are_deterministic_per_core_and_seed() {
        for t in TenantScenario::ALL {
            let mut a = t.stream(4, 2, 9);
            let mut b = t.stream(4, 2, 9);
            assert_eq!(
                collect(a.as_mut(), 3_000),
                collect(b.as_mut(), 3_000),
                "{t}"
            );
            // Seed sensitivity: compare past the scan_storm scenario's
            // 40 k-access opening sweep, which is seed-independent by
            // design.
            let mut c = t.stream(4, 2, 10);
            assert_ne!(
                collect(t.stream(4, 2, 9).as_mut(), 50_000),
                collect(c.as_mut(), 50_000),
                "{t} must depend on the seed"
            );
        }
    }

    #[test]
    fn seed_schedule_separates_tenants_generations_and_cores() {
        let mut seen = HashSet::new();
        for slot in 0..8 {
            for generation in 0..4 {
                for core in 0..4 {
                    assert!(
                        seen.insert(tenant_seed(7, slot, generation, core)),
                        "salt collision at ({slot}, {generation}, {core})"
                    );
                }
            }
        }
        // And the schedule is a pure function (re-derivable on resume).
        assert_eq!(tenant_seed(7, 3, 2, 1), tenant_seed(7, 3, 2, 1));
    }

    #[test]
    fn keyed_traffic_is_per_core_disjoint_but_flash_keys_are_shared() {
        let lines = |core: usize| -> (HashSet<u64>, HashSet<u64>) {
            let mut s = TenantScenario::FlashCrowd.stream(4, core, 5);
            let mut keyed = HashSet::new();
            let mut flash = HashSet::new();
            for a in collect(s.as_mut(), 120_000) {
                let line = a.addr.raw() / LINE_BYTES;
                if a.stream == SID_FLASH {
                    flash.insert(line);
                } else {
                    keyed.insert(line);
                }
            }
            (keyed, flash)
        };
        let (k0, f0) = lines(0);
        let (k1, f1) = lines(1);
        assert_eq!(
            k0.intersection(&k1).count(),
            0,
            "shard slices must not overlap"
        );
        assert!(!f0.is_empty() && !f1.is_empty(), "flash windows must fire");
        assert!(
            f0.intersection(&f1).count() > 0,
            "flash keys must be globally shared"
        );
    }

    #[test]
    fn churn_maps_fresh_shards() {
        let p = TenantScenario::Churn.params();
        let mut s = TenantScenario::Churn.stream(2, 0, 3);
        let shard_bytes = p.keys_per_tenant * 2 * LINE_BYTES;
        let shard = |a: &Access| (a.addr.raw() - TENANT_BASE) / shard_bytes;
        let before: HashSet<u64> = collect(s.as_mut(), p.churn_every as usize)
            .iter()
            .map(shard)
            .collect();
        assert!(before.iter().all(|&sh| sh < p.tenants as u64));
        // After a few churn periods, retired slots point at brand-new
        // shards (numbers >= tenants), whose keys were never touched.
        let later: HashSet<u64> = collect(s.as_mut(), 4 * p.churn_every as usize)
            .iter()
            .map(shard)
            .collect();
        assert!(
            later.iter().any(|&sh| sh >= p.tenants as u64),
            "churn never mapped a fresh shard: {later:?}"
        );
    }

    #[test]
    fn scan_storms_sweep_sequentially() {
        let p = TenantScenario::ScanStorm.params();
        let mut s = TenantScenario::ScanStorm.stream(2, 1, 8);
        let head = collect(s.as_mut(), p.scan_len as usize);
        // The first scan window opens at access 0: a line-strided
        // sequential sweep, tagged with the scan stream id.
        assert!(head.iter().all(|a| a.stream == SID_SCAN));
        for w in head.windows(2) {
            assert_eq!(
                w[1].addr.raw() - w[0].addr.raw(),
                2 * LINE_BYTES,
                "scan must stride this core's interleaved lines"
            );
        }
        // Between windows the traffic is keyed again.
        let tail = collect(s.as_mut(), 10_000);
        assert!(tail.iter().any(|a| a.stream == SID_KEYED));
    }

    #[test]
    fn diurnal_rotation_shifts_the_hot_tenant() {
        let p = TenantScenario::Diurnal.params();
        let mut s = TenantScenario::Diurnal.stream(2, 0, 4);
        let shard_bytes = p.keys_per_tenant * 2 * LINE_BYTES;
        let hot = |accs: &[Access]| -> u64 {
            let mut counts = std::collections::HashMap::new();
            for a in accs {
                *counts
                    .entry((a.addr.raw() - TENANT_BASE) / shard_bytes)
                    .or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|&(_, n)| n).unwrap().0
        };
        let day = collect(s.as_mut(), 100_000);
        for _ in 0..150_000 {
            s.next_access();
        }
        let night = collect(s.as_mut(), 100_000);
        assert_ne!(
            hot(&day),
            hot(&night),
            "phase shift must move the hot tenant"
        );
    }

    #[test]
    fn keyed_traffic_carries_stores_at_the_configured_fraction() {
        let p = TenantScenario::Steady.params();
        let mut s = TenantScenario::Steady.stream(4, 0, 1);
        let accs = collect(s.as_mut(), 50_000);
        let stores = accs.iter().filter(|a| a.kind.is_store()).count();
        let frac = stores as f64 / accs.len() as f64;
        assert!(
            (frac - p.store_fraction).abs() < 0.02,
            "store fraction {frac}"
        );
    }

    #[test]
    fn millions_of_keys_scale() {
        let p = TenantParams::steady();
        // Distinct addressable keys per core at the default shape.
        let per_core = p.tenants as u64 * p.keys_per_tenant;
        assert!(per_core > 2_000_000, "per-core key space {per_core}");
        // And a stream really does spread over a multi-megabyte footprint.
        let mut s = TenantScenario::Steady.stream(2, 0, 2);
        let lines: HashSet<u64> = collect(s.as_mut(), 200_000)
            .iter()
            .map(|a| a.addr.raw() / LINE_BYTES)
            .collect();
        assert!(
            lines.len() as u64 * LINE_BYTES > 1 << 20,
            "footprint only {} lines — smaller than the 1 MB baseline LLC",
            lines.len()
        );
    }

    #[test]
    #[should_panic(expected = "bad core index")]
    fn bad_core_panics() {
        let _ = TenantStream::new(TenantParams::steady(), 2, 2, 0, 0);
    }
}
