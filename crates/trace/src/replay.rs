//! Trace recording and replay.
//!
//! Synthetic generators are convenient, but a simulator suite also needs a
//! way to capture a workload once and re-run it exactly — for regression
//! pinning, for sharing a problematic access pattern, or for feeding
//! externally produced traces into the system. [`RecordedTrace`] holds a
//! finite access sequence, serialises to a compact binary format, and
//! replays as an infinite [`AccessStream`] by looping.
//!
//! ## Format
//!
//! Little-endian binary: the 8-byte magic `ASCCTRC1`, a `u64` access count,
//! then per access a `u64` byte address, a `u8` kind (0 load / 1 store) and
//! a `u16` stream id.

use crate::access::{Access, AccessStream};
use cmp_cache::{AccessKind, Addr};
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"ASCCTRC1";

/// Error while decoding a recorded trace.
#[derive(Debug)]
pub enum TraceError {
    /// The stream did not start with the `ASCCTRC1` magic.
    BadMagic,
    /// The payload ended before the declared access count.
    Truncated,
    /// An access kind byte was neither 0 nor 1.
    BadKind(u8),
    /// The trace declares zero accesses (it could not replay).
    Empty,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an ASCC trace (bad magic)"),
            TraceError::Truncated => write!(f, "trace payload shorter than its header declares"),
            TraceError::BadKind(k) => write!(f, "invalid access kind byte {k}"),
            TraceError::Empty => write!(f, "trace contains no accesses"),
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A finite recorded access sequence that replays in a loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecordedTrace {
    accesses: Vec<Access>,
}

impl RecordedTrace {
    /// Captures the next `n` accesses of `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (an empty trace cannot replay).
    pub fn record<S: AccessStream + ?Sized>(stream: &mut S, n: usize) -> Self {
        assert!(n > 0, "cannot record an empty trace");
        RecordedTrace {
            accesses: (0..n).map(|_| stream.next_access()).collect(),
        }
    }

    /// Builds a trace from explicit accesses.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is empty.
    pub fn from_accesses(accesses: Vec<Access>) -> Self {
        assert!(!accesses.is_empty(), "cannot replay an empty trace");
        RecordedTrace { accesses }
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Always `false` (empty traces are rejected at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The recorded accesses.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Serialises the trace.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `w`.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<(), TraceError> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.accesses.len() as u64).to_le_bytes())?;
        for a in &self.accesses {
            w.write_all(&a.addr.raw().to_le_bytes())?;
            w.write_all(&[u8::from(a.kind == AccessKind::Store)])?;
            w.write_all(&a.stream.to_le_bytes())?;
        }
        Ok(())
    }

    /// Deserialises a trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on bad magic, truncation, invalid kinds, an
    /// empty payload, or I/O failure.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(eof_as_truncated)?;
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut countb = [0u8; 8];
        r.read_exact(&mut countb).map_err(eof_as_truncated)?;
        let count = u64::from_le_bytes(countb);
        if count == 0 {
            return Err(TraceError::Empty);
        }
        let mut accesses = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            let mut rec = [0u8; 11];
            r.read_exact(&mut rec).map_err(eof_as_truncated)?;
            let addr = u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes"));
            let kind = match rec[8] {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                k => return Err(TraceError::BadKind(k)),
            };
            let stream = u16::from_le_bytes(rec[9..11].try_into().expect("2 bytes"));
            accesses.push(Access {
                addr: Addr::new(addr),
                kind,
                stream,
            });
        }
        Ok(RecordedTrace { accesses })
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error.
    pub fn save(&self, path: &std::path::Path) -> Result<(), TraceError> {
        self.write_to(io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// Loads from a file.
    ///
    /// # Errors
    ///
    /// See [`RecordedTrace::read_from`].
    pub fn load(path: &std::path::Path) -> Result<Self, TraceError> {
        Self::read_from(io::BufReader::new(std::fs::File::open(path)?))
    }

    /// Converts into an infinite, looping replay stream.
    pub fn into_stream(self) -> ReplayStream {
        ReplayStream {
            trace: self,
            pos: 0,
        }
    }
}

fn eof_as_truncated(e: io::Error) -> TraceError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        TraceError::Truncated
    } else {
        TraceError::Io(e)
    }
}

/// Infinite replay of a [`RecordedTrace`], wrapping at the end.
#[derive(Clone, Debug)]
pub struct ReplayStream {
    trace: RecordedTrace,
    pos: usize,
}

impl AccessStream for ReplayStream {
    fn next_access(&mut self) -> Access {
        let a = self.trace.accesses[self.pos];
        self.pos = (self.pos + 1) % self.trace.len();
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::CyclicStream;

    fn sample() -> RecordedTrace {
        let mut s = CyclicStream::words(0x1000, 64, 3);
        RecordedTrace::record(&mut s, 10)
    }

    #[test]
    fn record_captures_the_stream_prefix() {
        let t = sample();
        assert_eq!(t.len(), 10);
        assert_eq!(t.accesses()[0].addr.raw(), 0x1000);
        assert_eq!(t.accesses()[1].addr.raw(), 0x1004);
        assert_eq!(t.accesses()[0].stream, 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn round_trip_bytes() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = RecordedTrace::read_from(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn round_trip_file() {
        let t = sample();
        let dir = std::env::temp_dir().join(format!("ascc-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trc");
        t.save(&path).unwrap();
        let back = RecordedTrace::load(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_loops() {
        let t = sample();
        let first: Vec<_> = t.accesses().to_vec();
        let mut s = t.into_stream();
        for lap in 0..3 {
            for a in &first {
                let _ = lap;
                assert_eq!(s.next_access(), *a);
            }
        }
    }

    #[test]
    fn stores_survive_the_round_trip() {
        let accesses = vec![
            Access::load(Addr::new(32), 0),
            Access::store(Addr::new(64), 1),
        ];
        let t = RecordedTrace::from_accesses(accesses.clone());
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = RecordedTrace::read_from(&buf[..]).unwrap();
        assert_eq!(back.accesses(), &accesses[..]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = RecordedTrace::read_from(&b"NOTATRCE\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadMagic), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = RecordedTrace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceError::Truncated), "{err}");
    }

    #[test]
    fn bad_kind_rejected() {
        let t = RecordedTrace::from_accesses(vec![Access::load(Addr::new(0), 0)]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        buf[16 + 8] = 7; // corrupt the kind byte
        let err = RecordedTrace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceError::BadKind(7)), "{err}");
    }

    #[test]
    fn empty_header_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = RecordedTrace::read_from(&buf[..]).unwrap_err();
        assert!(matches!(err, TraceError::Empty), "{err}");
    }

    #[test]
    fn errors_display() {
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::Truncated.to_string().contains("shorter"));
        assert!(TraceError::BadKind(9).to_string().contains('9'));
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn recording_zero_panics() {
        let mut s = CyclicStream::words(0, 64, 0);
        let _ = RecordedTrace::record(&mut s, 0);
    }
}
