//! The access-stream abstraction produced by all workload generators.

use cmp_cache::{AccessKind, Addr};

/// One memory operation emitted by a workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// Byte address touched.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
    /// Stream id — a PC surrogate identifying the generator component that
    /// produced the access; used to index the stride prefetcher.
    pub stream: u16,
}

impl Access {
    /// Convenience constructor for a load.
    pub fn load(addr: Addr, stream: u16) -> Self {
        Access {
            addr,
            kind: AccessKind::Load,
            stream,
        }
    }

    /// Convenience constructor for a store.
    pub fn store(addr: Addr, stream: u16) -> Self {
        Access {
            addr,
            kind: AccessKind::Store,
            stream,
        }
    }
}

/// An infinite stream of memory accesses.
///
/// Streams are deterministic given their construction seed; they own any
/// randomness they need. They are `Send` so experiment harnesses can run
/// independent simulations on worker threads.
pub trait AccessStream: Send {
    /// Produces the next access. Streams never end; simulation length is
    /// controlled by the caller.
    fn next_access(&mut self) -> Access;
}

impl AccessStream for Box<dyn AccessStream> {
    fn next_access(&mut self) -> Access {
        (**self).next_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let l = Access::load(Addr::new(4), 1);
        assert_eq!(l.kind, AccessKind::Load);
        let s = Access::store(Addr::new(8), 2);
        assert_eq!(s.kind, AccessKind::Store);
        assert_eq!(s.stream, 2);
    }
}
