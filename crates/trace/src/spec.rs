//! Calibrated models of the 13 SPEC CPU2006 benchmarks of Table 3.
//!
//! We do not have SPEC binaries or reference traces, so each benchmark is a
//! weighted [`Mixture`] of archetypes ([`CyclicStream`], [`ZipfStream`],
//! [`ChaseStream`]) plus a small CPU model (memory-op fraction, base CPI,
//! memory-level-parallelism overlap factor). The constants below were
//! calibrated so that a *solo run on the paper's baseline* (1 MB/8-way/32 B
//! L2, 32 kB L1, latencies of Table 2) lands close to the L2 MPKI and CPI
//! that Table 3 reports, and so that the way-sensitivity split of Fig. 1
//! (streaming/small-WS vs capacity-hungry) is preserved. See DESIGN.md §2
//! for the substitution rationale.

use crate::access::AccessStream;
use crate::gen::{ChaseStream, CyclicStream, Mixture, Phased, ZipfStream};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;
/// Line size used throughout the reproduction (Table 2).
pub const LINE_BYTES: u64 = 32;
/// Size of the region streamed over by streaming components: large enough
/// to never fit in any evaluated cache.
const STREAM_REGION: u64 = 64 * MB;

/// CPU-side model of a benchmark: how its instruction stream translates
/// into cycles around the memory accesses.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CpuModel {
    /// Fraction of instructions that are memory operations.
    pub mem_fraction: f64,
    /// Cycles per instruction spent outside memory stalls.
    pub base_cpi: f64,
    /// Fraction of the memory latency exposed as stall (1 = fully serial,
    /// small = deep memory-level parallelism hiding latency).
    pub overlap: f64,
    /// Fraction of memory operations that are stores.
    pub store_fraction: f64,
}

/// A per-core workload: a CPU model plus an infinite access stream.
pub struct CoreWorkload {
    /// Display label, e.g. `"473.astar"`.
    pub label: String,
    /// CPU-side timing parameters.
    pub cpu: CpuModel,
    /// The address stream.
    pub stream: Box<dyn AccessStream>,
}

impl std::fmt::Debug for CoreWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreWorkload")
            .field("label", &self.label)
            .field("cpu", &self.cpu)
            .finish()
    }
}

/// The 13 SPEC CPU2006 benchmarks the paper selects (L2 MPKI >= 1, Table 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpecBench {
    /// 401.bzip2 — compression; moderately capacity-sensitive.
    Bzip2,
    /// 429.mcf — sparse optimisation; enormous working set, high MPKI.
    Mcf,
    /// 433.milc — lattice QCD; streaming, way-insensitive.
    Milc,
    /// 444.namd — molecular dynamics; small working set.
    Namd,
    /// 445.gobmk — go; small working set, way-insensitive.
    Gobmk,
    /// 450.soplex — LP solver; capacity-sensitive.
    Soplex,
    /// 456.hmmer — profile HMM search; small hot working set.
    Hmmer,
    /// 458.sjeng — chess; working set around 1/4 MB (per §2).
    Sjeng,
    /// 462.libquantum — quantum simulation; streaming.
    Libquantum,
    /// 470.lbm — lattice Boltzmann; streaming.
    Lbm,
    /// 471.omnetpp — discrete event simulation; capacity-sensitive.
    Omnetpp,
    /// 473.astar — path finding; capacity-sensitive up to ~1.5 MB.
    Astar,
    /// 482.sphinx3 — speech recognition; streaming-dominated.
    Sphinx3,
}

/// One archetypal component of a benchmark mixture.
#[derive(Clone, Copy, Debug)]
enum Comp {
    /// Small cyclic working set (word-granular).
    Hot(u64),
    /// Streaming walk over [`STREAM_REGION`].
    Stream,
    /// Zipf-skewed reuse over `lines` lines with exponent `alpha`.
    Zipf(u64, f64),
    /// Uniform random lines over `lines` lines.
    Chase(u64),
}

/// Periodic capacity-burst phase: the benchmark alternates a long "quiet"
/// phase (the `comps` mixture) with a short burst sweeping a cyclic loop
/// slightly larger than the baseline LLC. Bursts model the phased working
/// sets of the capacity-hungry SPEC codes: within a burst the loop is
/// re-swept several times, so lines spilled on the first sweep are
/// re-referenced while still resident in a receiver cache.
struct Burst {
    /// Quiet-phase length in memory accesses.
    quiet_accesses: u64,
    /// Burst length in memory accesses.
    burst_accesses: u64,
    /// Loop footprint in bytes (just above the 1 MB baseline LLC).
    loop_bytes: u64,
    /// Fraction of burst accesses that walk the loop (rest is background).
    loop_weight: f64,
}

struct BenchSpec {
    id: u16,
    name: &'static str,
    mpki: f64,
    cpi: f64,
    cpu: CpuModel,
    comps: &'static [(f64, Comp)],
    burst: Option<Burst>,
}

impl SpecBench {
    /// All 13 benchmarks, in Table 3 order.
    pub const ALL: [SpecBench; 13] = [
        SpecBench::Bzip2,
        SpecBench::Mcf,
        SpecBench::Milc,
        SpecBench::Namd,
        SpecBench::Gobmk,
        SpecBench::Soplex,
        SpecBench::Hmmer,
        SpecBench::Sjeng,
        SpecBench::Libquantum,
        SpecBench::Lbm,
        SpecBench::Omnetpp,
        SpecBench::Astar,
        SpecBench::Sphinx3,
    ];

    fn spec(self) -> &'static BenchSpec {
        match self {
            SpecBench::Bzip2 => &BenchSpec {
                id: 401,
                name: "401.bzip2",
                mpki: 2.7,
                cpi: 1.8,
                cpu: CpuModel {
                    mem_fraction: 0.30,
                    base_cpi: 1.15,
                    overlap: 0.62,
                    store_fraction: 0.30,
                },
                comps: &[
                    (0.952, Comp::Hot(24 * KB)),
                    (0.008, Comp::Chase(65536)), // 2 MB sparse pointer data
                    (0.040, Comp::Stream),
                ],
                burst: None,
            },
            SpecBench::Mcf => &BenchSpec {
                id: 429,
                name: "429.mcf",
                mpki: 40.1,
                cpi: 10.4,
                cpu: CpuModel {
                    mem_fraction: 0.35,
                    base_cpi: 0.80,
                    overlap: 0.66,
                    store_fraction: 0.20,
                },
                comps: &[
                    (0.905, Comp::Hot(16 * KB)),
                    (0.075, Comp::Chase(524288)), // 16 MB pointer chase
                    (0.020, Comp::Zipf(262144, 0.60)), // 8 MB skewed
                ],
                burst: Some(Burst {
                    quiet_accesses: 2_860_000,
                    burst_accesses: 65_000,
                    loop_bytes: 1280 * KB,
                    loop_weight: 0.90,
                }),
            },
            SpecBench::Milc => &BenchSpec {
                id: 433,
                name: "433.milc",
                mpki: 33.1,
                cpi: 4.28,
                cpu: CpuModel {
                    mem_fraction: 0.35,
                    base_cpi: 1.00,
                    overlap: 0.33,
                    store_fraction: 0.35,
                },
                comps: &[(0.76, Comp::Stream), (0.24, Comp::Hot(24 * KB))],
                burst: None,
            },
            SpecBench::Namd => &BenchSpec {
                id: 444,
                name: "444.namd",
                mpki: 1.0,
                cpi: 0.76,
                cpu: CpuModel {
                    mem_fraction: 0.25,
                    base_cpi: 0.52,
                    overlap: 0.40,
                    store_fraction: 0.25,
                },
                comps: &[(0.97, Comp::Hot(160 * KB)), (0.03, Comp::Stream)],
                burst: None,
            },
            SpecBench::Gobmk => &BenchSpec {
                id: 445,
                name: "445.gobmk",
                mpki: 1.1,
                cpi: 1.34,
                cpu: CpuModel {
                    mem_fraction: 0.25,
                    base_cpi: 1.12,
                    overlap: 0.45,
                    store_fraction: 0.30,
                },
                comps: &[
                    (0.96, Comp::Hot(48 * KB)),
                    (0.01, Comp::Zipf(16384, 1.20)), // 512 kB lightly skewed
                    (0.03, Comp::Stream),
                ],
                burst: None,
            },
            SpecBench::Soplex => &BenchSpec {
                id: 450,
                name: "450.soplex",
                mpki: 3.6,
                cpi: 1.0,
                cpu: CpuModel {
                    mem_fraction: 0.30,
                    base_cpi: 0.60,
                    overlap: 0.25,
                    store_fraction: 0.25,
                },
                comps: &[
                    (0.962, Comp::Hot(20 * KB)),
                    (0.008, Comp::Zipf(131072, 1.00)), // 4 MB, capacity-sensitive
                    (0.030, Comp::Stream),
                ],
                burst: Some(Burst {
                    quiet_accesses: 3_400_000,
                    burst_accesses: 45_000,
                    loop_bytes: 1088 * KB,
                    loop_weight: 0.85,
                }),
            },
            SpecBench::Hmmer => &BenchSpec {
                id: 456,
                name: "456.hmmer",
                mpki: 3.4,
                cpi: 1.3,
                cpu: CpuModel {
                    mem_fraction: 0.30,
                    base_cpi: 0.95,
                    overlap: 0.25,
                    store_fraction: 0.30,
                },
                comps: &[(0.91, Comp::Hot(80 * KB)), (0.09, Comp::Stream)],
                burst: None,
            },
            SpecBench::Sjeng => &BenchSpec {
                id: 458,
                name: "458.sjeng",
                mpki: 1.36,
                cpi: 1.6,
                cpu: CpuModel {
                    mem_fraction: 0.25,
                    base_cpi: 1.38,
                    overlap: 0.45,
                    store_fraction: 0.30,
                },
                comps: &[
                    (0.95, Comp::Hot(224 * KB)),
                    (0.02, Comp::Zipf(262144, 1.30)), // 8 MB, strongly skewed
                    (0.03, Comp::Stream),
                ],
                burst: None,
            },
            SpecBench::Libquantum => &BenchSpec {
                id: 462,
                name: "462.libquantum",
                mpki: 22.4,
                cpi: 4.3,
                cpu: CpuModel {
                    mem_fraction: 0.30,
                    base_cpi: 1.10,
                    overlap: 0.46,
                    store_fraction: 0.35,
                },
                comps: &[(0.61, Comp::Stream), (0.39, Comp::Hot(16 * KB))],
                burst: None,
            },
            SpecBench::Lbm => &BenchSpec {
                id: 470,
                name: "470.lbm",
                mpki: 29.0,
                cpi: 2.0,
                cpu: CpuModel {
                    mem_fraction: 0.35,
                    base_cpi: 0.85,
                    overlap: 0.15,
                    store_fraction: 0.40,
                },
                comps: &[(0.67, Comp::Stream), (0.33, Comp::Hot(24 * KB))],
                burst: None,
            },
            SpecBench::Omnetpp => &BenchSpec {
                id: 471,
                name: "471.omnetpp",
                mpki: 15.2,
                cpi: 2.0,
                cpu: CpuModel {
                    mem_fraction: 0.30,
                    base_cpi: 1.05,
                    overlap: 0.16,
                    store_fraction: 0.30,
                },
                comps: &[
                    (0.986, Comp::Hot(24 * KB)),
                    (0.008, Comp::Zipf(131072, 0.55)), // 4 MB, mild skew
                    (0.006, Comp::Chase(131072)),      // 4 MB
                ],
                burst: Some(Burst {
                    quiet_accesses: 2_200_000,
                    burst_accesses: 90_000,
                    loop_bytes: 1088 * KB,
                    loop_weight: 0.85,
                }),
            },
            SpecBench::Astar => &BenchSpec {
                id: 473,
                name: "473.astar",
                mpki: 7.3,
                cpi: 3.5,
                cpu: CpuModel {
                    mem_fraction: 0.30,
                    base_cpi: 0.98,
                    overlap: 0.62,
                    store_fraction: 0.25,
                },
                comps: &[
                    (0.922, Comp::Hot(20 * KB)),
                    (0.050, Comp::Zipf(4096, 1.10)), // 128 kB mid-level reuse
                    (0.020, Comp::Stream),
                    (0.008, Comp::Chase(131072)), // 4 MB sparse graph tail
                ],
                burst: Some(Burst {
                    quiet_accesses: 3_340_000,
                    burst_accesses: 60_000,
                    loop_bytes: 1088 * KB,
                    loop_weight: 0.85,
                }),
            },
            SpecBench::Sphinx3 => &BenchSpec {
                id: 482,
                name: "482.sphinx3",
                mpki: 16.1,
                cpi: 4.37,
                cpu: CpuModel {
                    mem_fraction: 0.30,
                    base_cpi: 1.30,
                    overlap: 0.48,
                    store_fraction: 0.20,
                },
                comps: &[
                    (0.38, Comp::Stream),
                    (0.60, Comp::Hot(48 * KB)),
                    (0.02, Comp::Zipf(65536, 1.00)), // 2 MB
                ],
                burst: None,
            },
        }
    }

    /// SPEC numeric id, e.g. 473 for astar.
    pub fn id(self) -> u16 {
        self.spec().id
    }

    /// Full benchmark name, e.g. `"473.astar"`.
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Looks a benchmark up by its SPEC numeric id.
    pub fn from_id(id: u16) -> Option<SpecBench> {
        SpecBench::ALL.iter().copied().find(|b| b.id() == id)
    }

    /// The L2 MPKI Table 3 reports for the real benchmark (the calibration
    /// target, *not* a measurement of this model).
    pub fn table3_mpki(self) -> f64 {
        self.spec().mpki
    }

    /// The CPI Table 3 reports for the real benchmark.
    pub fn table3_cpi(self) -> f64 {
        self.spec().cpi
    }

    /// The CPU model used by the timing simulator.
    pub fn cpu_model(self) -> CpuModel {
        self.spec().cpu
    }

    /// Whether the paper classifies this benchmark as benefiting from extra
    /// cache ways (Fig. 1 lower row / §2 discussion).
    pub fn is_capacity_sensitive(self) -> bool {
        matches!(
            self,
            SpecBench::Bzip2
                | SpecBench::Mcf
                | SpecBench::Soplex
                | SpecBench::Omnetpp
                | SpecBench::Astar
        )
    }

    /// Builds the weighted components of the quiet mixture. Each component
    /// gets its own 128 MB slot inside the core's region, so components
    /// never overlap (the largest, the streaming region, is 64 MB).
    fn build_comps(
        spec: &'static BenchSpec,
        base: u64,
        seed: u64,
    ) -> Vec<(f64, Box<dyn AccessStream>)> {
        spec.comps
            .iter()
            .enumerate()
            .map(|(i, &(w, c))| {
                let stream_id = i as u16;
                let slot = base + (i as u64) * (128 * MB);
                let s: Box<dyn AccessStream> = match c {
                    Comp::Hot(bytes) => Box::new(CyclicStream::words(slot, bytes, stream_id)),
                    Comp::Stream => Box::new(CyclicStream::words(slot, STREAM_REGION, stream_id)),
                    Comp::Zipf(lines, alpha) => Box::new(ZipfStream::new(
                        slot,
                        lines,
                        LINE_BYTES,
                        alpha,
                        seed ^ (0xA5A5 + stream_id as u64),
                        stream_id,
                    )),
                    Comp::Chase(lines) => Box::new(ChaseStream::new(
                        slot,
                        lines,
                        LINE_BYTES,
                        seed ^ (0x5A5A + stream_id as u64),
                        stream_id,
                    )),
                };
                (w, s)
            })
            .collect()
    }

    /// Builds the benchmark's access stream inside the address-space region
    /// starting at `base` (callers give each core a disjoint region), with
    /// all randomness derived from `seed`.
    pub fn workload(self, base: u64, seed: u64) -> CoreWorkload {
        let spec = self.spec();
        let comps = Self::build_comps(spec, base, seed);

        let quiet: Box<dyn AccessStream> = Box::new(Mixture::new(
            comps,
            spec.cpu.store_fraction,
            seed ^ 0xC0FFEE,
        ));
        let stream: Box<dyn AccessStream> = match spec.burst {
            None => quiet,
            Some(ref b) => {
                // Background traffic continues (at reduced rate) during the
                // burst: a second instance of the quiet mixture.
                let background = self.quiet_mixture(base, seed ^ 0xB6B6);
                let loop_slot = base + (spec.comps.len() as u64) * (128 * MB);
                let burst_mix: Box<dyn AccessStream> = Box::new(Mixture::new(
                    vec![
                        (
                            b.loop_weight,
                            Box::new(CyclicStream::new(loop_slot, b.loop_bytes, LINE_BYTES, 99))
                                as Box<dyn AccessStream>,
                        ),
                        (1.0 - b.loop_weight, background),
                    ],
                    spec.cpu.store_fraction,
                    seed ^ 0xB125,
                ));
                Box::new(Phased::new(vec![
                    (b.quiet_accesses, quiet),
                    (b.burst_accesses, burst_mix),
                ]))
            }
        };
        CoreWorkload {
            label: spec.name.to_string(),
            cpu: spec.cpu,
            stream,
        }
    }

    /// Builds just the quiet mixture (used as burst background).
    fn quiet_mixture(self, base: u64, seed: u64) -> Box<dyn AccessStream> {
        let spec = self.spec();
        let comps = Self::build_comps(spec, base, seed);
        Box::new(Mixture::new(
            comps,
            spec.cpu.store_fraction,
            seed ^ 0xC0FFEE,
        ))
    }
}

impl std::fmt::Display for SpecBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for b in SpecBench::ALL {
            assert_eq!(SpecBench::from_id(b.id()), Some(b));
        }
        assert_eq!(SpecBench::from_id(999), None);
    }

    #[test]
    fn all_models_have_sane_parameters() {
        for b in SpecBench::ALL {
            let cpu = b.cpu_model();
            assert!(cpu.mem_fraction > 0.0 && cpu.mem_fraction < 1.0, "{b}");
            assert!(cpu.base_cpi > 0.0, "{b}");
            assert!(cpu.overlap > 0.0 && cpu.overlap <= 1.0, "{b}");
            assert!((0.0..=1.0).contains(&cpu.store_fraction), "{b}");
            assert!(b.table3_mpki() >= 1.0, "paper only keeps MPKI >= 1");
            assert!(b.table3_cpi() > 0.0);
        }
    }

    #[test]
    fn workloads_stay_in_their_region() {
        for (i, b) in SpecBench::ALL.iter().enumerate() {
            let base = (i as u64) << 40;
            let mut w = b.workload(base, 42);
            for _ in 0..2_000 {
                let a = w.stream.next_access().addr.raw();
                assert!(a >= base && a < base + (1 << 40), "{b}: {a:#x}");
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let mut w1 = SpecBench::Astar.workload(0, 7);
        let mut w2 = SpecBench::Astar.workload(0, 7);
        for _ in 0..500 {
            assert_eq!(w1.stream.next_access(), w2.stream.next_access());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut w1 = SpecBench::Mcf.workload(0, 1);
        let mut w2 = SpecBench::Mcf.workload(0, 2);
        let same = (0..500)
            .filter(|_| w1.stream.next_access() == w2.stream.next_access())
            .count();
        assert!(same < 450, "seeds produce nearly identical streams");
    }

    #[test]
    fn sensitivity_split_matches_paper() {
        assert!(SpecBench::Astar.is_capacity_sensitive());
        assert!(SpecBench::Mcf.is_capacity_sensitive());
        assert!(!SpecBench::Milc.is_capacity_sensitive());
        assert!(!SpecBench::Namd.is_capacity_sensitive());
        assert!(!SpecBench::Libquantum.is_capacity_sensitive());
    }

    #[test]
    fn display_uses_full_name() {
        assert_eq!(SpecBench::Sphinx3.to_string(), "482.sphinx3");
    }
}
