//! Cooperative Caching (Chang & Sohi, ISCA 2006).
//!
//! The original spill design: when a replacement evicts the *last on-chip
//! copy* of a line, CC forwards it to another cache instead of dropping it
//! to memory, choosing the destination **randomly** and regardless of
//! whether the spill will help — the indiscriminateness the ASCC paper
//! criticises in §2. We implement 1-chance forwarding: a line that already
//! arrived via a spill is not recirculated when evicted again.

use cmp_cache::{
    AccessOutcome, CoreId, LlcPolicy, PolicySnapshot, SetIdx, SpillDecision, SpillVictim,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Cooperative Caching policy.
#[derive(Debug)]
pub struct CcPolicy {
    cores: usize,
    rng: SmallRng,
    spills_refused: u64,
}

impl CcPolicy {
    /// Builds CC for `cores` private caches.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize, seed: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        CcPolicy {
            cores,
            rng: SmallRng::seed_from_u64(seed),
            spills_refused: 0,
        }
    }

    /// How many re-spills the 1-chance rule refused.
    pub fn spills_refused(&self) -> u64 {
        self.spills_refused
    }
}

impl LlcPolicy for CcPolicy {
    fn name(&self) -> &str {
        "CC"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, _core: CoreId, _set: SetIdx, _outcome: AccessOutcome) {}

    fn spill_decision(&mut self, from: CoreId, _set: SetIdx, victim: SpillVictim) -> SpillDecision {
        if self.cores < 2 {
            return SpillDecision::NoCandidate;
        }
        if victim.spilled {
            // 1-chance forwarding: spilled lines die on their next eviction.
            self.spills_refused += 1;
            return SpillDecision::NotSpiller;
        }
        // Any peer, chosen uniformly at random.
        let mut target = self.rng.gen_range(0..self.cores - 1);
        if target >= from.index() {
            target += 1;
        }
        SpillDecision::Spill(CoreId(target as u8))
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut snap = PolicySnapshot::new("CC");
        snap.spills_refused = Some(self.spills_refused);
        snap
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        crate::snap_util::save_rng(w, &self.rng);
        w.put_u64(self.spills_refused);
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        self.rng = crate::snap_util::load_rng(r)?;
        self.spills_refused = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_spills_fresh_victims() {
        let mut p = CcPolicy::new(4, 7);
        for _ in 0..50 {
            match p.spill_decision(CoreId(2), SetIdx(0), SpillVictim::default()) {
                SpillDecision::Spill(c) => assert_ne!(c, CoreId(2), "never to itself"),
                d => panic!("CC must always spill, got {d:?}"),
            }
        }
    }

    #[test]
    fn covers_all_peers() {
        let mut p = CcPolicy::new(4, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let SpillDecision::Spill(c) =
                p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default())
            {
                seen.insert(c.0);
            }
        }
        assert_eq!(seen.len(), 3, "all three peers should be hit: {seen:?}");
    }

    #[test]
    fn one_chance_forwarding() {
        let mut p = CcPolicy::new(2, 7);
        assert_eq!(
            p.spill_decision(
                CoreId(0),
                SetIdx(0),
                SpillVictim {
                    spilled: true,
                    ..SpillVictim::default()
                }
            ),
            SpillDecision::NotSpiller
        );
        assert_eq!(p.spills_refused(), 1);
    }

    #[test]
    fn single_core_never_spills() {
        let mut p = CcPolicy::new(1, 7);
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::NoCandidate
        );
    }

    #[test]
    fn two_core_target_is_the_peer() {
        let mut p = CcPolicy::new(2, 7);
        for _ in 0..20 {
            assert_eq!(
                p.spill_decision(CoreId(1), SetIdx(3), SpillVictim::default()),
                SpillDecision::Spill(CoreId(0))
            );
        }
    }
}
