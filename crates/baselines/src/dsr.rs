//! Dynamic Spill-Receive (Qureshi, HPCA 2009) and the 3-state variant the
//! ASCC paper constructs for Fig. 5.
//!
//! Each private cache learns through *set-level duelling* whether it should
//! act as a **spiller** or a **receiver**. A few set indices per cache are
//! dedicated monitors that run the two candidate policies *chip-wide*: at
//! cache `i`'s *spiller-SDM* indices, cache `i` always spills and every
//! peer receives; at its *receiver-SDM* indices, cache `i` always receives
//! and every peer spills. A per-cache saturating counter `PSEL` accumulates
//! the misses the chip observes at those indices — "this global counter is
//! updated by all the caches in order to determine whether the spillings
//! are going to hurt receiver caches or not" (§2 of the ASCC paper) — and
//! the follower sets adopt the winning behaviour. Forcing the
//! complementary role on the peers is what keeps the samples active (and
//! informative) no matter what the followers currently do — essential for
//! the three-state variant, whose followers start neutral.
//!
//! The paper's evaluation uses 32 sets per Set Dueling Monitor and 1 SDM per
//! policy (§6).

use cmp_cache::{
    AccessOutcome, CoreId, CoreSnapshot, LlcPolicy, PolicySnapshot, RoleHistogram, SetIdx,
    SpillDecision, SpillVictim,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Role a cache (or one of its monitor sets) plays under DSR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DsrRole {
    /// Spills last-copy victims; never receives.
    Spiller,
    /// Accepts spilled lines; never spills.
    Receiver,
    /// Neither (only possible under [`DsrConfig::three_state`]).
    Neutral,
}

/// Configuration of a [`DsrPolicy`].
#[derive(Clone, Debug)]
pub struct DsrConfig {
    /// Number of cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Sets per Set Dueling Monitor (the paper uses 32).
    pub sdm_sets: u32,
    /// PSEL width in bits (10 in Qureshi's design).
    pub psel_bits: u32,
    /// Use the 2-MSB three-state classification (DSR-3S of Fig. 5):
    /// `11` = spiller, `00` = receiver, otherwise neutral.
    pub three_state: bool,
    /// RNG seed (random receiver choice among candidates).
    pub seed: u64,
}

impl DsrConfig {
    /// The paper's DSR configuration: 32-set SDMs, 10-bit PSEL, 2 states.
    /// Smaller caches shrink the monitors to keep the residue space valid.
    pub fn dsr(cores: usize, sets: u32) -> Self {
        DsrConfig {
            cores,
            sets,
            sdm_sets: crate::dip::fitting_sdm(cores, sets),
            psel_bits: 10,
            three_state: false,
            seed: 0xD52,
        }
    }

    /// DSR-3S: the three-state variant of Fig. 5.
    pub fn dsr_3s(cores: usize, sets: u32) -> Self {
        let mut c = Self::dsr(cores, sets);
        c.three_state = true;
        c
    }

    /// Builds the policy.
    pub fn build(self) -> DsrPolicy {
        DsrPolicy::new(self)
    }
}

/// The DSR policy.
pub struct DsrPolicy {
    cfg: DsrConfig,
    name: &'static str,
    psel: Vec<u32>,
    psel_max: u32,
    /// `sets / sdm_sets`: sets with index `s % stride == 2i` monitor
    /// cache `i` as a spiller, `2i + 1` as a receiver.
    stride: u32,
    rng: SmallRng,
}

impl std::fmt::Debug for DsrPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsrPolicy")
            .field("name", &self.name)
            .field("psel", &self.psel)
            .finish()
    }
}

impl DsrPolicy {
    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if the monitor assignment does not fit: `sets / sdm_sets`
    /// must be a power of two at least `2 * cores`.
    pub fn new(cfg: DsrConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(
            cfg.sdm_sets > 0 && cfg.sets.is_multiple_of(cfg.sdm_sets),
            "sdm_sets must divide the set count"
        );
        let stride = cfg.sets / cfg.sdm_sets;
        assert!(
            stride >= 2 * cfg.cores as u32,
            "not enough distinct set indices for {} caches' monitors",
            cfg.cores
        );
        let psel_max = (1u32 << cfg.psel_bits) - 1;
        DsrPolicy {
            name: if cfg.three_state { "DSR-3S" } else { "DSR" },
            psel: vec![psel_max.div_ceil(2); cfg.cores],
            psel_max,
            stride,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// Which cache's monitor this set index belongs to, if any:
    /// `(cache, is_spiller_sdm)`.
    fn monitor_of(&self, set: u32) -> Option<(usize, bool)> {
        let r = set % self.stride;
        let cache = (r / 2) as usize;
        if cache < self.cfg.cores {
            Some((cache, r.is_multiple_of(2)))
        } else {
            None
        }
    }

    /// Follower role of `cache` from its PSEL.
    ///
    /// Misses at the cache's spiller-monitor indices *decrement* PSEL (the
    /// spilling experiment lost lines it needed — evidence for receiving);
    /// receiver-monitor misses increment it. A low PSEL therefore means
    /// "receive", a high one "spill" — which is what makes the paper's
    /// DSR-3S MSB encoding (11 = spiller, 00 = receiver) come out right.
    pub fn follower_role(&self, cache: CoreId) -> DsrRole {
        let p = self.psel[cache.index()];
        if self.cfg.three_state {
            // Two MSBs: 11 spiller, 00 receiver, else neutral (Fig. 5).
            match p >> (self.cfg.psel_bits - 2) {
                0b11 => DsrRole::Spiller,
                0b00 => DsrRole::Receiver,
                _ => DsrRole::Neutral,
            }
        } else if p > self.psel_max / 2 {
            DsrRole::Spiller
        } else {
            DsrRole::Receiver
        }
    }

    /// Effective role of `cache` at `set`, accounting for monitor sets:
    /// the owner plays the sampled policy, every peer plays the
    /// complementary one, and non-monitor sets follow the PSEL winner.
    pub fn role(&self, cache: CoreId, set: SetIdx) -> DsrRole {
        match self.monitor_of(set.0) {
            Some((c, spiller)) if c == cache.index() => {
                if spiller {
                    DsrRole::Spiller
                } else {
                    DsrRole::Receiver
                }
            }
            Some((_, spiller)) => {
                // Peer of the monitor owner: complementary role.
                if spiller {
                    DsrRole::Receiver
                } else {
                    DsrRole::Spiller
                }
            }
            None => self.follower_role(cache),
        }
    }

    /// Current PSEL value of a cache (for inspection in tests/benches).
    pub fn psel(&self, cache: CoreId) -> u32 {
        self.psel[cache.index()]
    }
}

impl LlcPolicy for DsrPolicy {
    fn name(&self) -> &str {
        self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, _core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        if outcome.is_hit() {
            return;
        }
        // A miss anywhere in the chip at a monitored index updates the
        // monitor owner's PSEL: misses at spiller-monitor indices are
        // evidence *for* receiving (the spilling experiment lost a line it
        // needed), so they push PSEL down; receiver-monitor misses push up.
        // Accesses later served from a peer cache are chip-level *hits* in
        // DSR's accounting — they are compensated in `note_remote_hit`.
        if let Some((owner, spiller_sdm)) = self.monitor_of(set.0) {
            let p = &mut self.psel[owner];
            if spiller_sdm {
                *p = p.saturating_sub(1);
            } else {
                *p = (*p + 1).min(self.psel_max);
            }
        }
    }

    fn note_remote_hit(&mut self, _owner: CoreId, set: SetIdx, _was_spilled: bool) {
        // The local miss recorded for this access was served on chip:
        // reverse the PSEL step so the duel measures chip-level misses —
        // the benefit of spilling is precisely that such accesses stop
        // being chip misses.
        if let Some((owner, spiller_sdm)) = self.monitor_of(set.0) {
            let p = &mut self.psel[owner];
            if spiller_sdm {
                *p = (*p + 1).min(self.psel_max);
            } else {
                *p = p.saturating_sub(1);
            }
        }
    }

    fn spill_decision(&mut self, from: CoreId, set: SetIdx, _victim: SpillVictim) -> SpillDecision {
        if self.role(from, set) != DsrRole::Spiller {
            return SpillDecision::NotSpiller;
        }
        let candidates: Vec<CoreId> = (0..self.cfg.cores)
            .filter(|&i| i != from.index())
            .map(|i| CoreId(i as u8))
            .filter(|&c| self.role(c, set) == DsrRole::Receiver)
            .collect();
        match candidates.len() {
            0 => SpillDecision::NoCandidate,
            1 => SpillDecision::Spill(candidates[0]),
            n => SpillDecision::Spill(candidates[self.rng.gen_range(0..n)]),
        }
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut snap = PolicySnapshot::new(self.name);
        snap.per_core = (0..self.cfg.cores)
            .map(|i| {
                let id = CoreId(i as u8);
                let mut cs = CoreSnapshot::new(id);
                let mut h = RoleHistogram::default();
                for set in 0..self.cfg.sets {
                    match self.role(id, SetIdx(set)) {
                        DsrRole::Receiver => h.receiver += 1,
                        DsrRole::Neutral => h.neutral += 1,
                        DsrRole::Spiller => h.spiller += 1,
                    }
                }
                cs.roles = Some(h);
                cs.psel = Some(self.psel[i]);
                cs.follower_mode = Some(match self.follower_role(id) {
                    DsrRole::Spiller => "spiller",
                    DsrRole::Receiver => "receiver",
                    DsrRole::Neutral => "neutral",
                });
                cs
            })
            .collect();
        snap
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_str(self.name);
        crate::snap_util::save_rng(w, &self.rng);
        w.put_u64(self.psel.len() as u64);
        for &p in &self.psel {
            w.put_u32(p);
        }
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        let name = r.get_str()?;
        if name != self.name {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "policy variant: snapshot \"{name}\", live \"{}\"",
                self.name
            )));
        }
        self.rng = crate::snap_util::load_rng(r)?;
        let n = r.get_u64()?;
        if n != self.psel.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "DSR PSEL count: snapshot {n}, live {}",
                self.psel.len()
            )));
        }
        for p in &mut self.psel {
            let v = r.get_u32()?;
            if v > self.psel_max {
                return Err(cmp_snap::SnapError::Corrupt(format!(
                    "PSEL value {v} exceeds maximum {}",
                    self.psel_max
                )));
            }
            *p = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SETS: u32 = 4096;

    fn miss(p: &mut DsrPolicy, core: u8, set: u32) {
        p.record_access(CoreId(core), SetIdx(set), AccessOutcome::Miss);
    }

    #[test]
    fn monitor_assignment_is_disjoint() {
        let p = DsrConfig::dsr(4, SETS).build();
        // stride = 4096/32 = 128; cache 2's spiller monitor: s % 128 == 4.
        assert_eq!(p.monitor_of(4), Some((2, true)));
        assert_eq!(p.monitor_of(5), Some((2, false)));
        assert_eq!(p.monitor_of(132), Some((2, true)));
        // Indices beyond 2*cores are followers.
        assert_eq!(p.monitor_of(100), None);
        // Each monitor has exactly sdm_sets members.
        let members = (0..SETS)
            .filter(|&s| p.monitor_of(s) == Some((0, true)))
            .count();
        assert_eq!(members, 32);
    }

    #[test]
    fn monitor_sets_have_fixed_roles() {
        let p = DsrConfig::dsr(2, SETS).build();
        assert_eq!(p.role(CoreId(0), SetIdx(0)), DsrRole::Spiller);
        assert_eq!(p.role(CoreId(0), SetIdx(1)), DsrRole::Receiver);
        // Peers play the complementary role at monitored indices, keeping
        // the sampled policies active chip-wide.
        assert_eq!(p.role(CoreId(1), SetIdx(0)), DsrRole::Receiver);
        assert_eq!(p.role(CoreId(1), SetIdx(1)), DsrRole::Spiller);
        // Unmonitored indices follow PSEL.
        assert_eq!(p.role(CoreId(1), SetIdx(100)), p.follower_role(CoreId(1)));
    }

    #[test]
    fn psel_learns_to_receive() {
        let mut p = DsrConfig::dsr(2, SETS).build();
        // Hammer cache 0's spiller-monitor indices with misses: receiving
        // would have helped, PSEL rises, cache 0 becomes a receiver.
        for i in 0..600 {
            miss(&mut p, 0, (i % 32) * 128);
        }
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Receiver);
        // And the other direction.
        for i in 0..1200 {
            miss(&mut p, 0, (i % 32) * 128 + 1);
        }
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Spiller);
    }

    #[test]
    fn peer_misses_update_the_owner_psel() {
        let mut p = DsrConfig::dsr(2, SETS).build();
        let before = p.psel(CoreId(0));
        miss(&mut p, 1, 0); // cache 1 misses in cache 0's spiller monitor
        assert_eq!(p.psel(CoreId(0)), before - 1);
        assert_eq!(p.psel(CoreId(1)), (1 << 9), "cache 1's PSEL untouched");
    }

    #[test]
    fn spiller_spills_to_receiver() {
        let mut p = DsrConfig::dsr(2, SETS).build();
        // Make cache 1 a receiver.
        for i in 0..600 {
            miss(&mut p, 1, (i % 32) * 128 + 2); // cache 1's spiller monitor
        }
        assert_eq!(p.follower_role(CoreId(1)), DsrRole::Receiver);
        // Cache 0 in a spiller-monitor set must spill to cache 1.
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::Spill(CoreId(1))
        );
    }

    #[test]
    fn no_candidate_when_all_spillers() {
        let mut p = DsrConfig::dsr(2, SETS).build();
        for i in 0..1200 {
            miss(&mut p, 0, (i % 32) * 128 + 1); // receiver monitors miss a lot
            miss(&mut p, 1, (i % 32) * 128 + 3);
        }
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Spiller);
        assert_eq!(p.follower_role(CoreId(1)), DsrRole::Spiller);
        // From a follower set, cache 0 spills but no one receives.
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(100), SpillVictim::default()),
            SpillDecision::NoCandidate
        );
    }

    #[test]
    fn three_state_starts_neutral() {
        let mut p = DsrConfig::dsr_3s(2, SETS).build();
        assert_eq!(p.name(), "DSR-3S");
        // PSEL starts mid-range: 2 MSBs are 10 -> neutral.
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Neutral);
        // Neutral followers neither spill...
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(100), SpillVictim::default()),
            SpillDecision::NotSpiller
        );
        // ...but monitor indices stay active: cache 0's spiller-SDM set 0
        // spills into the peer (forced receiver there).
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::Spill(CoreId(1))
        );
    }

    #[test]
    fn three_state_reaches_extremes() {
        let mut p = DsrConfig::dsr_3s(2, SETS).build();
        for i in 0..1024 {
            miss(&mut p, 0, (i % 32) * 128); // spiller monitor misses
        }
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Receiver);
        for i in 0..2048 {
            miss(&mut p, 0, (i % 32) * 128 + 1);
        }
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Spiller);
    }

    #[test]
    fn hits_do_not_move_psel() {
        let mut p = DsrConfig::dsr(2, SETS).build();
        let before = p.psel(CoreId(0));
        p.record_access(
            CoreId(0),
            SetIdx(0),
            AccessOutcome::Hit {
                spilled: false,
                depth: 0,
            },
        );
        assert_eq!(p.psel(CoreId(0)), before);
    }

    #[test]
    #[should_panic(expected = "not enough distinct set indices")]
    fn too_many_cores_for_monitors_panics() {
        // 64 sets / 32 per SDM = stride 2 < 2*2 cores (forced sdm size).
        let mut cfg = DsrConfig::dsr(2, 64);
        cfg.sdm_sets = 32;
        let _ = cfg.build();
    }

    #[test]
    fn small_caches_shrink_the_monitors() {
        // 64 sets, 2 cores: the constructor shrinks the monitors until the
        // residue space fits, so building succeeds.
        let p = DsrConfig::dsr(2, 64).build();
        let _ = p.role(CoreId(0), SetIdx(0));
    }
}

#[cfg(test)]
mod remote_hit_tests {
    use super::*;

    #[test]
    fn remote_hits_cancel_the_miss_in_the_duel() {
        let mut p = DsrConfig::dsr(2, 4096).build();
        let before = p.psel(CoreId(0));
        // A miss at cache 0's spiller monitor that is then served remotely
        // must leave PSEL unchanged: it is not a chip-level miss.
        p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        p.note_remote_hit(CoreId(1), SetIdx(0), true);
        assert_eq!(p.psel(CoreId(0)), before);
    }

    #[test]
    fn provider_cache_learns_to_receive() {
        // Cache 1 is hungry: it misses everywhere. At cache 0's
        // receiver-monitor indices (set % 128 == 1) those misses are served
        // by cache 0's forced receiving; at cache 0's spiller-monitor
        // indices (set % 128 == 0) they go to memory. PSEL(0) must drift
        // toward Receiver (low).
        let mut p = DsrConfig::dsr_3s(2, 4096).build();
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Neutral);
        for i in 0..600u32 {
            let sdm = (i % 32) * 128;
            // Unaided miss in the spiller-monitor index.
            p.record_access(CoreId(1), SetIdx(sdm), AccessOutcome::Miss);
            // Aided miss in the receiver-monitor index: remote hit follows.
            p.record_access(CoreId(1), SetIdx(sdm + 1), AccessOutcome::Miss);
            p.note_remote_hit(CoreId(0), SetIdx(sdm + 1), true);
        }
        assert_eq!(p.follower_role(CoreId(0)), DsrRole::Receiver);
    }
}
