//! DIP — Dynamic Insertion Policy (Qureshi et al., ISCA 2007).
//!
//! Per cache, set duelling decides between traditional MRU insertion ("LRU
//! policy") and the Bimodal Insertion Policy (BIP: LRU insertion except with
//! probability ε). The ASCC paper combines DIP with DSR ("DSR+DIP", §6) as
//! one of its comparison points: DIP supplies the *insertion* decision while
//! DSR supplies the *spill* decision.
//!
//! The monitor sets are chosen at residues that never collide with the DSR
//! monitors built by [`crate::DsrConfig`] (which occupy the low residues
//! `0 .. 2*cores` of the stride), so the two duelling mechanisms compose.

use cmp_cache::{
    AccessOutcome, CoreId, CoreSnapshot, InsertPos, LlcPolicy, PolicySnapshot, SetIdx,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`DipPolicy`].
#[derive(Clone, Debug)]
pub struct DipConfig {
    /// Number of cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Sets per duelling monitor (32, as in the paper's DSR setup).
    pub sdm_sets: u32,
    /// PSEL width in bits.
    pub psel_bits: u32,
    /// BIP's probability of MRU insertion (the paper uses 1/32).
    pub epsilon: f64,
    /// RNG seed for ε decisions.
    pub seed: u64,
}

impl DipConfig {
    /// The paper's DIP configuration (32-set monitors on the 4096-set
    /// baseline; smaller caches shrink the monitors so that the residue
    /// space still fits next to DSR's).
    pub fn dip(cores: usize, sets: u32) -> Self {
        DipConfig {
            cores,
            sets,
            sdm_sets: fitting_sdm(cores, sets),
            psel_bits: 10,
            epsilon: 1.0 / 32.0,
            seed: 0xD1B,
        }
    }

    /// Builds the policy.
    pub fn build(self) -> DipPolicy {
        DipPolicy::new(self)
    }
}

/// Largest power-of-two monitor size (at most 32 sets) whose residue
/// stride leaves room for the DSR monitors of `cores` caches plus DIP's
/// two residues.
pub(crate) fn fitting_sdm(cores: usize, sets: u32) -> u32 {
    let needed = 2 * cores as u32 + 2;
    let mut sdm = 32u32.min(sets);
    while sdm > 1 && sets / sdm < needed {
        sdm /= 2;
    }
    sdm
}

/// Which insertion flavour a set is operating under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DipMode {
    /// Traditional MRU insertion.
    Lru,
    /// Bimodal insertion (mostly LRU-position fills).
    Bip,
}

/// The DIP policy: per-cache insertion duelling, no spilling.
pub struct DipPolicy {
    cfg: DipConfig,
    psel: Vec<u32>,
    psel_max: u32,
    stride: u32,
    rng: SmallRng,
}

impl std::fmt::Debug for DipPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DipPolicy")
            .field("psel", &self.psel)
            .finish()
    }
}

impl DipPolicy {
    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if the monitors do not fit (`sets / sdm_sets` must leave two
    /// residues above the DSR range, i.e. be at least `2 * cores + 2`).
    pub fn new(cfg: DipConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(
            cfg.sdm_sets > 0 && cfg.sets.is_multiple_of(cfg.sdm_sets),
            "sdm_sets must divide the set count"
        );
        let stride = cfg.sets / cfg.sdm_sets;
        assert!(
            stride >= 2 * cfg.cores as u32 + 2,
            "not enough residues for DIP monitors next to DSR's"
        );
        let psel_max = (1u32 << cfg.psel_bits) - 1;
        DipPolicy {
            // Start at the LRU side of the midpoint: caches begin with the
            // traditional insertion policy until BIP proves itself.
            psel: vec![psel_max / 2; cfg.cores],
            psel_max,
            stride,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// The duelling mode of `cache` at `set`: monitors are pinned, followers
    /// take the PSEL winner.
    pub fn mode(&self, cache: CoreId, set: SetIdx) -> DipMode {
        match self.monitor_of(set.0) {
            Some(mode) => mode,
            None => self.follower_mode(cache),
        }
    }

    /// Follower mode of a cache: high PSEL means the LRU-monitor misses
    /// dominate, so BIP wins.
    pub fn follower_mode(&self, cache: CoreId) -> DipMode {
        if self.psel[cache.index()] > self.psel_max / 2 {
            DipMode::Bip
        } else {
            DipMode::Lru
        }
    }

    /// Current PSEL value of a cache.
    pub fn psel(&self, cache: CoreId) -> u32 {
        self.psel[cache.index()]
    }

    /// DIP monitors sit at the two residues just above the DSR monitors.
    fn monitor_of(&self, set: u32) -> Option<DipMode> {
        let r = set % self.stride;
        if r == self.stride - 2 {
            Some(DipMode::Lru)
        } else if r == self.stride - 1 {
            Some(DipMode::Bip)
        } else {
            None
        }
    }

    /// Draws an insertion position for a BIP-mode fill.
    pub fn bip_pos(&mut self) -> InsertPos {
        if self.rng.gen::<f64>() < self.cfg.epsilon {
            InsertPos::Mru
        } else {
            InsertPos::Lru
        }
    }
}

impl LlcPolicy for DipPolicy {
    fn name(&self) -> &str {
        "DIP"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        if outcome.is_hit() {
            return;
        }
        // DIP duels within one cache: only the owner's misses count.
        match self.monitor_of(set.0) {
            Some(DipMode::Lru) => {
                let p = &mut self.psel[core.index()];
                *p = (*p + 1).min(self.psel_max);
            }
            Some(DipMode::Bip) => {
                let p = &mut self.psel[core.index()];
                *p = p.saturating_sub(1);
            }
            None => {}
        }
    }

    fn demand_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        match self.mode(core, set) {
            DipMode::Lru => InsertPos::Mru,
            DipMode::Bip => self.bip_pos(),
        }
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut snap = PolicySnapshot::new("DIP");
        snap.per_core = (0..self.cfg.cores)
            .map(|i| {
                let id = CoreId(i as u8);
                let mut cs = CoreSnapshot::new(id);
                cs.psel = Some(self.psel[i]);
                cs.follower_mode = Some(match self.follower_mode(id) {
                    DipMode::Lru => "lru",
                    DipMode::Bip => "bip",
                });
                cs
            })
            .collect();
        snap
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        crate::snap_util::save_rng(w, &self.rng);
        w.put_u64(self.psel.len() as u64);
        for &p in &self.psel {
            w.put_u32(p);
        }
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        self.rng = crate::snap_util::load_rng(r)?;
        let n = r.get_u64()?;
        if n != self.psel.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "DIP PSEL count: snapshot {n}, live {}",
                self.psel.len()
            )));
        }
        for p in &mut self.psel {
            let v = r.get_u32()?;
            if v > self.psel_max {
                return Err(cmp_snap::SnapError::Corrupt(format!(
                    "PSEL value {v} exceeds maximum {}",
                    self.psel_max
                )));
            }
            *p = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::SpillVictim;

    const SETS: u32 = 4096;

    fn miss(p: &mut DipPolicy, core: u8, set: u32) {
        p.record_access(CoreId(core), SetIdx(set), AccessOutcome::Miss);
    }

    #[test]
    fn monitors_avoid_dsr_residues() {
        let p = DipConfig::dip(4, SETS).build();
        // Stride 128; DSR uses residues 0..8 for 4 cores; DIP uses 126/127.
        assert_eq!(p.monitor_of(126), Some(DipMode::Lru));
        assert_eq!(p.monitor_of(127), Some(DipMode::Bip));
        assert_eq!(p.monitor_of(0), None);
        assert_eq!(p.monitor_of(7), None);
    }

    #[test]
    fn learns_bip_under_thrashing() {
        let mut p = DipConfig::dip(2, SETS).build();
        assert_eq!(p.follower_mode(CoreId(0)), DipMode::Lru);
        // LRU-monitor sets miss a lot: BIP wins.
        for i in 0..600 {
            miss(&mut p, 0, (i % 32) * 128 + 126);
        }
        assert_eq!(p.follower_mode(CoreId(0)), DipMode::Bip);
        // And back when BIP monitors miss more.
        for i in 0..1200 {
            miss(&mut p, 0, (i % 32) * 128 + 127);
        }
        assert_eq!(p.follower_mode(CoreId(0)), DipMode::Lru);
    }

    #[test]
    fn duelling_is_per_cache() {
        let mut p = DipConfig::dip(2, SETS).build();
        for i in 0..600 {
            miss(&mut p, 0, (i % 32) * 128 + 126);
        }
        assert_eq!(p.follower_mode(CoreId(0)), DipMode::Bip);
        assert_eq!(p.follower_mode(CoreId(1)), DipMode::Lru);
    }

    #[test]
    fn monitor_sets_insert_per_their_policy() {
        let mut p = DipConfig::dip(2, SETS).build();
        assert_eq!(p.demand_insert_pos(CoreId(0), SetIdx(126)), InsertPos::Mru);
        let lru_fills = (0..200)
            .filter(|_| p.demand_insert_pos(CoreId(0), SetIdx(127)) == InsertPos::Lru)
            .count();
        assert!(
            lru_fills > 150,
            "BIP monitor fills deep only {lru_fills}/200"
        );
    }

    #[test]
    fn followers_follow_psel() {
        let mut p = DipConfig::dip(2, SETS).build();
        assert_eq!(p.demand_insert_pos(CoreId(0), SetIdx(50)), InsertPos::Mru);
        for i in 0..600 {
            miss(&mut p, 0, (i % 32) * 128 + 126);
        }
        let deep = (0..200)
            .filter(|_| p.demand_insert_pos(CoreId(0), SetIdx(50)) == InsertPos::Lru)
            .count();
        assert!(deep > 150, "followers should be in BIP mode: {deep}/200");
    }

    #[test]
    fn dip_never_spills() {
        let mut p = DipConfig::dip(2, SETS).build();
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            cmp_cache::SpillDecision::NotSpiller
        );
    }
}
