//! DSR+DIP — the combined comparison point of §6.
//!
//! "a combination of DSR and DIP, where DIP decides the insertion policy
//! for the global cache (either BIP or the traditional LRU one) depending on
//! which policy is working better using also set dueling". Spill decisions
//! come from [`crate::DsrPolicy`], insertion positions from
//! [`crate::DipPolicy`]. Crucially — and this is the behaviour the ASCC
//! paper criticises — the BIP insertion is *not* spilling-aware: a deep
//! (LRU) insertion can be displaced immediately by an arriving spill, and a
//! just-inserted line can itself be spilled before its single reuse chance.

use crate::dip::{DipConfig, DipPolicy};
use crate::dsr::{DsrConfig, DsrPolicy};
use cmp_cache::{
    AccessOutcome, CoreId, InsertPos, LlcPolicy, PolicySnapshot, SetIdx, SpillDecision, SpillVictim,
};

/// The combined DSR+DIP policy.
#[derive(Debug)]
pub struct DsrDipPolicy {
    dsr: DsrPolicy,
    dip: DipPolicy,
}

impl DsrDipPolicy {
    /// Builds the combination with the paper's parameters.
    ///
    /// # Panics
    ///
    /// Panics if the monitors of either mechanism do not fit the set count
    /// (see [`DsrPolicy::new`] and [`DipPolicy::new`]).
    pub fn new(cores: usize, sets: u32) -> Self {
        DsrDipPolicy {
            dsr: DsrConfig::dsr(cores, sets).build(),
            dip: DipConfig::dip(cores, sets).build(),
        }
    }

    /// The DSR half (for inspection).
    pub fn dsr(&self) -> &DsrPolicy {
        &self.dsr
    }

    /// The DIP half (for inspection).
    pub fn dip(&self) -> &DipPolicy {
        &self.dip
    }
}

impl LlcPolicy for DsrDipPolicy {
    fn name(&self) -> &str {
        "DSR+DIP"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        self.dsr.record_access(core, set, outcome);
        self.dip.record_access(core, set, outcome);
    }

    fn demand_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        self.dip.demand_insert_pos(core, set)
    }

    fn note_remote_hit(&mut self, owner: CoreId, set: SetIdx, was_spilled: bool) {
        self.dsr.note_remote_hit(owner, set, was_spilled);
    }

    fn spill_decision(&mut self, from: CoreId, set: SetIdx, victim: SpillVictim) -> SpillDecision {
        self.dsr.spill_decision(from, set, victim)
    }

    fn snapshot(&self) -> PolicySnapshot {
        // Merge the halves: DSR supplies roles and the spill duel, DIP the
        // insertion duel. Per-core PSELs come from DSR (the spill decision
        // is what the combined policy is compared on); DIP's follower mode
        // is appended so neither duel is hidden.
        let dsr = self.dsr.snapshot();
        let dip = self.dip.snapshot();
        let mut snap = PolicySnapshot::new("DSR+DIP");
        snap.per_core = dsr
            .per_core
            .into_iter()
            .zip(dip.per_core)
            .map(|(mut d, i)| {
                d.follower_mode = match (d.follower_mode, i.follower_mode) {
                    (Some(role), Some(mode)) => match (role, mode) {
                        ("spiller", "lru") => Some("spiller+lru"),
                        ("spiller", "bip") => Some("spiller+bip"),
                        ("receiver", "lru") => Some("receiver+lru"),
                        ("receiver", "bip") => Some("receiver+bip"),
                        ("neutral", "lru") => Some("neutral+lru"),
                        _ => Some("neutral+bip"),
                    },
                    (r, _) => r,
                };
                d
            })
            .collect();
        snap
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        self.dsr.save_state(w);
        self.dip.save_state(w);
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        self.dsr.load_state(r)?;
        self.dip.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dip::DipMode;
    use crate::dsr::DsrRole;

    const SETS: u32 = 4096;

    #[test]
    fn composes_both_mechanisms() {
        let mut p = DsrDipPolicy::new(2, SETS);
        assert_eq!(p.name(), "DSR+DIP");
        // Misses in DSR spiller monitors train DSR; misses in DIP LRU
        // monitors train DIP; one access stream feeds both.
        for i in 0..600 {
            p.record_access(CoreId(0), SetIdx((i % 32) * 128), AccessOutcome::Miss);
            p.record_access(CoreId(0), SetIdx((i % 32) * 128 + 126), AccessOutcome::Miss);
        }
        assert_eq!(p.dsr().follower_role(CoreId(0)), DsrRole::Receiver);
        assert_eq!(p.dip().follower_mode(CoreId(0)), DipMode::Bip);
    }

    #[test]
    fn insertion_comes_from_dip_spills_from_dsr() {
        let mut p = DsrDipPolicy::new(2, SETS);
        // Train cache 0 into BIP mode.
        for i in 0..600 {
            p.record_access(CoreId(0), SetIdx((i % 32) * 128 + 126), AccessOutcome::Miss);
        }
        let deep = (0..100)
            .filter(|_| p.demand_insert_pos(CoreId(0), SetIdx(40)) == InsertPos::Lru)
            .count();
        assert!(deep > 70);
        // DSR spiller-monitor set of cache 0 still spills (cache 1 is
        // a receiver by default PSEL? role depends on psel start: make it
        // a receiver explicitly).
        for i in 0..600 {
            p.record_access(CoreId(1), SetIdx((i % 32) * 128 + 2), AccessOutcome::Miss);
        }
        assert!(matches!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::Spill(_)
        ));
    }

    #[test]
    fn no_swap_in_dsr_dip() {
        let p = DsrDipPolicy::new(2, SETS);
        assert!(!p.swap_enabled());
    }
}
