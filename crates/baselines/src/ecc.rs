//! Elastic Cooperative Caching (Herrero, González, Canal — ISCA 2010).
//!
//! ECC splits every set into a *private* region, holding lines evicted from
//! the local upper level, and a *shared* region, holding lines spilled by
//! neighbour caches; the split is re-evaluated periodically per cache. As
//! in the ASCC paper's §5 implementation note, we track the shared state of
//! lines "with an additional bit per block" (the `spilled` flag of
//! [`cmp_cache::CacheLine`]) rather than the original distributed
//! structures, which gives this ECC *more* accuracy than the original.
//!
//! The repartitioning rule is a marginal-utility comparison: per epoch,
//! hits on local lines deep in the recency stack (at depth at or beyond the
//! private quota — hits that only exist because the private region is at
//! least this large) argue for growing the private region, while remote
//! hits served from the cache's shared lines argue for growing the shared
//! region. Each region always keeps at least one way — the space-wasting
//! floor the ASCC paper criticises in §2.

use cmp_cache::{
    AccessOutcome, CoreId, CoreSnapshot, FillKind, LlcPolicy, PolicySnapshot, SetIdx, SetRef,
    SpillDecision, SpillVictim, WayIdx,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of an [`EccPolicy`].
#[derive(Clone, Debug)]
pub struct EccConfig {
    /// Number of cores / private LLCs.
    pub cores: usize,
    /// LLC associativity.
    pub ways: u16,
    /// Local accesses per cache between repartition decisions.
    pub epoch_accesses: u64,
    /// RNG seed (tie breaking).
    pub seed: u64,
}

impl EccConfig {
    /// ECC with the evaluation's parameters (epoch of 100 000 accesses,
    /// matching the paper's other periodic mechanisms).
    pub fn ecc(cores: usize, ways: u16) -> Self {
        EccConfig {
            cores,
            ways,
            epoch_accesses: 100_000,
            seed: 0xECC,
        }
    }

    /// Builds the policy.
    pub fn build(self) -> EccPolicy {
        EccPolicy::new(self)
    }
}

#[derive(Clone, Copy, Debug)]
struct EccCache {
    /// Ways reserved for local (private) lines; `ways - private_quota` are
    /// the shared region. Always in `[1, ways - 1]`.
    private_quota: u16,
    accesses: u64,
    deep_private_hits: u64,
    remote_shared_serves: u64,
}

/// The ECC policy.
pub struct EccPolicy {
    cfg: EccConfig,
    caches: Vec<EccCache>,
    rng: SmallRng,
    repartitions: u64,
}

impl std::fmt::Debug for EccPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EccPolicy")
            .field(
                "private_quotas",
                &self
                    .caches
                    .iter()
                    .map(|c| c.private_quota)
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl EccPolicy {
    /// Builds the policy; every cache starts with an even split.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `ways < 2` (both regions need a way).
    pub fn new(cfg: EccConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(cfg.ways >= 2, "ECC needs at least one way per region");
        assert!(cfg.epoch_accesses > 0, "epoch must be nonzero");
        EccPolicy {
            caches: vec![
                EccCache {
                    private_quota: cfg.ways / 2,
                    accesses: 0,
                    deep_private_hits: 0,
                    remote_shared_serves: 0,
                };
                cfg.cores
            ],
            rng: SmallRng::seed_from_u64(cfg.seed),
            repartitions: 0,
            cfg,
        }
    }

    /// Current private-region size of a cache.
    pub fn private_quota(&self, core: CoreId) -> u16 {
        self.caches[core.index()].private_quota
    }

    /// Current shared-region size of a cache.
    pub fn shared_quota(&self, core: CoreId) -> u16 {
        self.cfg.ways - self.caches[core.index()].private_quota
    }

    /// Total repartition steps taken (behaviour stats).
    pub fn repartitions(&self) -> u64 {
        self.repartitions
    }

    fn epoch(&mut self, core: usize) {
        let ways = self.cfg.ways;
        let c = &mut self.caches[core];
        if c.deep_private_hits > c.remote_shared_serves && c.private_quota < ways - 1 {
            c.private_quota += 1;
            self.repartitions += 1;
        } else if c.remote_shared_serves > c.deep_private_hits && c.private_quota > 1 {
            c.private_quota -= 1;
            self.repartitions += 1;
        }
        c.deep_private_hits = 0;
        c.remote_shared_serves = 0;
    }
}

impl LlcPolicy for EccPolicy {
    fn name(&self) -> &str {
        "ECC"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        let _ = set;
        let quota = self.caches[core.index()].private_quota;
        let c = &mut self.caches[core.index()];
        if let AccessOutcome::Hit { spilled, depth } = outcome {
            if !spilled && depth >= quota.saturating_sub(1) {
                c.deep_private_hits += 1;
            }
        }
        c.accesses += 1;
        if c.accesses.is_multiple_of(self.cfg.epoch_accesses) {
            self.epoch(core.index());
        }
    }

    fn note_remote_hit(&mut self, owner: CoreId, _set: SetIdx, was_spilled: bool) {
        if was_spilled {
            self.caches[owner.index()].remote_shared_serves += 1;
        }
    }

    fn choose_victim(
        &mut self,
        core: CoreId,
        _set: SetIdx,
        kind: FillKind,
        contents: SetRef<'_>,
    ) -> WayIdx {
        if let Some(w) = contents.invalid_way() {
            return w;
        }
        let shared_quota = self.shared_quota(core);
        let shared_count = contents.count_where(|l| l.spilled);
        match kind {
            FillKind::Demand | FillKind::Prefetch => {
                // Private fill: evict from the private region unless the
                // shared region is over quota.
                if shared_count > shared_quota {
                    contents
                        .lru_valid_where(|l| l.spilled)
                        .unwrap_or_else(|| contents.default_victim())
                } else {
                    contents
                        .lru_valid_where(|l| !l.spilled)
                        .unwrap_or_else(|| contents.default_victim())
                }
            }
            FillKind::Spill => {
                // Shared fill: stay within the shared quota.
                if shared_count >= shared_quota {
                    contents
                        .lru_valid_where(|l| l.spilled)
                        .unwrap_or_else(|| contents.default_victim())
                } else {
                    contents
                        .lru_valid_where(|l| !l.spilled)
                        .unwrap_or_else(|| contents.default_victim())
                }
            }
        }
    }

    fn spill_decision(&mut self, from: CoreId, _set: SetIdx, victim: SpillVictim) -> SpillDecision {
        if victim.spilled || self.cfg.cores < 2 {
            // Shared lines die on eviction; no recirculation.
            return SpillDecision::NotSpiller;
        }
        // Spill to the peer offering the largest shared region; ties random.
        let mut best = 0u16;
        let mut candidates: Vec<CoreId> = Vec::new();
        for i in 0..self.cfg.cores {
            if i == from.index() {
                continue;
            }
            let sq = self.cfg.ways - self.caches[i].private_quota;
            match sq.cmp(&best) {
                std::cmp::Ordering::Greater => {
                    best = sq;
                    candidates.clear();
                    candidates.push(CoreId(i as u8));
                }
                std::cmp::Ordering::Equal => candidates.push(CoreId(i as u8)),
                std::cmp::Ordering::Less => {}
            }
        }
        match candidates.len() {
            0 => SpillDecision::NoCandidate,
            1 => SpillDecision::Spill(candidates[0]),
            n => SpillDecision::Spill(candidates[self.rng.gen_range(0..n)]),
        }
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut snap = PolicySnapshot::new("ECC");
        snap.repartitions = Some(self.repartitions);
        snap.per_core = self
            .caches
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut cs = CoreSnapshot::new(CoreId(i as u8));
                cs.private_quota = Some(c.private_quota);
                cs.shared_quota = Some(self.cfg.ways - c.private_quota);
                cs
            })
            .collect();
        snap
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        crate::snap_util::save_rng(w, &self.rng);
        w.put_u64(self.repartitions);
        w.put_u64(self.caches.len() as u64);
        for c in &self.caches {
            w.put_u16(c.private_quota);
            w.put_u64(c.accesses);
            w.put_u64(c.deep_private_hits);
            w.put_u64(c.remote_shared_serves);
        }
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        self.rng = crate::snap_util::load_rng(r)?;
        self.repartitions = r.get_u64()?;
        let n = r.get_u64()?;
        if n != self.caches.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "ECC core count: snapshot {n}, live {}",
                self.caches.len()
            )));
        }
        for c in &mut self.caches {
            let q = r.get_u16()?;
            if q == 0 || q >= self.cfg.ways {
                return Err(cmp_snap::SnapError::Corrupt(format!(
                    "private quota {q} outside [1, {})",
                    self.cfg.ways
                )));
            }
            c.private_quota = q;
            c.accesses = r.get_u64()?;
            c.deep_private_hits = r.get_u64()?;
            c.remote_shared_serves = r.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CacheLine, CacheSet, InsertPos, LineAddr, MesiState};

    fn policy(cores: usize) -> EccPolicy {
        let mut cfg = EccConfig::ecc(cores, 4);
        cfg.epoch_accesses = 10;
        cfg.build()
    }

    fn set_with(private: &[u64], shared: &[u64]) -> CacheSet {
        let mut s = CacheSet::new(4);
        let mut way = 0u16;
        for &p in private {
            s.fill(
                WayIdx(way),
                CacheLine::demand(LineAddr::new(p), MesiState::Exclusive),
                InsertPos::Mru,
            );
            way += 1;
        }
        for &sh in shared {
            s.fill(
                WayIdx(way),
                CacheLine::spilled(LineAddr::new(sh), MesiState::Exclusive),
                InsertPos::Mru,
            );
            way += 1;
        }
        s
    }

    #[test]
    fn starts_with_even_split() {
        let p = policy(2);
        assert_eq!(p.private_quota(CoreId(0)), 2);
        assert_eq!(p.shared_quota(CoreId(0)), 2);
        assert_eq!(p.name(), "ECC");
    }

    #[test]
    fn demand_fills_evict_private_lines() {
        let mut p = policy(2);
        let s = set_with(&[0, 4], &[8, 12]);
        // Shared count (2) == quota (2): demand fill takes the LRU private.
        let v = p.choose_victim(CoreId(0), SetIdx(0), FillKind::Demand, s.view());
        assert_eq!(s.line(v).unwrap().addr, LineAddr::new(0));
        assert!(!s.line(v).unwrap().spilled);
    }

    #[test]
    fn spill_fills_stay_in_shared_region() {
        let mut p = policy(2);
        let s = set_with(&[0, 4], &[8, 12]);
        let v = p.choose_victim(CoreId(0), SetIdx(0), FillKind::Spill, s.view());
        assert!(
            s.line(v).unwrap().spilled,
            "spill must displace a shared line"
        );
        assert_eq!(s.line(v).unwrap().addr, LineAddr::new(8));
    }

    #[test]
    fn spill_fill_can_grow_into_underused_shared_quota() {
        let mut p = policy(2);
        // No shared lines yet: a spill may take a private way (quota is 2).
        let s = set_with(&[0, 4, 8, 12], &[]);
        let v = p.choose_victim(CoreId(0), SetIdx(0), FillKind::Spill, s.view());
        assert!(!s.line(v).unwrap().spilled);
    }

    #[test]
    fn invalid_ways_win() {
        let mut p = policy(2);
        let s = set_with(&[0], &[]);
        let v = p.choose_victim(CoreId(0), SetIdx(0), FillKind::Demand, s.view());
        assert!(s.line(v).is_none());
    }

    #[test]
    fn always_spills_fresh_private_victims() {
        let mut p = policy(3);
        assert!(matches!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::Spill(_)
        ));
        assert_eq!(
            p.spill_decision(
                CoreId(0),
                SetIdx(0),
                SpillVictim {
                    spilled: true,
                    ..SpillVictim::default()
                }
            ),
            SpillDecision::NotSpiller
        );
    }

    #[test]
    fn spills_prefer_larger_shared_regions() {
        let mut p = policy(3);
        // Make cache 1 grow its private region (shrinking shared).
        for _ in 0..30 {
            p.record_access(
                CoreId(1),
                SetIdx(0),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 3,
                },
            );
        }
        assert!(p.private_quota(CoreId(1)) > 2);
        // Spills from cache 0 now go to cache 2 (bigger shared region).
        for _ in 0..10 {
            assert_eq!(
                p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
                SpillDecision::Spill(CoreId(2))
            );
        }
    }

    #[test]
    fn remote_serves_grow_shared_region() {
        let mut p = policy(2);
        for _ in 0..30 {
            p.note_remote_hit(CoreId(0), SetIdx(0), true);
            p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        }
        assert!(p.private_quota(CoreId(0)) < 2);
        assert_eq!(p.private_quota(CoreId(0)), 1, "floor of one way");
        assert!(p.repartitions() > 0);
    }

    #[test]
    fn deep_hits_grow_private_region() {
        let mut p = policy(2);
        for _ in 0..40 {
            p.record_access(
                CoreId(0),
                SetIdx(0),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 2,
                },
            );
        }
        assert_eq!(p.private_quota(CoreId(0)), 3, "ceiling of ways-1");
    }

    #[test]
    fn shallow_hits_do_not_count() {
        let mut p = policy(2);
        for _ in 0..40 {
            p.record_access(
                CoreId(0),
                SetIdx(0),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        assert_eq!(p.private_quota(CoreId(0)), 2, "no repartition signal");
    }
}
