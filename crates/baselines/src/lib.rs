//! # spill-baselines — the comparison policies of the ASCC/AVGCC evaluation
//!
//! Implementations of every prior design the paper compares against, all
//! behind the [`cmp_cache::LlcPolicy`] interface:
//!
//! * [`CcPolicy`] — Cooperative Caching (ISCA 2006): indiscriminate random
//!   spilling of last-copy victims, 1-chance forwarding;
//! * [`DsrPolicy`] — Dynamic Spill-Receive (HPCA 2009): per-cache
//!   spiller/receiver roles learned by set duelling, plus the **DSR-3S**
//!   three-state variant the paper constructs for Fig. 5;
//! * [`DipPolicy`] — Dynamic Insertion Policy (ISCA 2007): per-cache
//!   LRU-vs-BIP insertion duelling;
//! * [`DsrDipPolicy`] — the DSR+DIP combination of §6 (spills from DSR,
//!   insertion from DIP, *not* spilling-aware);
//! * [`EccPolicy`] — Elastic Cooperative Caching (ISCA 2010): per-cache
//!   private/shared way partitions with periodic repartitioning.
//!
//! ## Example
//!
//! ```
//! use cmp_cache::{CoreId, LlcPolicy, SetIdx};
//! use spill_baselines::DsrConfig;
//!
//! let dsr = DsrConfig::dsr(/*cores=*/4, /*sets=*/4096).build();
//! // Monitor sets have pinned roles; followers take the PSEL winner.
//! let _ = dsr.role(CoreId(0), SetIdx(0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cc;
mod dip;
mod dsr;
mod dsr_dip;
mod ecc;

/// Shared snapshot plumbing for the baseline policies' RNG streams.
pub(crate) mod snap_util {
    use cmp_snap::{SnapError, SnapReader, SnapWriter};
    use rand::rngs::SmallRng;

    pub(crate) fn save_rng(w: &mut SnapWriter, rng: &SmallRng) {
        w.put_u64_slice(&rng.state());
    }

    pub(crate) fn load_rng(r: &mut SnapReader<'_>) -> Result<SmallRng, SnapError> {
        let words = r.get_u64_slice()?;
        let s: [u64; 4] = words
            .as_slice()
            .try_into()
            .map_err(|_| SnapError::Corrupt("RNG state is not 4 words".into()))?;
        if s == [0; 4] {
            return Err(SnapError::Corrupt("all-zero RNG state".into()));
        }
        Ok(SmallRng::from_state(s))
    }
}

pub use cc::CcPolicy;
pub use dip::{DipConfig, DipMode, DipPolicy};
pub use dsr::{DsrConfig, DsrPolicy, DsrRole};
pub use dsr_dip::DsrDipPolicy;
pub use ecc::{EccConfig, EccPolicy};
