//! # spill-baselines — the comparison policies of the ASCC/AVGCC evaluation
//!
//! Implementations of every prior design the paper compares against, all
//! behind the [`cmp_cache::LlcPolicy`] interface:
//!
//! * [`CcPolicy`] — Cooperative Caching (ISCA 2006): indiscriminate random
//!   spilling of last-copy victims, 1-chance forwarding;
//! * [`DsrPolicy`] — Dynamic Spill-Receive (HPCA 2009): per-cache
//!   spiller/receiver roles learned by set duelling, plus the **DSR-3S**
//!   three-state variant the paper constructs for Fig. 5;
//! * [`DipPolicy`] — Dynamic Insertion Policy (ISCA 2007): per-cache
//!   LRU-vs-BIP insertion duelling;
//! * [`DsrDipPolicy`] — the DSR+DIP combination of §6 (spills from DSR,
//!   insertion from DIP, *not* spilling-aware);
//! * [`EccPolicy`] — Elastic Cooperative Caching (ISCA 2010): per-cache
//!   private/shared way partitions with periodic repartitioning.
//!
//! ## Example
//!
//! ```
//! use cmp_cache::{CoreId, LlcPolicy, SetIdx};
//! use spill_baselines::DsrConfig;
//!
//! let dsr = DsrConfig::dsr(/*cores=*/4, /*sets=*/4096).build();
//! // Monitor sets have pinned roles; followers take the PSEL winner.
//! let _ = dsr.role(CoreId(0), SetIdx(0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cc;
mod dip;
mod dsr;
mod dsr_dip;
mod ecc;

pub use cc::CcPolicy;
pub use dip::{DipConfig, DipMode, DipPolicy};
pub use dsr::{DsrConfig, DsrPolicy, DsrRole};
pub use dsr_dip::DsrDipPolicy;
pub use ecc::{EccConfig, EccPolicy};
