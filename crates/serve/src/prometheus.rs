//! Prometheus text exposition (version 0.0.4): a writer and a strict
//! linter.
//!
//! The daemon's `/metrics` endpoint renders through [`MetricsText`], and
//! CI scrapes the endpoint once and runs every line through [`lint`] —
//! the contract being that anything this module emits, a real Prometheus
//! scraper would ingest without complaint. The linter is deliberately
//! stricter than Prometheus itself (it also rejects interleaved metric
//! families and samples without a preceding `# TYPE`), because the only
//! producer is in-tree and there is no reason to emit sloppy output.

use std::collections::HashSet;
use std::fmt::Write as _;

/// Metric family kinds the control plane emits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Point-in-time value.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// Builds a text-exposition document family by family.
///
/// ```
/// use ascc_serve::prometheus::{lint, MetricKind, MetricsText};
/// let mut m = MetricsText::new();
/// m.family("jobs_total", "Jobs accepted.", MetricKind::Counter);
/// m.sample("jobs_total", &[("state", "done".into())], 3.0);
/// let text = m.render();
/// assert!(lint(&text).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct MetricsText {
    out: String,
    current_family: Option<String>,
}

impl MetricsText {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a metric family: emits its `# HELP` and `# TYPE` lines.
    /// Samples for the family must follow before the next `family` call.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric name — the producers are
    /// all in-tree, so a bad name is a programming error.
    pub fn family(&mut self, name: &str, help: &str, kind: MetricKind) {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let help_escaped = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {name} {help_escaped}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.as_str());
        self.current_family = Some(name.to_string());
    }

    /// Emits one sample of the currently open family.
    ///
    /// # Panics
    ///
    /// Panics if no family is open, the name does not match it, or a
    /// label name is invalid.
    pub fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        assert_eq!(
            self.current_family.as_deref(),
            Some(name),
            "sample {name:?} outside its family block"
        );
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                assert!(valid_label_name(k), "invalid label name {k:?}");
                if i > 0 {
                    self.out.push(',');
                }
                let escaped = v
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n");
                let _ = write!(self.out, "{k}=\"{escaped}\"");
            }
            self.out.push('}');
        }
        let rendered = if value == value.trunc() && value.abs() < 2f64.powi(53) {
            format!("{}", value as i64)
        } else {
            format!("{value}")
        };
        let _ = writeln!(self.out, " {rendered}");
    }

    /// The finished document (always newline-terminated).
    pub fn render(self) -> String {
        self.out
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Checks a scraped document against the exposition format, returning
/// every problem found (an empty `Ok` means the scrape is clean).
///
/// Enforced rules:
/// * the document ends with a newline;
/// * every line is a `# HELP`/`# TYPE` line or a well-formed sample
///   (`name{label="value",...} value`, float-parsable value, properly
///   escaped label strings);
/// * each family has exactly one `# TYPE` with a known kind, appearing
///   before its samples;
/// * samples of one family are contiguous and every sample belongs to a
///   declared family;
/// * no duplicate sample (same name and label set).
pub fn lint(text: &str) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    if text.is_empty() {
        return Err(vec!["empty exposition document".into()]);
    }
    if !text.ends_with('\n') {
        errors.push("document does not end with a newline".into());
    }
    let mut typed: HashSet<String> = HashSet::new();
    let mut closed: HashSet<String> = HashSet::new();
    let mut current: Option<String> = None;
    let mut seen_samples: HashSet<String> = HashSet::new();
    for (no, line) in text.lines().enumerate() {
        let ln = no + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), Some(_)) if valid_metric_name(name) => {}
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !valid_metric_name(name) {
                        errors.push(format!("line {ln}: TYPE for invalid name {name:?}"));
                    }
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        errors.push(format!("line {ln}: unknown TYPE kind {kind:?}"));
                    }
                    if !typed.insert(name.to_string()) {
                        errors.push(format!("line {ln}: duplicate TYPE for {name}"));
                    }
                    if let Some(prev) = current.take() {
                        closed.insert(prev);
                    }
                    current = Some(name.to_string());
                }
                (Some("HELP"), _, _) => {
                    errors.push(format!("line {ln}: malformed HELP line {line:?}"));
                }
                _ => errors.push(format!("line {ln}: unrecognized comment {line:?} (only `# HELP` and `# TYPE` are emitted)")),
            }
            continue;
        }
        if line.starts_with('#') {
            errors.push(format!("line {ln}: comment without `# ` prefix: {line:?}"));
            continue;
        }
        match parse_sample(line) {
            Ok((name, canonical)) => {
                if !typed.contains(&name) {
                    errors.push(format!("line {ln}: sample {name} has no preceding # TYPE"));
                }
                if closed.contains(&name) {
                    errors.push(format!(
                        "line {ln}: family {name} is interleaved with another family"
                    ));
                }
                if current.as_deref() != Some(name.as_str()) && typed.contains(&name) {
                    // A sample may only follow its own family block.
                    if current.is_some() && !closed.contains(&name) {
                        errors.push(format!("line {ln}: sample {name} outside its family block"));
                    }
                }
                if !seen_samples.insert(canonical.clone()) {
                    errors.push(format!("line {ln}: duplicate sample {canonical}"));
                }
            }
            Err(e) => errors.push(format!("line {ln}: {e}")),
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Parses one sample line, returning `(family name, canonical "name{labels}")`.
fn parse_sample(line: &str) -> Result<(String, String), String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or_else(|| format!("no value on sample line {line:?}"))?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut i = name_end;
    let mut canonical = name.to_string();
    if bytes[i] == b'{' {
        canonical.push('{');
        i += 1;
        loop {
            if i >= bytes.len() {
                return Err("unterminated label set".into());
            }
            if bytes[i] == b'}' {
                i += 1;
                canonical.push('}');
                break;
            }
            // label name
            let ln_start = i;
            while i < bytes.len() && bytes[i] != b'=' {
                i += 1;
            }
            let lname = &line[ln_start..i];
            if !valid_label_name(lname.trim_end_matches(',')) {
                return Err(format!("invalid label name {lname:?}"));
            }
            canonical.push_str(lname);
            if i >= bytes.len() || bytes.get(i) != Some(&b'=') {
                return Err("label without `=`".into());
            }
            i += 1; // '='
            if bytes.get(i) != Some(&b'"') {
                return Err("label value not quoted".into());
            }
            canonical.push_str("=\"");
            i += 1;
            // quoted value with escapes
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    match bytes.get(i + 1) {
                        Some(b'\\') | Some(b'"') | Some(b'n') => {
                            canonical.push(bytes[i] as char);
                            canonical.push(bytes[i + 1] as char);
                            i += 2;
                            continue;
                        }
                        _ => return Err(format!("bad escape in label value on {line:?}")),
                    }
                }
                canonical.push(bytes[i] as char);
                i += 1;
            }
            if i >= bytes.len() {
                return Err("unterminated label value".into());
            }
            canonical.push('"');
            i += 1; // closing quote
            if bytes.get(i) == Some(&b',') {
                canonical.push(',');
                i += 1;
            }
        }
    }
    if bytes.get(i) != Some(&b' ') {
        return Err(format!("expected space before value in {line:?}"));
    }
    let rest = line[i + 1..].trim();
    let mut fields = rest.split(' ');
    let value = fields.next().unwrap_or("");
    let ok_value = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !ok_value {
        return Err(format!("unparsable sample value {value:?}"));
    }
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("unparsable timestamp {ts:?}"));
        }
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage on sample line {line:?}"));
    }
    Ok((name.to_string(), canonical))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_is_lint_clean() {
        let mut m = MetricsText::new();
        m.family(
            "ascc_serve_jobs_total",
            "Jobs accepted over the daemon lifetime.",
            MetricKind::Counter,
        );
        m.sample("ascc_serve_jobs_total", &[("state", "done".into())], 2.0);
        m.sample("ascc_serve_jobs_total", &[("state", "failed".into())], 0.0);
        m.family(
            "ascc_serve_workers",
            "Configured sweep worker count.",
            MetricKind::Gauge,
        );
        m.sample("ascc_serve_workers", &[], 8.0);
        m.family(
            "ascc_obs_local_hits_total",
            "Local L2 hits per core, live jobs.",
            MetricKind::Counter,
        );
        m.sample(
            "ascc_obs_local_hits_total",
            &[("job", "job-1".into()), ("core", "0".into())],
            12345.5,
        );
        let text = m.render();
        assert!(text.ends_with('\n'));
        lint(&text).unwrap_or_else(|e| panic!("{e:?}\n{text}"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut m = MetricsText::new();
        m.family(
            "x_total",
            "Has \"quotes\" and \\slashes.",
            MetricKind::Counter,
        );
        m.sample("x_total", &[("mix", "a\"b\\c\nd".into())], 1.0);
        let text = m.render();
        lint(&text).unwrap_or_else(|e| panic!("{e:?}\n{text}"));
        assert!(text.contains("mix=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn lint_rejects_malformations() {
        // Sample without TYPE.
        assert!(lint("orphan_total 1\n").is_err());
        // Bad value.
        assert!(lint("# HELP a b\n# TYPE a counter\na one\n").is_err());
        // Missing trailing newline.
        assert!(lint("# HELP a b\n# TYPE a counter\na 1").is_err());
        // Duplicate TYPE.
        assert!(lint("# TYPE a counter\n# TYPE a counter\na 1\n").is_err());
        // Unknown kind.
        assert!(lint("# TYPE a countre\na 1\n").is_err());
        // Duplicate sample.
        assert!(lint("# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n").is_err());
        // Interleaved families.
        assert!(lint("# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n").is_err());
        // Unquoted label value.
        assert!(lint("# TYPE a counter\na{x=1} 1\n").is_err());
        // Empty doc.
        assert!(lint("").is_err());
    }

    #[test]
    fn lint_accepts_special_values_and_timestamps() {
        let text = "# HELP a help text\n# TYPE a gauge\na{l=\"v\"} +Inf\na NaN 1712000000\n";
        lint(text).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("ascc:serve_jobs_total"));
        assert!(!valid_metric_name("9starts_with_digit"));
        assert!(!valid_metric_name("has-dash"));
        assert!(valid_label_name("core"));
        assert!(!valid_label_name("core-id"));
    }
}
