//! A minimal blocking HTTP/1.1 server and client.
//!
//! Scope: exactly what a single-host control plane needs. One request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked encoding), no TLS, no percent-decoding beyond `%xx` in paths.
//! Every connection is handled on its own thread; the accept loop polls a
//! shutdown flag so [`HttpServer::serve`] returns cleanly when asked.

use cmp_json::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on request head (request line + headers) bytes.
const MAX_HEAD: usize = 64 * 1024;
/// Upper bound on request body bytes (job specs and config documents are
/// tiny; anything bigger is a client error).
const MAX_BODY: usize = 16 * 1024 * 1024;
/// Per-connection socket timeout: a stalled peer must not pin a handler
/// thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method, e.g. `GET`.
    pub method: String,
    /// Decoded path without the query string, e.g. `/jobs/job-1`.
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when the request carried none).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The non-empty `/`-separated path segments, e.g. `["jobs", "job-1"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// The body parsed as a JSON document.
    pub fn json(&self) -> Result<Value, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| format!("body not UTF-8: {e}"))?;
        Value::parse(text).map_err(|e| format!("body not JSON: {e}"))
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Content type header value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with an explicit status, content type and body.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: content_type.to_string(),
            body: body.into(),
        }
    }

    /// A JSON response (the document is pretty-printed).
    pub fn json(status: u16, doc: &Value) -> Self {
        Self::new(status, "application/json", doc.pretty())
    }

    /// `200 OK` with a JSON body.
    pub fn ok_json(doc: &Value) -> Self {
        Self::json(200, doc)
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self::new(
            status,
            "text/plain; version=0.0.4; charset=utf-8",
            body.into(),
        )
    }

    /// An error response with a `{"error": ...}` JSON body.
    pub fn error(status: u16, message: impl Into<String>) -> Self {
        Self::json(status, &Value::object().insert("error", message.into()))
    }

    /// `404 Not Found`.
    pub fn not_found(what: &str) -> Self {
        Self::error(404, format!("not found: {what}"))
    }

    /// `405 Method Not Allowed`.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        Self::error(405, format!("{method} not allowed on {path}"))
    }

    /// `400 Bad Request`.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::error(400, message)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            500 => "Internal Server Error",
            _ => "Status",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A handle that asks a running [`HttpServer::serve`] loop to stop.
///
/// Clones share the flag. The accept loop notices within its polling
/// interval (tens of milliseconds); in-flight request threads finish
/// their response first.
#[derive(Debug, Clone, Default)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown. Idempotent.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A bound HTTP/1.1 listener dispatching each connection to a handler
/// thread.
#[derive(Debug)]
pub struct HttpServer {
    listener: TcpListener,
    shutdown: ShutdownHandle,
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port; read the result
    /// back with [`local_addr`](HttpServer::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(HttpServer {
            listener,
            shutdown: ShutdownHandle::default(),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the [`serve`](HttpServer::serve) loop.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Accepts connections until shutdown is requested, handling each on
    /// its own thread. The handler sees every syntactically valid request;
    /// malformed requests are answered with `400` without reaching it. A
    /// handler panic answers `500` (the catch keeps one bad request from
    /// wedging the daemon).
    pub fn serve<H>(self, handler: Arc<H>)
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        loop {
            if self.shutdown.is_shutdown() {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let handler = Arc::clone(&handler);
                    std::thread::spawn(move || handle_connection(stream, handler));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("[http] accept error: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }
}

fn handle_connection<H>(mut stream: TcpStream, handler: Arc<H>)
where
    H: Fn(&Request) -> Response + Send + Sync + 'static,
{
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(req) => match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&req))) {
            Ok(resp) => resp,
            Err(_) => Response::error(500, format!("handler panicked on {}", req.path)),
        },
        Err(e) => Response::bad_request(e),
    };
    if let Err(e) = response.write_to(&mut stream) {
        eprintln!("[http] write error: {e}");
    }
}

/// Reads and parses one request from the stream.
fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err("request head too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "head not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_string();
    let target = parts.next().ok_or("missing request target")?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(format!("not an HTTP/1.x request line: {request_line:?}")),
    }

    let mut headers = Vec::new();
    for line in lines.filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let (path, query) = parse_target(target)?;

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| format!("bad Content-Length {v:?}"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(format!("body too large ({content_length} bytes)"));
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into a decoded path and its query pairs.
fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), String> {
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }
    Ok((path, query))
}

fn percent_decode(s: &str) -> Result<String, String> {
    if !s.contains('%') && !s.contains('+') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("bad percent escape in {s:?}"))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("escape sequence in {s:?} is not UTF-8"))
}

/// Sends one blocking HTTP request and returns `(status, body)`.
///
/// The in-tree client for tests, scripts and CI — requests carry a JSON
/// content type when `body` is given, and the response body is returned
/// as a string (the control plane only speaks JSON and Prometheus text).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n{}Content-Length: {}\r\n\r\n",
        if body.is_empty() {
            String::new()
        } else {
            "Content-Type: application/json\r\n".to_string()
        },
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no response head"))?;
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status code"))?;
    Ok((status, text[head_end + 4..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_echo_server() -> (SocketAddr, ShutdownHandle, std::thread::JoinHandle<()>) {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = server.shutdown_handle();
        let join = std::thread::spawn(move || {
            server.serve(Arc::new(|req: &Request| match req.path.as_str() {
                "/panic" => panic!("boom"),
                "/echo" => Response::ok_json(
                    &Value::object()
                        .insert("method", req.method.clone())
                        .insert("body", String::from_utf8_lossy(&req.body).to_string())
                        .insert("q", req.query_param("q").unwrap_or_default().to_string()),
                ),
                _ => Response::not_found(&req.path),
            }))
        });
        (addr, shutdown, join)
    }

    #[test]
    fn round_trips_requests_and_shuts_down() {
        let (addr, shutdown, join) = spawn_echo_server();

        let (status, body) = request(addr, "GET", "/echo?q=a%20b", None).unwrap();
        assert_eq!(status, 200);
        let doc = Value::parse(&body).unwrap();
        assert_eq!(doc.get("method").and_then(Value::as_str), Some("GET"));
        assert_eq!(doc.get("q").and_then(Value::as_str), Some("a b"));

        let (status, body) = request(addr, "POST", "/echo", Some("{\"x\":1}")).unwrap();
        assert_eq!(status, 200);
        let doc = Value::parse(&body).unwrap();
        assert_eq!(doc.get("body").and_then(Value::as_str), Some("{\"x\":1}"));

        let (status, _) = request(addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);

        // A panicking handler answers 500 and the server stays up.
        let (status, _) = request(addr, "GET", "/panic", None).unwrap();
        assert_eq!(status, 500);
        let (status, _) = request(addr, "GET", "/echo", None).unwrap();
        assert_eq!(status, 200);

        shutdown.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn malformed_requests_get_400() {
        let (addr, shutdown, join) = spawn_echo_server();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        shutdown.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn request_parsing_details() {
        let (path, query) = parse_target("/jobs/j-1?only=fig08&resume=1").unwrap();
        assert_eq!(path, "/jobs/j-1");
        assert_eq!(
            query,
            vec![
                ("only".to_string(), "fig08".to_string()),
                ("resume".to_string(), "1".to_string())
            ]
        );
        assert_eq!(percent_decode("a+b%2Fc").unwrap(), "a b/c");
        assert!(percent_decode("bad%zz").is_err());
    }

    #[test]
    fn segments_split_path() {
        let req = Request {
            method: "GET".into(),
            path: "/jobs/job-1/".into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(req.segments(), vec!["jobs", "job-1"]);
    }
}
