//! # ascc-serve — HTTP service substrate for the control plane
//!
//! The repo's batch binaries become a resident cache-as-a-service through
//! a deliberately small, dependency-free HTTP layer (deps stay vendored;
//! no async runtime — the workload is a handful of control-plane requests
//! per second, so a thread per connection over blocking sockets is the
//! right amount of machinery):
//!
//! * [`http`] — an HTTP/1.1 listener ([`http::HttpServer`]) with
//!   thread-per-connection dispatch, request parsing ([`http::Request`])
//!   and response building ([`http::Response`]), plus a tiny blocking
//!   client ([`http::request`]) so tests and scripts need no curl;
//! * [`prometheus`] — a text-exposition-format writer
//!   ([`prometheus::MetricsText`]) and a strict format linter
//!   ([`prometheus::lint`]) that CI runs against every `/metrics` scrape.
//!
//! The daemon *application* (job management, journal tailing, `/metrics`
//! assembly) lives in `ascc_bench::serve`; this crate owns only the
//! protocol substrate so lower layers can reuse it without pulling in the
//! experiment harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
pub mod prometheus;
