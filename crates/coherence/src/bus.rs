//! The broadcast snoop bus over a group of private same-level caches.
//!
//! The paper's platform uses a "MESI-based broadcasting" protocol (Table 2):
//! every miss is broadcast, every peer cache snoops, and a hit in a peer
//! produces a cache-to-cache transfer (a *remote hit*, 25 cycles vs 9 for a
//! local hit). The same broadcast carries the SSL information the spilling
//! mechanism needs, which is why the paper's spill candidate search is free
//! of extra traffic (§3.1).

use cmp_cache::{CacheLine, CoreId, LineAddr, MesiState, SetAssocCache};

/// What a remote snoop found and handed to the requester.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RemoteHit {
    /// The peer cache that supplied the line.
    pub from: CoreId,
    /// The line as taken from (or observed in) the peer.
    pub line: CacheLine,
    /// MESI state the requester's new copy must be filled with.
    pub granted: MesiState,
}

/// How a remote read hit treats the peer's copy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReadPolicy {
    /// Move the line to the requester and invalidate the peer copy.
    ///
    /// This is how the spill-receive designs operate on multiprogrammed
    /// workloads: data is private, so a remote copy is *the* copy and it
    /// migrates back to its owner on reuse.
    Migrate,
    /// Keep the peer copy (downgraded to Shared) and give the requester a
    /// Shared replica — ordinary MESI read sharing for multithreaded runs.
    Replicate,
}

/// Aggregate bus statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BusStats {
    /// Broadcast snoop operations performed.
    pub snoops: u64,
    /// Cache-to-cache data transfers (remote read/write hits).
    pub transfers: u64,
    /// Remote copies invalidated by write snoops.
    pub invalidations: u64,
    /// Peer tag arrays actually probed by miss traffic. A broadcast bus
    /// probes every peer on every snoop (`cores - 1` per miss); a directory
    /// only probes the caches its sharer mask names, so this is the scaling
    /// cost the two fabrics differ on.
    pub probes: u64,
}

/// The broadcast snoop bus.
///
/// The bus does not own the caches; each operation borrows the full slice of
/// same-level private caches, mirroring how a snoop transaction touches
/// every tag array in the chip.
#[derive(Clone, Copy, Debug, Default)]
pub struct SnoopBus {
    stats: BusStats,
}

impl SnoopBus {
    /// Creates a bus with zeroed statistics.
    pub fn new() -> Self {
        SnoopBus::default()
    }

    /// Statistics so far.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Zeroes statistics (end of warmup).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    /// Serialises the bus statistics (the bus's only state) into `w`.
    pub fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        save_stats(&self.stats, w);
    }

    /// Restores statistics captured by [`save_state`](SnoopBus::save_state).
    pub fn load_state(
        &mut self,
        r: &mut cmp_snap::SnapReader<'_>,
    ) -> Result<(), cmp_snap::SnapError> {
        self.stats = load_stats(r)?;
        Ok(())
    }

    /// All caches currently holding `line`.
    pub fn holders(&self, caches: &[SetAssocCache], line: LineAddr) -> Vec<CoreId> {
        caches
            .iter()
            .enumerate()
            .filter(|(_, c)| c.probe(line).is_some())
            .map(|(i, _)| CoreId(i as u8))
            .collect()
    }

    /// Whether the copy held by `holder` is the last one on chip.
    ///
    /// Returns `false` if `holder` does not actually hold the line.
    pub fn is_last_copy(&self, caches: &[SetAssocCache], holder: CoreId, line: LineAddr) -> bool {
        let mut count = 0usize;
        let mut held = false;
        for (i, c) in caches.iter().enumerate() {
            if c.probe(line).is_some() {
                count += 1;
                if i == holder.index() {
                    held = true;
                }
            }
        }
        held && count == 1
    }

    /// Broadcasts a read miss by `requester` for `line`.
    ///
    /// On a remote hit the peer copy is migrated or downgraded according to
    /// `policy` and the hit descriptor returned. On a full miss, returns
    /// `None`; the requester should fetch from memory with the state given
    /// by [`SnoopBus::fetch_state`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `requester` already holds the line (a read
    /// miss cannot be broadcast for a resident line).
    pub fn read_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
        policy: ReadPolicy,
    ) -> Option<RemoteHit> {
        debug_assert!(
            caches[requester.index()].probe(line).is_none(),
            "read_miss broadcast for a line resident at the requester"
        );
        self.stats.snoops += 1;
        self.stats.probes += caches.len() as u64 - 1;
        let owner = caches
            .iter()
            .enumerate()
            .position(|(i, c)| i != requester.index() && c.probe(line).is_some())?;
        self.stats.transfers += 1;
        let from = CoreId(owner as u8);
        match policy {
            ReadPolicy::Migrate => {
                let taken = caches[owner]
                    .invalidate(line)
                    .expect("probe said the line is resident");
                Some(RemoteHit {
                    from,
                    line: taken,
                    granted: taken.state,
                })
            }
            ReadPolicy::Replicate => {
                let observed = {
                    let (s, w) = caches[owner].probe(line).expect("probed above");
                    caches[owner].set(s).line(w).expect("valid way")
                };
                // M/E copies downgrade to S on a remote read (a Modified copy
                // is written back as part of the downgrade in MESI).
                caches[owner].set_state(line, observed.state.after_remote_read());
                Some(RemoteHit {
                    from,
                    line: observed,
                    granted: MesiState::Shared,
                })
            }
        }
    }

    /// Broadcasts a write miss (or upgrade) by `requester` for `line`:
    /// invalidates every remote copy. Returns a remote hit descriptor if a
    /// peer supplied the data (granted state is always Modified).
    pub fn write_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> Option<RemoteHit> {
        self.stats.snoops += 1;
        self.stats.probes += caches.len() as u64 - 1;
        let mut hit: Option<RemoteHit> = None;
        for (i, cache) in caches.iter_mut().enumerate() {
            if i == requester.index() {
                continue;
            }
            if let Some(taken) = cache.invalidate(line) {
                self.stats.invalidations += 1;
                if hit.is_none() {
                    self.stats.transfers += 1;
                    hit = Some(RemoteHit {
                        from: CoreId(i as u8),
                        line: taken,
                        granted: MesiState::Modified,
                    });
                }
            }
        }
        hit
    }

    /// MESI state granted to a copy fetched from memory: Exclusive when no
    /// peer holds the line, Shared otherwise (callers normally only fetch
    /// from memory after [`SnoopBus::read_miss`] returned `None`, in which
    /// case Exclusive is the answer).
    pub fn fetch_state(
        &self,
        caches: &[SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> MesiState {
        let shared_elsewhere = caches
            .iter()
            .enumerate()
            .any(|(i, c)| i != requester.index() && c.probe(line).is_some());
        if shared_elsewhere {
            MesiState::Shared
        } else {
            MesiState::Exclusive
        }
    }
}

/// Writes `stats` in the fixed four-word wire order shared by both fabrics.
pub(crate) fn save_stats(stats: &BusStats, w: &mut cmp_snap::SnapWriter) {
    w.put_u64(stats.snoops);
    w.put_u64(stats.transfers);
    w.put_u64(stats.invalidations);
    w.put_u64(stats.probes);
}

/// Reads statistics written by [`save_stats`].
pub(crate) fn load_stats(
    r: &mut cmp_snap::SnapReader<'_>,
) -> Result<BusStats, cmp_snap::SnapError> {
    Ok(BusStats {
        snoops: r.get_u64()?,
        transfers: r.get_u64()?,
        invalidations: r.get_u64()?,
        probes: r.get_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CacheGeometry, FillKind, InsertPos};

    fn caches(n: usize) -> Vec<SetAssocCache> {
        (0..n)
            .map(|_| SetAssocCache::new(CacheGeometry::new(4, 2, 32).unwrap()))
            .collect()
    }

    fn put(c: &mut SetAssocCache, line: u64, state: MesiState) {
        let la = LineAddr::new(line);
        let set = c.geometry().set_of(la);
        let way = c.set(set).default_victim();
        c.fill(
            set,
            way,
            CacheLine::demand(la, state),
            InsertPos::Mru,
            FillKind::Demand,
        );
    }

    #[test]
    fn full_miss_returns_none_and_exclusive() {
        let mut cs = caches(2);
        let mut bus = SnoopBus::new();
        let la = LineAddr::new(9);
        assert!(bus
            .read_miss(&mut cs, CoreId(0), la, ReadPolicy::Migrate)
            .is_none());
        assert_eq!(bus.fetch_state(&cs, CoreId(0), la), MesiState::Exclusive);
        assert_eq!(bus.stats().snoops, 1);
        assert_eq!(bus.stats().transfers, 0);
        assert_eq!(bus.stats().probes, 1, "broadcast probes every peer");
    }

    #[test]
    fn migrate_moves_the_line() {
        let mut cs = caches(2);
        put(&mut cs[1], 5, MesiState::Modified);
        let mut bus = SnoopBus::new();
        let hit = bus
            .read_miss(&mut cs, CoreId(0), LineAddr::new(5), ReadPolicy::Migrate)
            .unwrap();
        assert_eq!(hit.from, CoreId(1));
        assert_eq!(hit.granted, MesiState::Modified);
        assert!(
            cs[1].probe(LineAddr::new(5)).is_none(),
            "copy migrated away"
        );
        assert_eq!(bus.stats().transfers, 1);
    }

    #[test]
    fn replicate_downgrades_and_shares() {
        let mut cs = caches(2);
        put(&mut cs[1], 5, MesiState::Exclusive);
        let mut bus = SnoopBus::new();
        let hit = bus
            .read_miss(&mut cs, CoreId(0), LineAddr::new(5), ReadPolicy::Replicate)
            .unwrap();
        assert_eq!(hit.granted, MesiState::Shared);
        assert_eq!(cs[1].state_of(LineAddr::new(5)), Some(MesiState::Shared));
        assert!(
            cs[1].probe(LineAddr::new(5)).is_some(),
            "peer keeps its copy"
        );
    }

    #[test]
    fn write_miss_invalidates_all_copies() {
        let mut cs = caches(3);
        put(&mut cs[1], 5, MesiState::Shared);
        put(&mut cs[2], 5, MesiState::Shared);
        let mut bus = SnoopBus::new();
        let hit = bus
            .write_miss(&mut cs, CoreId(0), LineAddr::new(5))
            .unwrap();
        assert_eq!(hit.granted, MesiState::Modified);
        assert!(cs[1].probe(LineAddr::new(5)).is_none());
        assert!(cs[2].probe(LineAddr::new(5)).is_none());
        assert_eq!(bus.stats().invalidations, 2);
        assert_eq!(bus.stats().transfers, 1);
        assert_eq!(bus.stats().probes, 2, "broadcast probes every peer");
    }

    #[test]
    fn write_miss_with_no_copies() {
        let mut cs = caches(2);
        let mut bus = SnoopBus::new();
        assert!(bus
            .write_miss(&mut cs, CoreId(0), LineAddr::new(7))
            .is_none());
        assert_eq!(bus.stats().invalidations, 0);
    }

    #[test]
    fn last_copy_detection() {
        let mut cs = caches(3);
        put(&mut cs[0], 5, MesiState::Shared);
        let bus = SnoopBus::new();
        assert!(bus.is_last_copy(&cs, CoreId(0), LineAddr::new(5)));
        assert!(!bus.is_last_copy(&cs, CoreId(1), LineAddr::new(5)));
        put(&mut cs[2], 5, MesiState::Shared);
        assert!(!bus.is_last_copy(&cs, CoreId(0), LineAddr::new(5)));
        assert_eq!(
            bus.holders(&cs, LineAddr::new(5)),
            vec![CoreId(0), CoreId(2)]
        );
    }

    #[test]
    fn fetch_state_shared_when_peer_holds() {
        let mut cs = caches(2);
        put(&mut cs[1], 5, MesiState::Shared);
        let bus = SnoopBus::new();
        assert_eq!(
            bus.fetch_state(&cs, CoreId(0), LineAddr::new(5)),
            MesiState::Shared
        );
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut cs = caches(2);
        let mut bus = SnoopBus::new();
        bus.read_miss(&mut cs, CoreId(0), LineAddr::new(1), ReadPolicy::Migrate);
        bus.reset_stats();
        assert_eq!(*bus.stats(), BusStats::default());
    }
}
