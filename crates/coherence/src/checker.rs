//! MESI invariant checking for tests and debug assertions.

use cmp_cache::{LineAddr, SetAssocCache};
use std::collections::HashMap;

/// A violation of the MESI single-writer / single-exclusive invariants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolViolation {
    /// A Modified or Exclusive copy coexists with another copy of the line.
    ExclusiveNotAlone {
        /// The offending line.
        line: LineAddr,
        /// Number of on-chip copies found.
        copies: usize,
    },
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolViolation::ExclusiveNotAlone { line, copies } => write!(
                f,
                "line {line} has an M/E copy but {copies} copies exist on chip"
            ),
        }
    }
}

impl std::error::Error for ProtocolViolation {}

/// Sweeps every line of every cache and verifies the MESI invariants:
///
/// * a Modified or Exclusive copy is the *only* on-chip copy;
/// * (Shared copies may coexist in any number.)
///
/// Returns all violations found (empty = coherent).
pub fn check_mesi(caches: &[SetAssocCache]) -> Vec<ProtocolViolation> {
    // line -> (copies, has_exclusive_like)
    let mut seen: HashMap<LineAddr, (usize, bool)> = HashMap::new();
    for cache in caches {
        let sets = cache.geometry().sets();
        for s in 0..sets {
            for (_, line) in cache.set(cmp_cache::SetIdx(s)).iter() {
                let e = seen.entry(line.addr).or_insert((0, false));
                e.0 += 1;
                e.1 |= line.state.is_exclusive_like();
            }
        }
    }
    seen.into_iter()
        .filter(|&(_, (copies, excl))| excl && copies > 1)
        .map(|(line, (copies, _))| ProtocolViolation::ExclusiveNotAlone { line, copies })
        .collect()
}

/// Panics with a readable message if the caches violate MESI.
///
/// # Panics
///
/// Panics when [`check_mesi`] reports any violation.
pub fn assert_coherent(caches: &[SetAssocCache]) {
    let violations = check_mesi(caches);
    assert!(
        violations.is_empty(),
        "MESI invariants violated: {}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CacheGeometry, CacheLine, FillKind, InsertPos, MesiState};

    fn cache() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(4, 2, 32).unwrap())
    }

    fn put(c: &mut SetAssocCache, line: u64, state: MesiState) {
        let la = LineAddr::new(line);
        let set = c.geometry().set_of(la);
        let way = c.set(set).default_victim();
        c.fill(
            set,
            way,
            CacheLine::demand(la, state),
            InsertPos::Mru,
            FillKind::Demand,
        );
    }

    #[test]
    fn clean_sharing_is_fine() {
        let mut a = cache();
        let mut b = cache();
        put(&mut a, 1, MesiState::Shared);
        put(&mut b, 1, MesiState::Shared);
        put(&mut a, 2, MesiState::Modified);
        assert!(check_mesi(&[a, b]).is_empty());
    }

    #[test]
    fn detects_duplicated_modified() {
        let mut a = cache();
        let mut b = cache();
        put(&mut a, 1, MesiState::Modified);
        put(&mut b, 1, MesiState::Shared);
        let v = check_mesi(&[a, b]);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("2 copies"));
    }

    #[test]
    #[should_panic(expected = "MESI invariants violated")]
    fn assert_coherent_panics() {
        let mut a = cache();
        let mut b = cache();
        put(&mut a, 1, MesiState::Exclusive);
        put(&mut b, 1, MesiState::Exclusive);
        assert_coherent(&[a, b]);
    }
}
