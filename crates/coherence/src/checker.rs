//! MESI invariant checking for tests and debug assertions.

use cmp_cache::{LineAddr, SetAssocCache};
use std::collections::HashMap;

/// A violation of the MESI single-writer / single-exclusive invariants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolViolation {
    /// A Modified or Exclusive copy coexists with another copy of the line.
    ExclusiveNotAlone {
        /// The offending line.
        line: LineAddr,
        /// Number of on-chip copies found.
        copies: usize,
    },
    /// A Modified copy coexists with Shared copies — the signature of an
    /// invalidating upgrade that failed to reach every sharer.
    StaleSharedAfterUpgrade {
        /// The offending line.
        line: LineAddr,
        /// Number of on-chip copies found (writer + stale sharers).
        copies: usize,
    },
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolViolation::ExclusiveNotAlone { line, copies } => write!(
                f,
                "line {line} has an M/E copy but {copies} copies exist on chip"
            ),
            ProtocolViolation::StaleSharedAfterUpgrade { line, copies } => write!(
                f,
                "line {line} is Modified in one cache but {copies} copies exist \
                 on chip: stale Shared copies survived an invalidating upgrade"
            ),
        }
    }
}

impl std::error::Error for ProtocolViolation {}

/// Sweeps every line of every cache and verifies the MESI invariants:
///
/// * a Modified or Exclusive copy is the *only* on-chip copy;
/// * no Shared copy survives next to a Modified one (a stale sharer left
///   behind by an incomplete invalidating upgrade is reported as the more
///   specific [`ProtocolViolation::StaleSharedAfterUpgrade`]);
/// * (Shared copies may coexist in any number on their own.)
///
/// Returns all violations found (empty = coherent).
pub fn check_mesi(caches: &[SetAssocCache]) -> Vec<ProtocolViolation> {
    // line -> (copies, has_exclusive_like, has_modified, has_shared)
    let mut seen: HashMap<LineAddr, (usize, bool, bool, bool)> = HashMap::new();
    for cache in caches {
        let sets = cache.geometry().sets();
        for s in 0..sets {
            for (_, line) in cache.set(cmp_cache::SetIdx(s)).iter() {
                let e = seen.entry(line.addr).or_insert((0, false, false, false));
                e.0 += 1;
                e.1 |= line.state.is_exclusive_like();
                e.2 |= line.state.is_dirty();
                e.3 |= !line.state.is_exclusive_like();
            }
        }
    }
    seen.into_iter()
        .filter_map(|(line, (copies, excl, modified, shared))| {
            if modified && shared {
                Some(ProtocolViolation::StaleSharedAfterUpgrade { line, copies })
            } else if excl && copies > 1 {
                Some(ProtocolViolation::ExclusiveNotAlone { line, copies })
            } else {
                None
            }
        })
        .collect()
}

/// Panics with a readable message if the caches violate MESI.
///
/// # Panics
///
/// Panics when [`check_mesi`] reports any violation.
pub fn assert_coherent(caches: &[SetAssocCache]) {
    let violations = check_mesi(caches);
    assert!(
        violations.is_empty(),
        "MESI invariants violated: {}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Role a spill-candidate counter value implies (the checker's own copy of
/// the three-way classification, so policy crates can cross-check their
/// reported roles against raw counter values without a dependency cycle).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SslRole {
    /// Below the demand threshold: accepts spills.
    Receiver,
    /// Between the thresholds.
    Neutral,
    /// At/above the spiller threshold: offers victims.
    Spiller,
}

/// Role implied by a fixed-point SSL value under thresholds `k_fixed`
/// (receiver below) and `spiller_fixed` (spiller at or above). Passing
/// `spiller_fixed == k_fixed` yields the two-state classification.
pub fn ssl_role(value: u16, k_fixed: u16, spiller_fixed: u16) -> SslRole {
    if value < k_fixed {
        SslRole::Receiver
    } else if value >= spiller_fixed {
        SslRole::Spiller
    } else {
        SslRole::Neutral
    }
}

/// A violation of the structural invariants the differential harness (and,
/// behind `cmp-sim`'s `debug-invariants` feature, every simulation step)
/// checks on top of MESI.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InvariantViolation {
    /// A set's packed recency word does not decode to a permutation of its
    /// ways.
    BadRecency {
        /// Index of the cache in the checked slice.
        cache: usize,
        /// Set index.
        set: u32,
        /// The decoded (broken) order.
        order: Vec<u16>,
    },
    /// An SSL counter left its saturation range `0..=max_fixed`
    /// (`2K - 1` lines in the default tuning).
    SslOutOfRange {
        /// Core owning the counter.
        core: usize,
        /// Counter index.
        counter: usize,
        /// Offending fixed-point value.
        value: u16,
        /// Inclusive fixed-point maximum.
        max_fixed: u16,
    },
    /// The role a policy reports disagrees with the role its own counter
    /// value implies.
    RoleMismatch {
        /// Core owning the counter.
        core: usize,
        /// Counter index.
        counter: usize,
        /// Fixed-point counter value.
        value: u16,
        /// Role the policy reported.
        reported: SslRole,
        /// Role the value implies.
        implied: SslRole,
    },
    /// A line carries the spilled flag but is not the last on-chip copy
    /// (spills move *last* copies by definition, §3.1).
    SpilledNotLastCopy {
        /// The offending line.
        line: LineAddr,
        /// Number of on-chip copies found.
        copies: usize,
    },
    /// An adaptive-granularity policy uses a counter count that is not a
    /// power of two dividing the set count (or exceeds its configured cap).
    IllegalGranularity {
        /// Core owning the table.
        core: usize,
        /// Counters in use.
        counters: u32,
        /// Sets covered.
        sets: u32,
        /// Configured counter cap, if any.
        max_counters: Option<u32>,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::BadRecency { cache, set, order } => write!(
                f,
                "cache {cache} set {set}: recency word decodes to {order:?}, \
                 not a permutation of the ways"
            ),
            InvariantViolation::SslOutOfRange {
                core,
                counter,
                value,
                max_fixed,
            } => write!(
                f,
                "core {core} counter {counter}: SSL value {value} outside \
                 0..={max_fixed}"
            ),
            InvariantViolation::RoleMismatch {
                core,
                counter,
                value,
                reported,
                implied,
            } => write!(
                f,
                "core {core} counter {counter}: value {value} implies \
                 {implied:?} but policy reports {reported:?}"
            ),
            InvariantViolation::SpilledNotLastCopy { line, copies } => write!(
                f,
                "line {line} is marked spilled but {copies} copies exist on chip"
            ),
            InvariantViolation::IllegalGranularity {
                core,
                counters,
                sets,
                max_counters,
            } => write!(
                f,
                "core {core}: {counters} counters over {sets} sets \
                 (cap {max_counters:?}) is not a legal granularity"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Verifies that every set's recency word decodes to a valid permutation of
/// its ways in every cache of the slice.
pub fn check_recency(caches: &[SetAssocCache]) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for (ci, cache) in caches.iter().enumerate() {
        let geom = cache.geometry();
        let ways = geom.ways() as usize;
        for s in 0..geom.sets() {
            let order: Vec<u16> = cache
                .set(cmp_cache::SetIdx(s))
                .recency()
                .order()
                .map(|w| w.0)
                .collect();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            let valid =
                sorted.len() == ways && sorted.iter().enumerate().all(|(i, &w)| w as usize == i);
            if !valid {
                out.push(InvariantViolation::BadRecency {
                    cache: ci,
                    set: s,
                    order,
                });
            }
        }
    }
    out
}

/// Verifies that every line carrying the spilled flag is the sole on-chip
/// copy. Only meaningful under *migration* read semantics: replication
/// grants a replica while the supplier keeps its (spilled) copy.
pub fn check_spilled_last_copies(caches: &[SetAssocCache]) -> Vec<InvariantViolation> {
    let mut copies: HashMap<LineAddr, usize> = HashMap::new();
    for cache in caches {
        for s in 0..cache.geometry().sets() {
            for (_, line) in cache.set(cmp_cache::SetIdx(s)).iter() {
                *copies.entry(line.addr).or_insert(0) += 1;
            }
        }
    }
    let mut out = Vec::new();
    for cache in caches {
        for s in 0..cache.geometry().sets() {
            for (_, line) in cache.set(cmp_cache::SetIdx(s)).iter() {
                let n = copies[&line.addr];
                if line.spilled && n > 1 {
                    out.push(InvariantViolation::SpilledNotLastCopy {
                        line: line.addr,
                        copies: n,
                    });
                }
            }
        }
    }
    out
}

/// Verifies one core's SSL counters: every value inside `0..=max_fixed` and,
/// when `reported` roles are supplied (one per counter), agreeing with the
/// role the value implies under the given thresholds.
pub fn check_ssl(
    core: usize,
    values: &[u16],
    k_fixed: u16,
    spiller_fixed: u16,
    max_fixed: u16,
    reported: &[SslRole],
) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        if v > max_fixed {
            out.push(InvariantViolation::SslOutOfRange {
                core,
                counter: i,
                value: v,
                max_fixed,
            });
        }
        if let Some(&rep) = reported.get(i) {
            let implied = ssl_role(v, k_fixed, spiller_fixed);
            if rep != implied {
                out.push(InvariantViolation::RoleMismatch {
                    core,
                    counter: i,
                    value: v,
                    reported: rep,
                    implied,
                });
            }
        }
    }
    out
}

/// Verifies an adaptive-granularity counter count: a power of two, at least
/// one, no more than `sets`, and within the configured cap if any.
pub fn check_granularity(
    core: usize,
    sets: u32,
    counters: u32,
    max_counters: Option<u32>,
) -> Vec<InvariantViolation> {
    let legal = counters >= 1
        && counters <= sets
        && counters.is_power_of_two()
        && max_counters.is_none_or(|cap| counters <= cap);
    if legal {
        Vec::new()
    } else {
        vec![InvariantViolation::IllegalGranularity {
            core,
            counters,
            sets,
            max_counters,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CacheGeometry, CacheLine, FillKind, InsertPos, MesiState};

    fn cache() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(4, 2, 32).unwrap())
    }

    fn put(c: &mut SetAssocCache, line: u64, state: MesiState) {
        let la = LineAddr::new(line);
        let set = c.geometry().set_of(la);
        let way = c.set(set).default_victim();
        c.fill(
            set,
            way,
            CacheLine::demand(la, state),
            InsertPos::Mru,
            FillKind::Demand,
        );
    }

    #[test]
    fn clean_sharing_is_fine() {
        let mut a = cache();
        let mut b = cache();
        put(&mut a, 1, MesiState::Shared);
        put(&mut b, 1, MesiState::Shared);
        put(&mut a, 2, MesiState::Modified);
        assert!(check_mesi(&[a, b]).is_empty());
    }

    #[test]
    fn detects_duplicated_modified() {
        let mut a = cache();
        let mut b = cache();
        put(&mut a, 1, MesiState::Modified);
        put(&mut b, 1, MesiState::Shared);
        let v = check_mesi(&[a, b]);
        assert_eq!(v.len(), 1);
        assert!(v[0].to_string().contains("2 copies"));
    }

    #[test]
    #[should_panic(expected = "MESI invariants violated")]
    fn assert_coherent_panics() {
        let mut a = cache();
        let mut b = cache();
        put(&mut a, 1, MesiState::Exclusive);
        put(&mut b, 1, MesiState::Exclusive);
        assert_coherent(&[a, b]);
    }

    #[test]
    fn stale_shared_is_discriminated_from_double_exclusive() {
        let mut a = cache();
        let mut b = cache();
        put(&mut a, 1, MesiState::Modified);
        put(&mut b, 1, MesiState::Shared);
        let v = check_mesi(&[a, b]);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            ProtocolViolation::StaleSharedAfterUpgrade { copies: 2, .. }
        ));

        let mut c = cache();
        let mut d = cache();
        put(&mut c, 1, MesiState::Exclusive);
        put(&mut d, 1, MesiState::Shared);
        let v = check_mesi(&[c, d]);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            ProtocolViolation::ExclusiveNotAlone { copies: 2, .. }
        ));
    }

    #[test]
    fn recency_of_untouched_caches_is_valid() {
        let mut a = cache();
        put(&mut a, 1, MesiState::Exclusive);
        assert!(check_recency(&[a]).is_empty());
    }

    #[test]
    fn spilled_replica_is_flagged() {
        let mut a = cache();
        let mut b = cache();
        // A spilled copy next to a second copy of the same line.
        let la = LineAddr::new(1);
        let set = a.geometry().set_of(la);
        let way = a.set(set).default_victim();
        a.fill(
            set,
            way,
            CacheLine::spilled(la, MesiState::Shared),
            InsertPos::Mru,
            FillKind::Spill,
        );
        put(&mut b, 1, MesiState::Shared);
        let v = check_spilled_last_copies(&[a, b]);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            InvariantViolation::SpilledNotLastCopy { copies: 2, .. }
        ));
    }

    #[test]
    fn ssl_range_and_role_checks() {
        // k = 4 ways -> k_fixed 32, max 2K-1 = 7 lines -> 56 fixed.
        let values = [0u16, 31, 32, 56, 57];
        let roles = [
            SslRole::Receiver,
            SslRole::Receiver,
            SslRole::Neutral,
            SslRole::Spiller,
            SslRole::Spiller,
        ];
        let v = check_ssl(0, &values, 32, 56, 56, &roles);
        // One out-of-range (57); its role still matches Spiller.
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            InvariantViolation::SslOutOfRange { value: 57, .. }
        ));
        // A wrong reported role is caught.
        let v = check_ssl(0, &[0], 32, 56, 56, &[SslRole::Spiller]);
        assert!(matches!(v[0], InvariantViolation::RoleMismatch { .. }));
    }

    #[test]
    fn granularity_legality() {
        assert!(check_granularity(0, 256, 64, Some(64)).is_empty());
        assert!(!check_granularity(0, 256, 65, None).is_empty());
        assert!(!check_granularity(0, 256, 512, None).is_empty());
        assert!(!check_granularity(0, 256, 128, Some(64)).is_empty());
        assert!(!check_granularity(0, 256, 0, None).is_empty());
    }
}
