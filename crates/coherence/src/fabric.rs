//! Coherence fabrics: broadcast snooping vs a sharer-bitmask directory.
//!
//! The broadcast [`SnoopBus`] is the paper's platform (Table 2): every miss
//! probes every peer tag array, so per-access coherence cost is O(cores).
//! That is tolerable at the paper's 4 cores and fatal at the 16–64-core
//! server configurations the scaling experiments target. The
//! [`DirectoryFabric`] keeps a *snoop filter* — a hash table mapping each
//! resident line to the bitmask of private caches holding it — so miss
//! traffic touches only O(sharers) caches while producing **bit-identical**
//! architectural results:
//!
//! * the broadcast owner search scans caches in ascending core index and
//!   stops at the first holder; the directory takes the lowest set bit of
//!   the sharer mask — the same core;
//! * write-miss invalidation walks set bits in ascending order, matching the
//!   broadcast's ascending scan;
//! * memory fetch state (Exclusive vs Shared) depends only on whether any
//!   peer holds the line, which a mask popcount answers exactly.
//!
//! Only [`BusStats::probes`] differs between the fabrics — it *is* the
//! metric the scaling study compares.

use cmp_cache::{CoreId, LineAddr, MesiState, SetAssocCache, SetIdx};

use crate::bus::{load_stats, save_stats, BusStats, ReadPolicy, RemoteHit, SnoopBus};

/// Which coherence fabric a system runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FabricKind {
    /// Spec-literal broadcast snooping: every miss probes every peer.
    Broadcast,
    /// Sharer-bitmask directory: misses probe only the recorded holders.
    #[default]
    Directory,
}

impl FabricKind {
    /// Stable single-byte encoding used in snapshot fingerprints.
    pub fn as_u8(self) -> u8 {
        match self {
            FabricKind::Broadcast => 0,
            FabricKind::Directory => 1,
        }
    }

    /// Inverse of [`FabricKind::as_u8`].
    pub fn from_u8(raw: u8) -> Option<Self> {
        match raw {
            0 => Some(FabricKind::Broadcast),
            1 => Some(FabricKind::Directory),
            _ => None,
        }
    }

    /// Short lower-case label (`broadcast` / `directory`) for reports.
    pub fn label(self) -> &'static str {
        match self {
            FabricKind::Broadcast => "broadcast",
            FabricKind::Directory => "directory",
        }
    }
}

/// The operations a coherence fabric offers the CMP engine.
///
/// Implemented by the broadcast [`SnoopBus`], the sharer-bitmask
/// [`DirectoryFabric`], and the dispatching [`Fabric`] enum the engine
/// embeds. All three produce bit-identical architectural outcomes; they
/// differ only in how many peer tag arrays each miss touches (the
/// [`BusStats::probes`] counter).
pub trait CoherenceFabric {
    /// Which fabric this is.
    fn kind(&self) -> FabricKind;

    /// Statistics so far.
    fn stats(&self) -> &BusStats;

    /// Zeroes statistics (end of warmup).
    fn reset_stats(&mut self);

    /// Number of caches currently holding `line` (requester included).
    fn holder_count(&self, caches: &[SetAssocCache], line: LineAddr) -> usize;

    /// Services a read miss by `requester`; see [`SnoopBus::read_miss`].
    fn read_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
        policy: ReadPolicy,
    ) -> Option<RemoteHit>;

    /// Services a write miss or upgrade; see [`SnoopBus::write_miss`].
    fn write_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> Option<RemoteHit>;

    /// MESI state granted to a copy fetched from memory.
    fn fetch_state(&self, caches: &[SetAssocCache], requester: CoreId, line: LineAddr)
        -> MesiState;

    /// Records that `core`'s cache gained a copy of `line` (demand fill,
    /// spill receive, or swap). No-op on the broadcast bus.
    fn note_fill(&mut self, core: CoreId, line: LineAddr);

    /// Records that `core`'s cache lost its copy of `line` through an
    /// eviction the fabric did not itself perform. No-op on the broadcast
    /// bus.
    fn note_evict(&mut self, core: CoreId, line: LineAddr);

    /// Rebuilds any derived tracking state from the caches themselves (used
    /// after a snapshot restore). Returns `Err` if previously loaded state
    /// is inconsistent with the caches.
    fn sync(&mut self, caches: &[SetAssocCache]) -> Result<(), cmp_snap::SnapError>;

    /// Serialises fabric state into `w`.
    fn save_state(&self, w: &mut cmp_snap::SnapWriter);

    /// Restores state captured by `save_state`.
    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError>;
}

impl CoherenceFabric for SnoopBus {
    fn kind(&self) -> FabricKind {
        FabricKind::Broadcast
    }

    fn stats(&self) -> &BusStats {
        SnoopBus::stats(self)
    }

    fn reset_stats(&mut self) {
        SnoopBus::reset_stats(self)
    }

    fn holder_count(&self, caches: &[SetAssocCache], line: LineAddr) -> usize {
        caches.iter().filter(|c| c.probe(line).is_some()).count()
    }

    fn read_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
        policy: ReadPolicy,
    ) -> Option<RemoteHit> {
        SnoopBus::read_miss(self, caches, requester, line, policy)
    }

    fn write_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> Option<RemoteHit> {
        SnoopBus::write_miss(self, caches, requester, line)
    }

    fn fetch_state(
        &self,
        caches: &[SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> MesiState {
        SnoopBus::fetch_state(self, caches, requester, line)
    }

    fn note_fill(&mut self, _core: CoreId, _line: LineAddr) {}

    fn note_evict(&mut self, _core: CoreId, _line: LineAddr) {}

    fn sync(&mut self, _caches: &[SetAssocCache]) -> Result<(), cmp_snap::SnapError> {
        Ok(())
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        SnoopBus::save_state(self, w)
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        SnoopBus::load_state(self, r)
    }
}

/// Open-addressing map from line address to a 64-bit sharer mask.
///
/// Linear probing with fibonacci hashing and backward-shift deletion; a slot
/// is empty iff its mask is zero (a line with no sharers has no entry, so
/// the zero mask never needs to be stored). Capacities are powers of two and
/// the table grows at ~7/8 load, sized up front from the aggregate cache
/// capacity so steady-state runs never rehash.
#[derive(Clone, Debug)]
pub struct SharerTable {
    keys: Vec<u64>,
    masks: Vec<u64>,
    len: usize,
    shift: u32,
}

impl SharerTable {
    /// A table pre-sized to hold `lines_hint` entries without growing.
    pub fn with_capacity(lines_hint: usize) -> Self {
        // Headroom over the hint keeps the steady-state load factor low:
        // aggregate resident lines can never exceed total cache lines, so
        // 2x the hint keeps probes short for the life of the run.
        let cap = (lines_hint.max(4) * 2).next_power_of_two();
        SharerTable {
            keys: vec![0; cap],
            masks: vec![0; cap],
            len: 0,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of lines with at least one sharer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no line has any sharer.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn ideal(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize
    }

    /// The sharer mask for `line` (zero when untracked).
    #[inline]
    pub fn get(&self, line: LineAddr) -> u64 {
        let key = line.raw();
        let cap_mask = self.keys.len() - 1;
        let mut i = self.ideal(key);
        loop {
            if self.masks[i] == 0 {
                return 0;
            }
            if self.keys[i] == key {
                return self.masks[i];
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Sets `core`'s bit in the mask for `line`.
    pub fn insert(&mut self, line: LineAddr, core: CoreId) {
        debug_assert!(core.index() < 64, "sharer masks cover at most 64 cores");
        if self.len + 1 > self.keys.len() / 8 * 7 {
            self.grow();
        }
        let key = line.raw();
        let bit = 1u64 << core.index();
        let cap_mask = self.keys.len() - 1;
        let mut i = self.ideal(key);
        loop {
            if self.masks[i] == 0 {
                self.keys[i] = key;
                self.masks[i] = bit;
                self.len += 1;
                return;
            }
            if self.keys[i] == key {
                self.masks[i] |= bit;
                return;
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Clears `core`'s bit in the mask for `line`, removing the entry when
    /// the mask empties. Returns whether the bit was set.
    pub fn remove(&mut self, line: LineAddr, core: CoreId) -> bool {
        let key = line.raw();
        let bit = 1u64 << core.index();
        let cap_mask = self.keys.len() - 1;
        let mut i = self.ideal(key);
        loop {
            if self.masks[i] == 0 {
                return false;
            }
            if self.keys[i] == key {
                let had = self.masks[i] & bit != 0;
                self.masks[i] &= !bit;
                if self.masks[i] == 0 {
                    self.remove_at(i);
                }
                return had;
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Replaces the whole mask for `line` (removing the entry when zero).
    pub fn replace(&mut self, line: LineAddr, mask: u64) {
        let key = line.raw();
        let cap_mask = self.keys.len() - 1;
        let mut i = self.ideal(key);
        loop {
            if self.masks[i] == 0 {
                if mask != 0 {
                    if self.len + 1 > self.keys.len() / 8 * 7 {
                        self.grow();
                        self.replace(line, mask);
                        return;
                    }
                    self.keys[i] = key;
                    self.masks[i] = mask;
                    self.len += 1;
                }
                return;
            }
            if self.keys[i] == key {
                if mask == 0 {
                    self.remove_at(i);
                } else {
                    self.masks[i] = mask;
                }
                return;
            }
            i = (i + 1) & cap_mask;
        }
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.masks.fill(0);
        self.len = 0;
    }

    /// Backward-shift deletion: close the hole at `i` by sliding back any
    /// later entry of the same probe chain, so lookups never need
    /// tombstones.
    fn remove_at(&mut self, mut i: usize) {
        let cap_mask = self.keys.len() - 1;
        self.len -= 1;
        loop {
            self.masks[i] = 0;
            let mut j = i;
            loop {
                j = (j + 1) & cap_mask;
                if self.masks[j] == 0 {
                    return;
                }
                let h = self.ideal(self.keys[j]);
                // The entry at j may move back into the hole at i only if
                // its ideal slot is not cyclically within (i, j] — moving
                // it otherwise would park it before its probe chain starts.
                let stays = if i <= j {
                    i < h && h <= j
                } else {
                    i < h || h <= j
                };
                if !stays {
                    self.keys[i] = self.keys[j];
                    self.masks[i] = self.masks[j];
                    i = j;
                    break;
                }
            }
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::take(&mut self.keys);
        let old_masks = std::mem::take(&mut self.masks);
        let cap = old_keys.len() * 2;
        self.keys = vec![0; cap];
        self.masks = vec![0; cap];
        self.shift = 64 - cap.trailing_zeros();
        self.len = 0;
        let cap_mask = cap - 1;
        for (key, mask) in old_keys.into_iter().zip(old_masks) {
            if mask == 0 {
                continue;
            }
            let mut i = self.ideal(key);
            while self.masks[i] != 0 {
                i = (i + 1) & cap_mask;
            }
            self.keys[i] = key;
            self.masks[i] = mask;
            self.len += 1;
        }
    }

    /// Order-independent digest over (line, mask) pairs, used to validate a
    /// restored directory against the rebuilt one.
    fn digest(&self) -> u64 {
        let mut acc = 0u64;
        for (&key, &mask) in self.keys.iter().zip(&self.masks) {
            if mask != 0 {
                acc ^= key
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(mask)
                    .wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            }
        }
        acc
    }
}

/// Sharer-bitmask directory (snoop filter) over the private caches.
///
/// Tracks per line which caches hold a copy, so miss traffic probes only
/// O(sharers) peers. The directory is *derived* state: snapshots persist
/// only the statistics plus a digest, and [`DirectoryFabric::sync`] rebuilds
/// the table from the restored caches (validating it against the digest).
#[derive(Clone, Debug)]
pub struct DirectoryFabric {
    stats: BusStats,
    table: SharerTable,
    /// (len, digest) loaded from a snapshot, checked at the next `sync`.
    pending_check: Option<(u64, u64)>,
}

impl DirectoryFabric {
    /// A directory pre-sized for `lines_hint` aggregate resident lines.
    pub fn with_capacity(lines_hint: usize) -> Self {
        DirectoryFabric {
            stats: BusStats::default(),
            table: SharerTable::with_capacity(lines_hint),
            pending_check: None,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// The tracked sharer mask for `line`.
    pub fn sharers(&self, line: LineAddr) -> u64 {
        self.table.get(line)
    }

    fn rebuild(&mut self, caches: &[SetAssocCache]) {
        self.table.clear();
        for (i, cache) in caches.iter().enumerate() {
            let core = CoreId(i as u8);
            for s in 0..cache.geometry().sets() {
                for (_, l) in cache.set(SetIdx(s)).iter() {
                    self.table.insert(l.addr, core);
                }
            }
        }
    }
}

impl CoherenceFabric for DirectoryFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Directory
    }

    fn stats(&self) -> &BusStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    fn holder_count(&self, _caches: &[SetAssocCache], line: LineAddr) -> usize {
        self.table.get(line).count_ones() as usize
    }

    fn read_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
        policy: ReadPolicy,
    ) -> Option<RemoteHit> {
        debug_assert!(
            caches[requester.index()].probe(line).is_none(),
            "read_miss for a line resident at the requester"
        );
        self.stats.snoops += 1;
        let peers = self.table.get(line) & !(1u64 << requester.index());
        if peers == 0 {
            return None;
        }
        // The lowest set bit is the lowest-index holder — exactly the core
        // the broadcast's ascending scan would stop at.
        let owner = peers.trailing_zeros() as usize;
        self.stats.probes += 1;
        self.stats.transfers += 1;
        let from = CoreId(owner as u8);
        match policy {
            ReadPolicy::Migrate => {
                let taken = caches[owner]
                    .invalidate(line)
                    .expect("directory tracked a holder");
                self.table.remove(line, from);
                Some(RemoteHit {
                    from,
                    line: taken,
                    granted: taken.state,
                })
            }
            ReadPolicy::Replicate => {
                let observed = {
                    let (s, w) = caches[owner]
                        .probe(line)
                        .expect("directory tracked a holder");
                    caches[owner].set(s).line(w).expect("valid way")
                };
                caches[owner].set_state(line, observed.state.after_remote_read());
                Some(RemoteHit {
                    from,
                    line: observed,
                    granted: MesiState::Shared,
                })
            }
        }
    }

    fn write_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> Option<RemoteHit> {
        self.stats.snoops += 1;
        let mask = self.table.get(line);
        let peers = mask & !(1u64 << requester.index());
        let mut hit: Option<RemoteHit> = None;
        // Ascending bit order matches the broadcast's ascending core scan,
        // so the supplier (first holder) is identical.
        let mut rest = peers;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            let taken = caches[i]
                .invalidate(line)
                .expect("directory tracked a holder");
            self.stats.probes += 1;
            self.stats.invalidations += 1;
            if hit.is_none() {
                self.stats.transfers += 1;
                hit = Some(RemoteHit {
                    from: CoreId(i as u8),
                    line: taken,
                    granted: MesiState::Modified,
                });
            }
        }
        if peers != 0 {
            // Only the requester's own copy (upgrade path) may remain.
            self.table.replace(line, mask & (1u64 << requester.index()));
        }
        hit
    }

    fn fetch_state(
        &self,
        _caches: &[SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> MesiState {
        if self.table.get(line) & !(1u64 << requester.index()) != 0 {
            MesiState::Shared
        } else {
            MesiState::Exclusive
        }
    }

    fn note_fill(&mut self, core: CoreId, line: LineAddr) {
        self.table.insert(line, core);
    }

    fn note_evict(&mut self, core: CoreId, line: LineAddr) {
        let had = self.table.remove(line, core);
        debug_assert!(had, "note_evict for an untracked copy");
    }

    fn sync(&mut self, caches: &[SetAssocCache]) -> Result<(), cmp_snap::SnapError> {
        self.rebuild(caches);
        if let Some((len, digest)) = self.pending_check.take() {
            if self.table.len() as u64 != len || self.table.digest() != digest {
                return Err(cmp_snap::SnapError::Mismatch(
                    "restored caches do not reproduce the snapshotted directory".into(),
                ));
            }
        }
        Ok(())
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        save_stats(&self.stats, w);
        w.put_u64(self.table.len() as u64);
        w.put_u64(self.table.digest());
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        self.stats = load_stats(r)?;
        self.pending_check = Some((r.get_u64()?, r.get_u64()?));
        Ok(())
    }
}

/// The engine-facing fabric: a closed enum over both implementations so the
/// hot path dispatches statically (no vtable per miss).
#[derive(Clone, Debug)]
pub enum Fabric {
    /// Spec-literal broadcast snooping.
    Broadcast(SnoopBus),
    /// Sharer-bitmask directory.
    Directory(DirectoryFabric),
}

impl Fabric {
    /// Builds the fabric `kind` names, pre-sized for `lines_hint` aggregate
    /// resident lines (ignored by the broadcast bus).
    pub fn new(kind: FabricKind, lines_hint: usize) -> Self {
        match kind {
            FabricKind::Broadcast => Fabric::Broadcast(SnoopBus::new()),
            FabricKind::Directory => Fabric::Directory(DirectoryFabric::with_capacity(lines_hint)),
        }
    }

    /// Statistics so far (inherent mirror of the trait method, so callers
    /// outside the engine don't need the trait in scope).
    pub fn stats(&self) -> &BusStats {
        match self {
            Fabric::Broadcast(b) => b.stats(),
            Fabric::Directory(d) => d.stats(),
        }
    }

    /// Which fabric this is.
    pub fn kind(&self) -> FabricKind {
        match self {
            Fabric::Broadcast(_) => FabricKind::Broadcast,
            Fabric::Directory(_) => FabricKind::Directory,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $f:ident ( $($arg:expr),* )) => {
        match $self {
            Fabric::Broadcast(b) => CoherenceFabric::$f(b, $($arg),*),
            Fabric::Directory(d) => CoherenceFabric::$f(d, $($arg),*),
        }
    };
}

impl CoherenceFabric for Fabric {
    fn kind(&self) -> FabricKind {
        dispatch!(self, kind())
    }

    fn stats(&self) -> &BusStats {
        dispatch!(self, stats())
    }

    fn reset_stats(&mut self) {
        dispatch!(self, reset_stats())
    }

    fn holder_count(&self, caches: &[SetAssocCache], line: LineAddr) -> usize {
        dispatch!(self, holder_count(caches, line))
    }

    fn read_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
        policy: ReadPolicy,
    ) -> Option<RemoteHit> {
        dispatch!(self, read_miss(caches, requester, line, policy))
    }

    fn write_miss(
        &mut self,
        caches: &mut [SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> Option<RemoteHit> {
        dispatch!(self, write_miss(caches, requester, line))
    }

    fn fetch_state(
        &self,
        caches: &[SetAssocCache],
        requester: CoreId,
        line: LineAddr,
    ) -> MesiState {
        dispatch!(self, fetch_state(caches, requester, line))
    }

    fn note_fill(&mut self, core: CoreId, line: LineAddr) {
        dispatch!(self, note_fill(core, line))
    }

    fn note_evict(&mut self, core: CoreId, line: LineAddr) {
        dispatch!(self, note_evict(core, line))
    }

    fn sync(&mut self, caches: &[SetAssocCache]) -> Result<(), cmp_snap::SnapError> {
        dispatch!(self, sync(caches))
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        dispatch!(self, save_state(w))
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        dispatch!(self, load_state(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CacheGeometry, CacheLine, FillKind, InsertPos};
    use std::collections::HashMap;

    fn caches(n: usize) -> Vec<SetAssocCache> {
        (0..n)
            .map(|_| SetAssocCache::new(CacheGeometry::new(4, 2, 32).unwrap()))
            .collect()
    }

    /// Fills `line` into `c` and mirrors the fill into the directory the way
    /// the engine's `fill_l2` does.
    fn put(dir: &mut DirectoryFabric, c: &mut SetAssocCache, core: CoreId, line: u64) {
        let la = LineAddr::new(line);
        let set = c.geometry().set_of(la);
        let way = c.set(set).default_victim();
        if let Some(victim) = c.fill(
            set,
            way,
            CacheLine::demand(la, MesiState::Shared),
            InsertPos::Mru,
            FillKind::Demand,
        ) {
            dir.note_evict(core, victim.addr);
        }
        dir.note_fill(core, la);
    }

    #[test]
    fn sharer_table_tracks_bits_and_removal() {
        let mut t = SharerTable::with_capacity(8);
        let la = LineAddr::new(42);
        assert_eq!(t.get(la), 0);
        t.insert(la, CoreId(3));
        t.insert(la, CoreId(0));
        assert_eq!(t.get(la), 0b1001);
        assert!(t.remove(la, CoreId(3)));
        assert!(!t.remove(la, CoreId(3)), "bit already clear");
        assert_eq!(t.get(la), 0b0001);
        assert!(t.remove(la, CoreId(0)));
        assert_eq!(t.get(la), 0);
        assert!(t.is_empty(), "entry removed once mask empties");
    }

    #[test]
    fn sharer_table_matches_hashmap_under_churn() {
        // Deterministic LCG churn over a small key space forces collisions,
        // growth, and backward-shift deletions; a HashMap is the model.
        let mut t = SharerTable::with_capacity(4);
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 11) % 257;
            let core = CoreId(((x >> 33) % 64) as u8);
            let la = LineAddr::new(key);
            match (x >> 27) % 3 {
                0 | 1 => {
                    t.insert(la, core);
                    *model.entry(key).or_default() |= 1 << core.index();
                }
                _ => {
                    let had_model = model
                        .get_mut(&key)
                        .map(|m| {
                            let had = *m & (1 << core.index()) != 0;
                            *m &= !(1 << core.index());
                            had
                        })
                        .unwrap_or(false);
                    model.retain(|_, m| *m != 0);
                    assert_eq!(t.remove(la, core), had_model);
                }
            }
        }
        assert_eq!(t.len(), model.len());
        for (&k, &m) in &model {
            assert_eq!(t.get(LineAddr::new(k)), m, "mask mismatch for line {k}");
        }
    }

    #[test]
    fn directory_read_miss_matches_broadcast_owner() {
        // Holders at cores 2 and 1: both fabrics must pick core 1.
        let mut cs_bus = caches(4);
        let mut cs_dir = caches(4);
        let mut bus = SnoopBus::new();
        let mut dir = DirectoryFabric::with_capacity(64);
        for &(core, line) in &[(2u8, 5u64), (1, 5)] {
            put(&mut dir, &mut cs_dir[core as usize], CoreId(core), line);
            let la = LineAddr::new(line);
            let set = cs_bus[core as usize].geometry().set_of(la);
            let way = cs_bus[core as usize].set(set).default_victim();
            cs_bus[core as usize].fill(
                set,
                way,
                CacheLine::demand(la, MesiState::Shared),
                InsertPos::Mru,
                FillKind::Demand,
            );
        }
        let la = LineAddr::new(5);
        let hb = bus.read_miss(&mut cs_bus, CoreId(0), la, ReadPolicy::Migrate);
        let hd =
            CoherenceFabric::read_miss(&mut dir, &mut cs_dir, CoreId(0), la, ReadPolicy::Migrate);
        assert_eq!(hb, hd, "owner choice must be bit-identical");
        assert_eq!(hb.unwrap().from, CoreId(1));
        assert_eq!(dir.stats().probes, 1, "directory probed only the owner");
        assert_eq!(bus.stats().probes, 3, "broadcast probed every peer");
    }

    #[test]
    fn directory_write_miss_preserves_requester_copy() {
        // Upgrade path: the requester holds the line Shared alongside two
        // peers; write_miss must invalidate the peers but keep tracking the
        // requester's copy.
        let mut cs = caches(4);
        let mut dir = DirectoryFabric::with_capacity(64);
        for core in [0u8, 1, 3] {
            put(&mut dir, &mut cs[core as usize], CoreId(core), 5);
        }
        let la = LineAddr::new(5);
        let hit = CoherenceFabric::write_miss(&mut dir, &mut cs, CoreId(0), la).unwrap();
        assert_eq!(hit.from, CoreId(1), "lowest-index peer supplies");
        assert_eq!(dir.stats().invalidations, 2);
        assert_eq!(dir.stats().probes, 2);
        assert_eq!(dir.sharers(la), 0b0001, "requester's copy still tracked");
        assert!(cs[0].probe(la).is_some());
        assert!(cs[1].probe(la).is_none());
        assert!(cs[3].probe(la).is_none());
    }

    #[test]
    fn directory_full_miss_probes_nothing() {
        let mut cs = caches(2);
        let mut dir = DirectoryFabric::with_capacity(64);
        let la = LineAddr::new(9);
        assert!(
            CoherenceFabric::read_miss(&mut dir, &mut cs, CoreId(0), la, ReadPolicy::Migrate)
                .is_none()
        );
        assert_eq!(
            CoherenceFabric::fetch_state(&dir, &cs, CoreId(0), la),
            MesiState::Exclusive
        );
        assert_eq!(dir.stats().snoops, 1);
        assert_eq!(dir.stats().probes, 0, "no sharers, no probes");
    }

    #[test]
    fn directory_replicate_keeps_peer_tracked() {
        let mut cs = caches(2);
        let mut dir = DirectoryFabric::with_capacity(64);
        put(&mut dir, &mut cs[1], CoreId(1), 5);
        let la = LineAddr::new(5);
        let hit =
            CoherenceFabric::read_miss(&mut dir, &mut cs, CoreId(0), la, ReadPolicy::Replicate)
                .unwrap();
        assert_eq!(hit.granted, MesiState::Shared);
        assert_eq!(dir.sharers(la), 0b10, "peer copy stays tracked");
        assert_eq!(
            CoherenceFabric::fetch_state(&dir, &cs, CoreId(0), la),
            MesiState::Shared
        );
    }

    #[test]
    fn sync_rebuilds_and_digest_validates() {
        let mut cs = caches(3);
        let mut dir = DirectoryFabric::with_capacity(64);
        for (core, line) in [(0u8, 1u64), (1, 1), (2, 9), (0, 12)] {
            put(&mut dir, &mut cs[core as usize], CoreId(core), line);
        }
        let mut w = cmp_snap::SnapWriter::new();
        CoherenceFabric::save_state(&dir, &mut w);
        let bytes = w.into_bytes();

        let mut restored = DirectoryFabric::with_capacity(64);
        let mut r = cmp_snap::SnapReader::new(&bytes);
        CoherenceFabric::load_state(&mut restored, &mut r).unwrap();
        restored.sync(&cs).unwrap();
        assert_eq!(
            restored.sharers(LineAddr::new(1)),
            dir.sharers(LineAddr::new(1))
        );
        assert_eq!(restored.stats(), dir.stats());

        // Perturb a cache: the digest check must now fail.
        let mut restored2 = DirectoryFabric::with_capacity(64);
        let mut r2 = cmp_snap::SnapReader::new(&bytes);
        CoherenceFabric::load_state(&mut restored2, &mut r2).unwrap();
        cs[2].invalidate(LineAddr::new(9)).unwrap();
        assert!(restored2.sync(&cs).is_err(), "digest mismatch detected");
    }

    #[test]
    fn fabric_kind_round_trips() {
        for kind in [FabricKind::Broadcast, FabricKind::Directory] {
            assert_eq!(FabricKind::from_u8(kind.as_u8()), Some(kind));
        }
        assert_eq!(FabricKind::from_u8(7), None);
        assert_eq!(FabricKind::default(), FabricKind::Directory);
        let f = Fabric::new(FabricKind::Directory, 16);
        assert_eq!(f.kind(), FabricKind::Directory);
        assert_eq!(
            Fabric::new(FabricKind::Broadcast, 16).kind(),
            FabricKind::Broadcast
        );
    }
}
