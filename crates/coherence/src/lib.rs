//! # cmp-coherence — MESI broadcast coherence for private LLCs
//!
//! The ASCC/AVGCC paper relies on the chip's "MESI-based broadcasting"
//! coherence protocol (Table 2) for three things:
//!
//! 1. finding a requested line in a *peer* private LLC (remote hits, 25
//!    cycles vs 9 local);
//! 2. determining whether an evicted line is the **last copy on chip** — the
//!    precondition for spilling it instead of evicting to memory (§3.1);
//! 3. carrying the spill-candidate (SSL) information alongside the regular
//!    line-search broadcast, making candidate selection traffic-free.
//!
//! This crate implements the snoop-bus side of that picture over
//! [`cmp_cache::SetAssocCache`] instances: [`SnoopBus`] performs read/write
//! miss broadcasts with either *migration* (multiprogrammed private data) or
//! *replication* (multithreaded shared data) semantics, and
//! [`check_mesi`]/[`assert_coherent`] verify the protocol invariants in
//! tests.
//!
//! ## Example
//!
//! ```
//! use cmp_cache::{CacheGeometry, CacheLine, CoreId, FillKind, InsertPos,
//!                 LineAddr, MesiState, SetAssocCache};
//! use cmp_coherence::{ReadPolicy, SnoopBus};
//!
//! # fn main() -> Result<(), cmp_cache::GeometryError> {
//! let geom = CacheGeometry::from_capacity(1 << 14, 4, 32)?;
//! let mut l2s = vec![SetAssocCache::new(geom), SetAssocCache::new(geom)];
//! // Core 1 holds the line; core 0 misses and snoops it out.
//! let line = LineAddr::new(0x80);
//! let set = geom.set_of(line);
//! let way = l2s[1].set(set).default_victim();
//! l2s[1].fill(set, way, CacheLine::demand(line, MesiState::Exclusive),
//!             InsertPos::Mru, FillKind::Demand);
//!
//! let mut bus = SnoopBus::new();
//! let hit = bus.read_miss(&mut l2s, CoreId(0), line, ReadPolicy::Migrate)
//!     .expect("peer holds the line");
//! assert_eq!(hit.from, CoreId(1));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod checker;
mod fabric;

pub use bus::{BusStats, ReadPolicy, RemoteHit, SnoopBus};
pub use checker::{
    assert_coherent, check_granularity, check_mesi, check_recency, check_spilled_last_copies,
    check_ssl, ssl_role, InvariantViolation, ProtocolViolation, SslRole,
};
pub use fabric::{CoherenceFabric, DirectoryFabric, Fabric, FabricKind, SharerTable};
