//! Property-based protocol test: random load/store sequences through the
//! snoop bus keep the MESI invariants, in both migration and replication
//! modes, including under replacements (small caches force evictions).

use cmp_cache::{
    CacheGeometry, CacheLine, CoreId, FillKind, InsertPos, LineAddr, MesiState, SetAssocCache,
};
use cmp_coherence::{assert_coherent, ReadPolicy, SnoopBus};
use proptest::prelude::*;

struct World {
    caches: Vec<SetAssocCache>,
    bus: SnoopBus,
    policy: ReadPolicy,
}

impl World {
    fn new(cores: usize, policy: ReadPolicy) -> Self {
        let geom = CacheGeometry::new(2, 2, 32).unwrap(); // tiny: lots of evictions
        World {
            caches: (0..cores).map(|_| SetAssocCache::new(geom)).collect(),
            bus: SnoopBus::new(),
            policy,
        }
    }

    fn fill(&mut self, core: CoreId, line: LineAddr, state: MesiState) {
        let c = &mut self.caches[core.index()];
        let set = c.geometry().set_of(line);
        let way = c.set(set).default_victim();
        // Evictions drop the line silently here; coherence-wise that is a
        // plain write-back, which never violates MESI.
        c.fill(
            set,
            way,
            CacheLine::demand(line, state),
            InsertPos::Mru,
            FillKind::Demand,
        );
    }

    fn load(&mut self, core: CoreId, line: LineAddr) {
        if self.caches[core.index()].access(line).is_some() {
            return; // local hit
        }
        match self
            .bus
            .read_miss(&mut self.caches, core, line, self.policy)
        {
            Some(hit) => self.fill(core, line, hit.granted),
            None => {
                let st = self.bus.fetch_state(&self.caches, core, line);
                self.fill(core, line, st);
            }
        }
    }

    fn store(&mut self, core: CoreId, line: LineAddr) {
        if self.caches[core.index()].access(line).is_some() {
            // Upgrade: invalidate remote copies, then mark Modified.
            self.bus.write_miss(&mut self.caches, core, line);
            self.caches[core.index()].set_state(line, MesiState::Modified);
            return;
        }
        self.bus.write_miss(&mut self.caches, core, line);
        self.fill(core, line, MesiState::Modified);
    }
}

#[derive(Clone, Debug)]
enum Op {
    Load(u8, u64),
    Store(u8, u64),
}

fn ops(cores: u8, lines: u64) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..cores), (0..lines)).prop_map(|(c, l)| Op::Load(c, l)),
            ((0..cores), (0..lines)).prop_map(|(c, l)| Op::Store(c, l)),
        ],
        0..256,
    )
}

fn run(policy: ReadPolicy, cores: u8, script: Vec<Op>) {
    let mut w = World::new(cores as usize, policy);
    for op in script {
        match op {
            Op::Load(c, l) => w.load(CoreId(c), LineAddr::new(l)),
            Op::Store(c, l) => w.store(CoreId(c), LineAddr::new(l)),
        }
        assert_coherent(&w.caches);
    }
}

proptest! {
    #[test]
    fn replication_mode_is_coherent(script in ops(4, 8)) {
        run(ReadPolicy::Replicate, 4, script);
    }

    #[test]
    fn migration_mode_is_coherent(script in ops(4, 8)) {
        run(ReadPolicy::Migrate, 4, script);
    }

    #[test]
    fn two_core_mixed_traffic_is_coherent(script in ops(2, 4)) {
        run(ReadPolicy::Replicate, 2, script);
    }
}

#[test]
fn migration_keeps_single_copy_for_private_data() {
    // Disjoint address spaces (multiprogrammed): every line belongs to one
    // core; after any interleaving each line has at most one copy.
    let mut w = World::new(2, ReadPolicy::Migrate);
    for i in 0..32u64 {
        w.load(CoreId((i % 2) as u8), LineAddr::new((i % 2) << 32 | i));
    }
    for line in 0..32u64 {
        let la = LineAddr::new((line % 2) << 32 | line);
        let holders = w.bus.holders(&w.caches, la);
        assert!(holders.len() <= 1, "line {la} has {holders:?}");
    }
}

#[test]
fn store_after_shared_read_leaves_one_modified_copy() {
    let mut w = World::new(3, ReadPolicy::Replicate);
    let la = LineAddr::new(5);
    w.load(CoreId(0), la);
    w.load(CoreId(1), la);
    w.load(CoreId(2), la);
    assert_eq!(w.bus.holders(&w.caches, la).len(), 3);
    w.store(CoreId(1), la);
    assert_eq!(w.bus.holders(&w.caches, la), vec![CoreId(1)]);
    assert_eq!(w.caches[1].state_of(la), Some(MesiState::Modified));
    assert_coherent(&w.caches);
}
