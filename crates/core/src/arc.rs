//! Per-set **ARC** (Adaptive Replacement Cache) as an [`LlcPolicy`].
//!
//! Megiddo & Modha's ARC (FAST 2003) splits each set's resident lines into
//! a recency list **T1** (seen once recently) and a frequency list **T2**
//! (seen at least twice), shadowed by equally sized ghost lists **B1**/**B2**
//! holding the tags of recently evicted members. A hit in a ghost list is
//! evidence the corresponding resident list is too small, so the adaptive
//! target `p` (the desired size of T1) moves toward it.
//!
//! This implementation runs ARC independently in every `(core, set)` pair
//! of the private-LLC CMP, on top of the engine's single physical recency
//! stack: T1/T2 membership is one bit per way, and each list's internal
//! LRU order is the global recency order filtered by that bit (equivalent
//! to two separate stacks, since every touch is a move-to-MRU in both
//! views). The variable-size metadata — membership mask, `p`, and the two
//! ghost tag arrays — lives in a [`SidecarSlab`] row per `(core, set)`
//! rather than in the nibble-packed SoA set layout, which caps per-way
//! recency state at 16 ways and has no room for ghost tags.
//!
//! ARC is a *private* replacement policy: it never spills
//! ([`SpillDecision::NotSpiller`]) and draws no randomness, so it doubles
//! as an RNG-free reference point in the policy-frontier head-to-head.
//!
//! [`SpillDecision::NotSpiller`]: cmp_cache::SpillDecision::NotSpiller

use cmp_cache::{
    AccessOutcome, CoreId, FillKind, LineAddr, LlcPolicy, PolicySnapshot, SetIdx, SetRef, WayIdx,
};

use crate::storage::SidecarSlab;

/// Ghost-hit classification of the access currently being filled, latched
/// per core between `note_access(Miss)` and the demand `choose_victim`.
const PENDING_FRESH: u8 = 0;
const PENDING_B1: u8 = 1;
const PENDING_B2: u8 = 2;

/// Packed header word of one `(core, set)` sidecar row.
#[derive(Clone, Copy, Debug)]
struct RowHeader {
    /// Way bitmask: bit `w` set means way `w` is in T2 (clear = T1).
    t2_mask: u16,
    /// Current B1 ghost-list length.
    b1_len: u8,
    /// Current B2 ghost-list length.
    b2_len: u8,
    /// Adaptive target size of T1, `0..=ways`.
    p: u8,
}

impl RowHeader {
    fn unpack(word: u64) -> Self {
        RowHeader {
            t2_mask: word as u16,
            b1_len: (word >> 16) as u8,
            b2_len: (word >> 24) as u8,
            p: (word >> 32) as u8,
        }
    }

    fn pack(self) -> u64 {
        self.t2_mask as u64
            | (self.b1_len as u64) << 16
            | (self.b2_len as u64) << 24
            | (self.p as u64) << 32
    }
}

/// Configuration of [`ArcPolicy`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArcConfig {
    /// Number of cores (= private LLCs).
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// Ways per set (the per-set ARC capacity `c`); at most 16.
    pub ways: u16,
}

impl ArcConfig {
    /// Per-set ARC over `cores` private LLCs of `sets` x `ways` each.
    pub fn new(cores: usize, sets: u32, ways: u16) -> Self {
        ArcConfig { cores, sets, ways }
    }

    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is 0 or above 16 (the T2 membership mask is one
    /// 16-bit word, matching the engine's nibble-recency way cap).
    pub fn build(self) -> ArcPolicy {
        assert!(
            self.ways >= 1 && self.ways <= 16,
            "ARC supports 1..=16 ways, got {}",
            self.ways
        );
        let rows = self.cores * self.sets as usize;
        let words = 1 + 2 * self.ways as usize;
        ArcPolicy {
            cfg: self,
            slab: SidecarSlab::new(rows, words),
            pending: vec![PENDING_FRESH; self.cores],
            b1_hits: 0,
            b2_hits: 0,
        }
    }
}

/// Per-set ARC with T1/T2 membership bits, B1/B2 ghost lists and the
/// adaptive target `p` (see the [module docs](self)).
#[derive(Debug)]
pub struct ArcPolicy {
    cfg: ArcConfig,
    /// One row per `(core, set)`: header word, then `ways` B1 ghost tags
    /// (index 0 = MRU), then `ways` B2 ghost tags.
    slab: SidecarSlab,
    /// Ghost classification of the in-flight miss, per core.
    pending: Vec<u8>,
    b1_hits: u64,
    b2_hits: u64,
}

impl ArcPolicy {
    fn row_index(&self, core: CoreId, set: SetIdx) -> usize {
        core.index() * self.cfg.sets as usize + set.0 as usize
    }

    fn header(&self, row: usize) -> RowHeader {
        RowHeader::unpack(self.slab.row(row)[0])
    }

    fn set_header(&mut self, row: usize, h: RowHeader) {
        self.slab.row_mut(row)[0] = h.pack();
    }

    /// Offset of ghost list `list` (0 = B1, 1 = B2) inside a row.
    fn ghost_base(&self, list: usize) -> usize {
        1 + list * self.cfg.ways as usize
    }

    /// Position of `addr` in ghost list `list` of `row`, if present.
    fn ghost_find(&self, row: usize, list: usize, len: u8, addr: LineAddr) -> Option<usize> {
        let base = self.ghost_base(list);
        let words = self.slab.row(row);
        (0..len as usize).find(|&i| words[base + i] == addr.raw())
    }

    /// Removes the entry at `pos` from ghost list `list`, shifting the
    /// tail up. Returns the new length.
    fn ghost_remove(&mut self, row: usize, list: usize, len: u8, pos: usize) -> u8 {
        let base = self.ghost_base(list);
        let words = self.slab.row_mut(row);
        for i in pos..len as usize - 1 {
            words[base + i] = words[base + i + 1];
        }
        words[base + len as usize - 1] = 0;
        len - 1
    }

    /// Pushes `addr` at the MRU end of ghost list `list`, dropping the LRU
    /// entry if the list is at capacity. Returns the new length.
    fn ghost_push(&mut self, row: usize, list: usize, len: u8, addr: LineAddr) -> u8 {
        let cap = self.cfg.ways as usize;
        let base = self.ghost_base(list);
        let words = self.slab.row_mut(row);
        let kept = (len as usize).min(cap - 1);
        for i in (0..kept).rev() {
            words[base + i + 1] = words[base + i];
        }
        words[base] = addr.raw();
        (kept + 1) as u8
    }

    /// Drops the LRU entry of ghost list `list`. Returns the new length.
    fn ghost_pop_lru(&mut self, row: usize, list: usize, len: u8) -> u8 {
        debug_assert!(len > 0);
        let base = self.ghost_base(list);
        self.slab.row_mut(row)[base + len as usize - 1] = 0;
        len - 1
    }

    fn set_t2_bit(&mut self, row: usize, way: WayIdx, in_t2: bool) {
        let mut h = self.header(row);
        if in_t2 {
            h.t2_mask |= 1 << way.0;
        } else {
            h.t2_mask &= !(1 << way.0);
        }
        self.set_header(row, h);
    }

    /// The adaptive T1 target of `core`'s `set` (test/diff observability).
    pub fn p_of(&self, core: CoreId, set: SetIdx) -> u16 {
        self.header(self.row_index(core, set)).p as u16
    }

    /// T2 membership mask of `core`'s `set`: bit `w` set means way `w`
    /// currently belongs to T2.
    pub fn t2_mask(&self, core: CoreId, set: SetIdx) -> u16 {
        self.header(self.row_index(core, set)).t2_mask
    }

    /// The `(B1, B2)` ghost tag lists of `core`'s `set`, MRU first.
    pub fn ghosts(&self, core: CoreId, set: SetIdx) -> (Vec<u64>, Vec<u64>) {
        let row = self.row_index(core, set);
        let h = self.header(row);
        let words = self.slab.row(row);
        let b1 = words[self.ghost_base(0)..][..h.b1_len as usize].to_vec();
        let b2 = words[self.ghost_base(1)..][..h.b2_len as usize].to_vec();
        (b1, b2)
    }

    /// Total `(B1, B2)` ghost hits since construction.
    pub fn ghost_hits(&self) -> (u64, u64) {
        (self.b1_hits, self.b2_hits)
    }
}

impl LlcPolicy for ArcPolicy {
    fn name(&self) -> &str {
        "ARC"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut s = PolicySnapshot::new(self.name());
        s.ghost_hits = Some(self.b1_hits + self.b2_hits);
        s
    }

    fn record_access(&mut self, _core: CoreId, _set: SetIdx, _outcome: AccessOutcome) {
        // All bookkeeping needs the line address; see note_access.
    }

    fn note_access(
        &mut self,
        core: CoreId,
        line: LineAddr,
        set: SetIdx,
        outcome: AccessOutcome,
        way: Option<WayIdx>,
    ) {
        let row = self.row_index(core, set);
        match outcome {
            AccessOutcome::Hit { .. } => {
                // Second touch while resident: promote T1 -> T2. (Already-T2
                // lines just stay; the engine's move-to-MRU keeps the
                // filtered T2 order correct.)
                if let Some(w) = way {
                    self.set_t2_bit(row, w, true);
                }
            }
            AccessOutcome::Miss => {
                let mut h = self.header(row);
                let k = self.cfg.ways;
                if let Some(pos) = self.ghost_find(row, 0, h.b1_len, line) {
                    // Case II: hit in B1 -> grow the recency target.
                    self.b1_hits += 1;
                    let delta = ((h.b2_len as u64) / (h.b1_len as u64)).max(1);
                    h.p = ((h.p as u64 + delta).min(k as u64)) as u8;
                    h.b1_len = self.ghost_remove(row, 0, h.b1_len, pos);
                    self.set_header(row, h);
                    self.pending[core.index()] = PENDING_B1;
                } else if let Some(pos) = self.ghost_find(row, 1, h.b2_len, line) {
                    // Case III: hit in B2 -> grow the frequency target.
                    self.b2_hits += 1;
                    let delta = ((h.b1_len as u64) / (h.b2_len as u64)).max(1);
                    h.p = (h.p as u64).saturating_sub(delta) as u8;
                    h.b2_len = self.ghost_remove(row, 1, h.b2_len, pos);
                    self.set_header(row, h);
                    self.pending[core.index()] = PENDING_B2;
                } else {
                    // Case IV: a completely fresh line.
                    self.pending[core.index()] = PENDING_FRESH;
                }
            }
        }
    }

    fn choose_victim(
        &mut self,
        core: CoreId,
        set: SetIdx,
        kind: FillKind,
        contents: SetRef<'_>,
    ) -> WayIdx {
        let row = self.row_index(core, set);
        let pending = if kind == FillKind::Demand {
            std::mem::replace(&mut self.pending[core.index()], PENDING_FRESH)
        } else {
            PENDING_FRESH
        };
        if let Some(w) = contents.invalid_way() {
            // Coherence invalidations open holes classic ARC never sees;
            // fill them without evicting. Ghost hits still enter as T2.
            self.set_t2_bit(row, w, kind == FillKind::Demand && pending != PENDING_FRESH);
            return w;
        }
        if kind != FillKind::Demand {
            // Spilled-in / prefetched lines have no ARC history; treat them
            // as single-touch (T1) residents at whatever way LRU offers,
            // remembering the displaced line in its list's ghost.
            let w = contents.default_victim();
            let mut h = self.header(row);
            if let Some(victim) = contents.line(w) {
                if h.t2_mask & (1 << w.0) == 0 {
                    h.b1_len = self.ghost_push(row, 0, h.b1_len, victim.addr);
                } else {
                    h.b2_len = self.ghost_push(row, 1, h.b2_len, victim.addr);
                }
            }
            h.t2_mask &= !(1 << w.0);
            self.set_header(row, h);
            return w;
        }

        let mut h = self.header(row);
        let k = self.cfg.ways;
        let t2_mask = h.t2_mask;
        let in_t1 = |w: WayIdx| contents.line(w).is_some() && t2_mask & (1 << w.0) == 0;
        let in_t2 = |w: WayIdx| contents.line(w).is_some() && t2_mask & (1 << w.0) != 0;
        let t1_size = contents
            .iter()
            .filter(|&(w, _)| t2_mask & (1 << w.0) == 0)
            .count() as u16;
        let rec = contents.recency();
        let t1_lru = rec.lru_where(in_t1);
        let t2_lru = rec.lru_where(in_t2);

        // DBL(2c) directory trimming (paper's case IV), fresh misses only:
        // ghost hits already freed a slot in their own list.
        let mut push_ghost = true;
        if pending == PENDING_FRESH {
            if t1_size + h.b1_len as u16 >= k {
                if h.b1_len > 0 {
                    h.b1_len = self.ghost_pop_lru(row, 0, h.b1_len);
                } else {
                    // |T1| == c and B1 empty: ARC discards the T1 LRU
                    // without remembering it.
                    push_ghost = false;
                }
            } else if contents.valid_count() + h.b1_len as u16 + h.b2_len as u16 >= 2 * k
                && h.b2_len > 0
            {
                h.b2_len = self.ghost_pop_lru(row, 1, h.b2_len);
            }
        }

        // REPLACE(p): evict the T1 LRU when T1 exceeds its target (or a B2
        // hit demands frequency room at the boundary), else the T2 LRU.
        let evict_t1 = match (t1_lru, t2_lru) {
            (Some(_), None) => true,
            (None, _) => false,
            (Some(_), Some(_)) => {
                t1_size > h.p as u16 || (pending == PENDING_B2 && t1_size == h.p as u16)
            }
        };
        let (way, list) = if evict_t1 {
            (t1_lru.expect("T1 nonempty"), 0)
        } else {
            (t2_lru.expect("full set has a T2 line"), 1)
        };
        if push_ghost {
            let victim = contents.line(way).expect("victim is valid").addr;
            if list == 0 {
                h.b1_len = self.ghost_push(row, 0, h.b1_len, victim);
            } else {
                h.b2_len = self.ghost_push(row, 1, h.b2_len, victim);
            }
        }
        // The newcomer joins T2 exactly when it was a ghost hit.
        if pending == PENDING_FRESH {
            h.t2_mask &= !(1 << way.0);
        } else {
            h.t2_mask |= 1 << way.0;
        }
        self.set_header(row, h);
        way
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut out = Vec::new();
        let k = self.cfg.ways;
        for core in 0..self.cfg.cores {
            for set in 0..self.cfg.sets {
                let row = self.row_index(CoreId(core as u8), SetIdx(set));
                let h = self.header(row);
                if h.b1_len as u16 > k || h.b2_len as u16 > k {
                    out.push(format!(
                        "core {core} set {set}: ghost lengths B1={} B2={} exceed {k} ways",
                        h.b1_len, h.b2_len
                    ));
                }
                if h.p as u16 > k {
                    out.push(format!("core {core} set {set}: p={} exceeds {k}", h.p));
                }
                if h.t2_mask >> k != 0 {
                    out.push(format!(
                        "core {core} set {set}: T2 mask {:#x} names ways >= {k}",
                        h.t2_mask
                    ));
                }
                let words = self.slab.row(row);
                let b1 = &words[self.ghost_base(0)..][..h.b1_len as usize];
                let b2 = &words[self.ghost_base(1)..][..h.b2_len as usize];
                for (i, tag) in b1.iter().enumerate() {
                    if b1[..i].contains(tag) || b2.contains(tag) {
                        out.push(format!(
                            "core {core} set {set}: ghost tag {tag:#x} appears twice"
                        ));
                    }
                }
                for (i, tag) in b2.iter().enumerate() {
                    if b2[..i].contains(tag) {
                        out.push(format!(
                            "core {core} set {set}: B2 tag {tag:#x} appears twice"
                        ));
                    }
                }
            }
        }
        out
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_str(self.name());
        self.slab.save_state(w);
        w.put_u64(self.pending.len() as u64);
        for &p in &self.pending {
            w.put_u8(p);
        }
        w.put_u64(self.b1_hits);
        w.put_u64(self.b2_hits);
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        let name = r.get_str()?;
        if name != self.name() {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "policy variant: snapshot \"{name}\", live \"{}\"",
                self.name()
            )));
        }
        self.slab.load_state(r)?;
        let n = r.get_u64()?;
        if n != self.pending.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "core count: snapshot {n}, live {}",
                self.pending.len()
            )));
        }
        for p in &mut self.pending {
            *p = r.get_u8()?;
            if *p > PENDING_B2 {
                return Err(cmp_snap::SnapError::Corrupt(format!(
                    "pending ghost class {p} out of range"
                )));
            }
        }
        self.b1_hits = r.get_u64()?;
        self.b2_hits = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CacheLine, CacheSet, InsertPos, MesiState};

    const K: u16 = 4;

    fn policy() -> ArcPolicy {
        ArcConfig::new(1, 8, K).build()
    }

    fn line(addr: u64) -> CacheLine {
        CacheLine {
            addr: LineAddr::new(addr),
            state: MesiState::Exclusive,
            spilled: false,
        }
    }

    /// Runs one demand miss + fill of `addr` through the policy against a
    /// model set, mirroring the engine's call order.
    fn miss_fill(p: &mut ArcPolicy, set: &mut CacheSet, addr: u64) -> WayIdx {
        let a = LineAddr::new(addr);
        p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        p.note_access(CoreId(0), a, SetIdx(0), AccessOutcome::Miss, None);
        let w = p.choose_victim(CoreId(0), SetIdx(0), FillKind::Demand, set.view());
        set.view_mut().fill(w, line(addr), InsertPos::Mru);
        w
    }

    fn hit(p: &mut ArcPolicy, set: &mut CacheSet, addr: u64) {
        let a = LineAddr::new(addr);
        let w = set.find(a).expect("hit target resident");
        let depth = set.depth_of(w) as u16;
        let outcome = AccessOutcome::Hit {
            spilled: false,
            depth,
        };
        p.record_access(CoreId(0), SetIdx(0), outcome);
        p.note_access(CoreId(0), a, SetIdx(0), outcome, Some(w));
        set.view_mut().touch(w);
    }

    #[test]
    fn fresh_misses_fill_invalid_ways_as_t1() {
        let mut p = policy();
        let mut set = CacheSet::new(K);
        for a in 0..K as u64 {
            miss_fill(&mut p, &mut set, 0x100 + a);
        }
        assert_eq!(p.t2_mask(CoreId(0), SetIdx(0)), 0, "all lines are T1");
        assert_eq!(p.p_of(CoreId(0), SetIdx(0)), 0);
    }

    #[test]
    fn hits_promote_to_t2_and_eviction_prefers_t1() {
        let mut p = policy();
        let mut set = CacheSet::new(K);
        for a in 0..K as u64 {
            miss_fill(&mut p, &mut set, 0x100 + a);
        }
        hit(&mut p, &mut set, 0x100); // 0x100 -> T2
        let w = miss_fill(&mut p, &mut set, 0x200);
        // Victim must be a T1 line (0x101, the T1 LRU), never the T2 line.
        assert!(set.find(LineAddr::new(0x100)).is_some());
        assert!(set.find(LineAddr::new(0x101)).is_none());
        let (b1, b2) = p.ghosts(CoreId(0), SetIdx(0));
        assert_eq!(b1, vec![0x101], "T1 victim remembered in B1");
        assert!(b2.is_empty());
        assert_eq!(p.t2_mask(CoreId(0), SetIdx(0)) & (1 << w.0), 0);
    }

    #[test]
    fn full_t1_with_empty_b1_discards_without_ghost() {
        // ARC case IV(A): |T1| == c and B1 empty -> the T1 LRU is dropped
        // and deliberately NOT remembered.
        let mut p = policy();
        let mut set = CacheSet::new(K);
        for a in 0..=K as u64 {
            miss_fill(&mut p, &mut set, 0x100 + a);
        }
        let (b1, b2) = p.ghosts(CoreId(0), SetIdx(0));
        assert!(b1.is_empty() && b2.is_empty());
        assert!(set.find(LineAddr::new(0x100)).is_none());
    }

    #[test]
    fn b1_ghost_hit_grows_p_and_admits_to_t2() {
        let mut p = policy();
        let mut set = CacheSet::new(K);
        for a in 0..K as u64 {
            miss_fill(&mut p, &mut set, 0x100 + a);
        }
        hit(&mut p, &mut set, 0x103); // one T2 line keeps |T1| < c
        miss_fill(&mut p, &mut set, 0x200); // evicts T1 LRU 0x100 -> B1
        assert_eq!(p.ghosts(CoreId(0), SetIdx(0)).0, vec![0x100]);
        let before = p.p_of(CoreId(0), SetIdx(0));
        let w = miss_fill(&mut p, &mut set, 0x100); // B1 ghost hit
        assert_eq!(p.ghost_hits(), (1, 0));
        assert!(p.p_of(CoreId(0), SetIdx(0)) > before, "p grew on B1 hit");
        assert_ne!(
            p.t2_mask(CoreId(0), SetIdx(0)) & (1 << w.0),
            0,
            "ghost-hit line re-enters as T2"
        );
        assert!(
            !p.ghosts(CoreId(0), SetIdx(0)).0.contains(&0x100),
            "ghost entry consumed"
        );
    }

    #[test]
    fn b2_ghost_hit_shrinks_p() {
        let mut p = policy();
        let mut set = CacheSet::new(K);
        for a in 0..K as u64 {
            miss_fill(&mut p, &mut set, 0x100 + a);
        }
        // Promote everything to T2, then force T2 evictions.
        for a in 0..K as u64 {
            hit(&mut p, &mut set, 0x100 + a);
        }
        miss_fill(&mut p, &mut set, 0x200); // T2 full, p=0 -> evict T2 LRU 0x100 -> B2
        assert_eq!(p.ghosts(CoreId(0), SetIdx(0)).1, vec![0x100]);
        // Raise p first so a B2 hit has something to shrink.
        miss_fill(&mut p, &mut set, 0x300);
        miss_fill(&mut p, &mut set, 0x200); // back-to-back: 0x200 evicted? ensure ghost state sane
        let p_before = p.p_of(CoreId(0), SetIdx(0));
        miss_fill(&mut p, &mut set, 0x100); // B2 ghost hit
        assert_eq!(p.ghost_hits().1, 1);
        assert!(p.p_of(CoreId(0), SetIdx(0)) <= p_before);
        assert!(p.check_invariants().is_empty());
    }

    #[test]
    fn ghost_lists_never_exceed_capacity() {
        let mut p = policy();
        let mut set = CacheSet::new(K);
        for a in 0..64u64 {
            miss_fill(&mut p, &mut set, 0x1000 + a);
        }
        let (b1, b2) = p.ghosts(CoreId(0), SetIdx(0));
        assert!(b1.len() <= K as usize && b2.len() <= K as usize);
        assert!(p.check_invariants().is_empty());
    }

    #[test]
    fn save_load_round_trips_ghosts_and_p() {
        let mut p = policy();
        let mut set = CacheSet::new(K);
        for a in 0..12u64 {
            miss_fill(&mut p, &mut set, 0x100 + a * 3);
        }
        hit(&mut p, &mut set, 0x100 + 11 * 3);
        miss_fill(&mut p, &mut set, 0x100); // likely ghost traffic
        let mut w = cmp_snap::SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut q = policy();
        let mut r = cmp_snap::SnapReader::new(&bytes);
        q.load_state(&mut r).expect("load");
        assert_eq!(
            p.ghosts(CoreId(0), SetIdx(0)),
            q.ghosts(CoreId(0), SetIdx(0))
        );
        assert_eq!(p.p_of(CoreId(0), SetIdx(0)), q.p_of(CoreId(0), SetIdx(0)));
        assert_eq!(p.ghost_hits(), q.ghost_hits());
    }

    #[test]
    fn wrong_policy_snapshot_is_rejected() {
        let mut w = cmp_snap::SnapWriter::new();
        w.put_str("LRU");
        let bytes = w.into_bytes();
        let mut p = policy();
        let mut r = cmp_snap::SnapReader::new(&bytes);
        assert!(p.load_state(&mut r).is_err());
    }
}
