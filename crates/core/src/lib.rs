//! # ascc — Adaptive Set-Granular Cooperative Caching
//!
//! The primary contribution of the HPCA 2012 paper *Adaptive Set-Granular
//! Cooperative Caching* (Rolán, Fraguela, Doallo), implemented against the
//! [`cmp_cache::LlcPolicy`] interface:
//!
//! * [`AsccPolicy`] / [`AsccConfig`] — **ASCC** (§3): per-set Set Saturation
//!   Level counters classify each set as *spiller*, *neutral* or *receiver*;
//!   spiller sets spill last-copy victims to the minimum-SSL receiver set of
//!   a peer cache; when no receiver exists, the set switches to the
//!   **SABIP** insertion policy (`LRU-1` insertion, ε-MRU) to fight capacity
//!   thrashing. All the paper's ablations (LRS, LMS, GMS, LMS+BIP,
//!   GMS+SABIP, ASCC-2S, static granularities) are configurations.
//! * [`AvgccPolicy`] / [`AvgccConfig`] — **AVGCC** (§4): dynamically adapts
//!   the granularity (sets per counter) with the `A`/`B`/`D` hardware
//!   counters, and its **QoS** extension (§8) that throttles the mechanism
//!   when it performs worse than the estimated baseline.
//! * [`SpillAllocator`] — the scalable hardware candidate-tracking structure
//!   sketched in §3.1.
//! * [`StorageModel`] — the Table 5 / §7 storage-cost accounting.
//!
//! Beyond the paper, the post-2012 policy frontier (ROADMAP item 2):
//!
//! * [`ArcPolicy`] / [`ArcConfig`] — per-set **ARC** with T1/T2 membership,
//!   B1/B2 ghost lists and the adaptive target `p`;
//! * [`TinyLfuPolicy`] / [`TinyLfuConfig`] — a **TinyLFU admission filter**
//!   (4-bit count-min sketch + doorkeeper + periodic halving reset)
//!   composable in front of any [`cmp_cache::LlcPolicy`];
//! * [`RdcbPolicy`] / [`RdcbConfig`] — **reuse-distance clean-line
//!   copy-back** layered over ASCC's spill allocator (arXiv 2105.14442).
//!
//! Their variable-size metadata (ghost tags, sketch counters, predictor
//! rows) lives in [`SidecarSlab`] arenas next to the SoA set layout.
//!
//! ## Example
//!
//! ```
//! use ascc::{AsccConfig, SetRole};
//! use cmp_cache::{AccessOutcome, CoreId, LlcPolicy, SetIdx, SpillDecision, SpillVictim};
//!
//! // 2 cores, 64-set 8-way LLCs.
//! let mut policy = AsccConfig::ascc(2, 64, 8).build();
//!
//! // Core 0 hammers set 3 with misses until it saturates...
//! for _ in 0..16 {
//!     policy.record_access(CoreId(0), SetIdx(3), AccessOutcome::Miss);
//! }
//! assert_eq!(policy.role(CoreId(0), SetIdx(3)), SetRole::Spiller);
//!
//! // ...so an evicted last-copy line from that set spills to core 1,
//! // whose same-index set is underutilized.
//! assert_eq!(policy.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default()),
//!            SpillDecision::Spill(CoreId(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arc;
mod avgcc;
mod policy;
mod rdcb;
mod spill_alloc;
mod ssl;
mod storage;
mod tinylfu;
mod tuning;

pub use arc::{ArcConfig, ArcPolicy};
pub use avgcc::{AvgccConfig, AvgccPolicy};
pub use policy::{AsccConfig, AsccPolicy, CapacityPolicy, ReceiverSelection};
pub use rdcb::{RdcbConfig, RdcbPolicy};
pub use spill_alloc::{cluster_of, SpillAllocator, CLUSTER_CORES};
pub use ssl::{SetRole, SslTable};
pub use storage::{SidecarSlab, StorageCost, StorageModel};
pub use tinylfu::{TinyLfuConfig, TinyLfuPolicy};
pub use tuning::{SslTuning, StressMetric};
