//! **RD-CB** — reuse-distance-driven clean-line copy-back on top of ASCC.
//!
//! ASCC's spill path only forwards *last-copy* victims from spiller sets;
//! everything else a non-spiller set evicts is silently dropped, even when
//! the line is about to be re-referenced. Copy-back proposals (e.g.
//! arXiv 2105.14442) observe that clean victims with a short predicted
//! reuse distance are exactly the lines worth keeping on-chip: they cost
//! nothing to move (no writeback ordering) and save a full memory fetch if
//! the prediction holds.
//!
//! `RdcbPolicy` wraps [`AsccPolicy`] and refines only
//! [`LlcPolicy::spill_decision`]:
//!
//! 1. ASCC decides first. A positive spill decision is final — RD-CB never
//!    overrides the paper's mechanism.
//! 2. Otherwise, if the victim is **clean** and a per-core reuse-distance
//!    predictor says it recurs within `threshold` accesses, the line is
//!    copied back to a peer chosen by the *same* receiver allocator ASCC
//!    uses ([`AsccPolicy::receiver_for`]) — same min-SSL scan, same
//!    cluster filtering, same RNG stream.
//!
//! The predictor is a direct-mapped table of `entries` rows per core in a
//! [`SidecarSlab`] (tag, last-access stamp, last observed distance),
//! updated from [`LlcPolicy::note_access`] with a per-core access clock.
//! Dirty victims are never copied back: they already pay a writeback, and
//! forwarding them would duplicate the coherence traffic the paper's spill
//! path accounts for.

use cmp_cache::{
    AccessOutcome, CoreId, FillKind, InsertPos, LineAddr, LlcPolicy, ObsEvent, PolicySnapshot,
    SetIdx, SetRef, SpillDecision, SpillVictim, WayIdx,
};

use crate::policy::{AsccConfig, AsccPolicy};
use crate::storage::SidecarSlab;

/// Words per predictor row: tag+1, last stamp, last distance.
const ROW_WORDS: usize = 3;
/// Sentinel distance for "seen once, no distance yet".
const DIST_UNKNOWN: u64 = u64::MAX;

/// Configuration of [`RdcbPolicy`].
#[derive(Clone, Debug)]
pub struct RdcbConfig {
    /// The wrapped ASCC configuration.
    pub inner: AsccConfig,
    /// Predictor rows per core; must be a power of two.
    pub entries: u32,
    /// Copy back clean victims whose predicted reuse distance (in L2
    /// accesses by the same core) is at most this.
    pub threshold: u64,
}

impl RdcbConfig {
    /// RD-CB over the paper's default ASCC with a 1024-entry predictor per
    /// core and a reuse-distance threshold of 4x the per-cache line count
    /// (a victim predicted to recur within a few cache lifetimes is worth
    /// keeping on-chip).
    pub fn new(cores: usize, sets: u32, ways: u16) -> Self {
        RdcbConfig {
            inner: AsccConfig::ascc(cores, sets, ways),
            entries: 1024,
            threshold: 4 * sets as u64 * ways as u64,
        }
    }

    /// Builds the policy.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn build(self) -> RdcbPolicy {
        assert!(
            self.entries.is_power_of_two(),
            "predictor entries must be a power of two, got {}",
            self.entries
        );
        let cores = self.inner.cores;
        RdcbPolicy {
            table: SidecarSlab::new(cores * self.entries as usize, ROW_WORDS),
            clock: vec![0; cores],
            copy_backs: 0,
            inner: self.inner.clone().build(),
            cfg: self,
        }
    }
}

/// Reuse-distance clean-line copy-back layered over ASCC (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct RdcbPolicy {
    cfg: RdcbConfig,
    /// Direct-mapped predictor, `cores x entries` rows.
    table: SidecarSlab,
    /// Per-core L2-access clock driving the distance measurements.
    clock: Vec<u64>,
    /// Clean victims forwarded to a peer by the refinement.
    copy_backs: u64,
    inner: AsccPolicy,
}

impl RdcbPolicy {
    fn row_index(&self, core: CoreId, addr: LineAddr) -> usize {
        let slot = (addr.raw() ^ (addr.raw() >> 20)) & (self.cfg.entries as u64 - 1);
        core.index() * self.cfg.entries as usize + slot as usize
    }

    /// The last measured reuse distance of `addr` by `core`, if the
    /// predictor still holds it.
    pub fn predicted_distance(&self, core: CoreId, addr: LineAddr) -> Option<u64> {
        let row = self.table.row(self.row_index(core, addr));
        (row[0] == addr.raw().wrapping_add(1) && row[2] != DIST_UNKNOWN).then_some(row[2])
    }

    /// Whether a clean victim of `core` would be copied back right now.
    pub fn would_copy_back(&self, core: CoreId, addr: LineAddr) -> bool {
        self.predicted_distance(core, addr)
            .is_some_and(|d| d <= self.cfg.threshold)
    }

    /// Clean-victim copy-backs performed since construction.
    pub fn copy_backs(&self) -> u64 {
        self.copy_backs
    }

    /// The wrapped ASCC policy.
    pub fn inner(&self) -> &AsccPolicy {
        &self.inner
    }

    /// The configured reuse-distance threshold.
    pub fn threshold(&self) -> u64 {
        self.cfg.threshold
    }

    /// `core`'s L2-access clock (diff-harness observability).
    pub fn clock_of(&self, core: CoreId) -> u64 {
        self.clock[core.index()]
    }

    /// `core`'s raw predictor rows as `(tag+1, last stamp, distance)`
    /// tuples, slot order (diff-harness observability).
    pub fn predictor_rows(&self, core: CoreId) -> Vec<(u64, u64, u64)> {
        let base = core.index() * self.cfg.entries as usize;
        (0..self.cfg.entries as usize)
            .map(|slot| {
                let row = self.table.row(base + slot);
                (row[0], row[1], row[2])
            })
            .collect()
    }
}

impl LlcPolicy for RdcbPolicy {
    fn name(&self) -> &str {
        "RD-CB"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut s = self.inner.snapshot();
        s.policy = self.name().to_string();
        s.copy_backs = Some(self.copy_backs);
        s
    }

    fn set_observed(&mut self, observed: bool) {
        self.inner.set_observed(observed);
    }

    fn drain_events(&mut self, out: &mut Vec<ObsEvent>) {
        self.inner.drain_events(out);
    }

    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        self.inner.record_access(core, set, outcome);
    }

    fn note_access(
        &mut self,
        core: CoreId,
        line: LineAddr,
        set: SetIdx,
        outcome: AccessOutcome,
        way: Option<WayIdx>,
    ) {
        let now = self.clock[core.index()];
        self.clock[core.index()] += 1;
        let idx = self.row_index(core, line);
        let row = self.table.row_mut(idx);
        if row[0] == line.raw().wrapping_add(1) {
            row[2] = now - row[1];
            row[1] = now;
        } else {
            // Direct-mapped replacement: the newcomer takes the slot.
            row[0] = line.raw().wrapping_add(1);
            row[1] = now;
            row[2] = DIST_UNKNOWN;
        }
        self.inner.note_access(core, line, set, outcome, way);
    }

    fn admit_fill(
        &mut self,
        core: CoreId,
        set: SetIdx,
        line: LineAddr,
        contents: SetRef<'_>,
    ) -> bool {
        self.inner.admit_fill(core, set, line, contents)
    }

    fn demand_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        self.inner.demand_insert_pos(core, set)
    }

    fn spill_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        self.inner.spill_insert_pos(core, set)
    }

    fn spill_decision(&mut self, from: CoreId, set: SetIdx, victim: SpillVictim) -> SpillDecision {
        let base = self.inner.spill_decision(from, set, victim);
        if matches!(base, SpillDecision::Spill(_)) {
            return base;
        }
        if !victim.dirty && self.would_copy_back(from, victim.addr) {
            if let Some(to) = self.inner.receiver_for(from, set) {
                self.copy_backs += 1;
                return SpillDecision::Spill(to);
            }
        }
        base
    }

    fn swap_enabled(&self) -> bool {
        self.inner.swap_enabled()
    }

    fn choose_victim(
        &mut self,
        core: CoreId,
        set: SetIdx,
        kind: FillKind,
        contents: SetRef<'_>,
    ) -> WayIdx {
        self.inner.choose_victim(core, set, kind, contents)
    }

    fn note_remote_hit(&mut self, owner: CoreId, set: SetIdx, was_spilled: bool) {
        self.inner.note_remote_hit(owner, set, was_spilled);
    }

    fn on_cycle(&mut self, core: CoreId, cycles: u64) {
        self.inner.on_cycle(core, cycles);
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut out = self.inner.check_invariants();
        for (core, &t) in self.clock.iter().enumerate() {
            let base = core * self.cfg.entries as usize;
            for slot in 0..self.cfg.entries as usize {
                let row = self.table.row(base + slot);
                // Any occupied slot was stamped by a past tick (< clock).
                if row[0] != 0 && row[1] >= t {
                    out.push(format!(
                        "core {core} predictor slot {slot} stamped at {} with clock {t}",
                        row[1]
                    ));
                }
            }
        }
        out
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_str(self.name());
        w.put_u64(self.copy_backs);
        w.put_u64(self.clock.len() as u64);
        for &t in &self.clock {
            w.put_u64(t);
        }
        self.table.save_state(w);
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        let name = r.get_str()?;
        if name != self.name() {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "policy variant: snapshot \"{name}\", live \"{}\"",
                self.name()
            )));
        }
        self.copy_backs = r.get_u64()?;
        let n = r.get_u64()?;
        if n != self.clock.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "core count: snapshot {n}, live {}",
                self.clock.len()
            )));
        }
        for t in &mut self.clock {
            *t = r.get_u64()?;
        }
        self.table.load_state(r)?;
        self.inner.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SETS: u32 = 16;
    const WAYS: u16 = 4;

    fn policy() -> RdcbPolicy {
        RdcbConfig {
            threshold: 8,
            ..RdcbConfig::new(2, SETS, WAYS)
        }
        .build()
    }

    fn touch(p: &mut RdcbPolicy, core: u8, addr: u64) {
        p.record_access(CoreId(core), SetIdx(0), AccessOutcome::Miss);
        p.note_access(
            CoreId(core),
            LineAddr::new(addr),
            SetIdx(0),
            AccessOutcome::Miss,
            None,
        );
    }

    #[test]
    fn distance_is_measured_per_core() {
        let mut p = policy();
        touch(&mut p, 0, 0x40);
        for a in 0..5u64 {
            touch(&mut p, 0, 0x1000 + a);
        }
        touch(&mut p, 0, 0x40);
        assert_eq!(
            p.predicted_distance(CoreId(0), LineAddr::new(0x40)),
            Some(6)
        );
        assert_eq!(p.predicted_distance(CoreId(1), LineAddr::new(0x40)), None);
    }

    #[test]
    fn threshold_gates_copy_back() {
        let mut p = policy();
        // Short-distance line: recurs after 2 intervening accesses.
        touch(&mut p, 0, 0x40);
        touch(&mut p, 0, 0x80);
        touch(&mut p, 0, 0x40);
        assert!(p.would_copy_back(CoreId(0), LineAddr::new(0x40)));
        // Long-distance line: recurs after far more than the threshold.
        touch(&mut p, 0, 0xc0);
        for a in 0..20u64 {
            touch(&mut p, 0, 0x2000 + a * 64);
        }
        touch(&mut p, 0, 0xc0);
        assert!(!p.would_copy_back(CoreId(0), LineAddr::new(0xc0)));
        // Never-seen-twice line: no distance, no copy-back.
        assert!(!p.would_copy_back(CoreId(0), LineAddr::new(0xdead_0000)));
    }

    #[test]
    fn dirty_victims_are_never_copied_back() {
        let mut p = policy();
        touch(&mut p, 0, 0x40);
        touch(&mut p, 0, 0x40);
        assert!(p.would_copy_back(CoreId(0), LineAddr::new(0x40)));
        let dirty = SpillVictim {
            addr: LineAddr::new(0x40),
            spilled: false,
            dirty: true,
        };
        // Set 0 is neutral (no misses recorded against SSL saturation), so
        // ASCC itself says NotSpiller; dirtiness must block the refinement.
        let d = p.spill_decision(CoreId(0), SetIdx(0), dirty);
        assert!(!matches!(d, SpillDecision::Spill(_)));
        assert_eq!(p.copy_backs(), 0);
    }

    #[test]
    fn clean_predicted_victim_is_forwarded() {
        let mut p = policy();
        touch(&mut p, 0, 0x40);
        touch(&mut p, 0, 0x40);
        let clean = SpillVictim::clean(LineAddr::new(0x40));
        let d = p.spill_decision(CoreId(0), SetIdx(0), clean);
        assert_eq!(
            d,
            SpillDecision::Spill(CoreId(1)),
            "copied back to the peer"
        );
        assert_eq!(p.copy_backs(), 1);
    }

    #[test]
    fn ascc_spill_decision_takes_precedence() {
        let mut p = policy();
        // Saturate core 0 set 3 so ASCC itself spills.
        for _ in 0..16 {
            p.record_access(CoreId(0), SetIdx(3), AccessOutcome::Miss);
        }
        let d = p.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default());
        assert_eq!(d, SpillDecision::Spill(CoreId(1)));
        assert_eq!(p.copy_backs(), 0, "ASCC's own spill is not a copy-back");
    }

    #[test]
    fn save_load_round_trips_predictor_and_clock() {
        let mut p = policy();
        for a in 0..40u64 {
            touch(&mut p, (a % 2) as u8, 0x100 + (a % 9) * 64);
        }
        let mut w = cmp_snap::SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut q = policy();
        let mut r = cmp_snap::SnapReader::new(&bytes);
        q.load_state(&mut r).expect("load");
        assert_eq!(p.copy_backs(), q.copy_backs());
        for a in 0..9u64 {
            let addr = LineAddr::new(0x100 + a * 64);
            assert_eq!(
                p.predicted_distance(CoreId(0), addr),
                q.predicted_distance(CoreId(0), addr)
            );
        }
    }
}
