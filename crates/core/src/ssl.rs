//! Set Saturation Level (SSL) counters.
//!
//! The SSL is the stress metric of the whole design (§3): a saturating
//! counter per set (or per group of sets) in the range `0 ..= 2K-1`, where
//! `K` is the associativity. It is **incremented on a miss and decremented
//! on a hit**, so a saturated counter means the set cannot hold its working
//! set and a low counter means the set has underutilized lines.
//!
//! Counters are stored in 4.3 fixed point (three fractional bits) because
//! the QoS extension (§8) adds a fractional `QoSRatio` instead of 1 on each
//! miss. Plain designs always add/subtract [`SslTable::ONE`].

use crate::tuning::{SslTuning, StressMetric};

/// Role of a set derived from its SSL (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SetRole {
    /// `SSL < K`: plenty of recent hits — the set can host peers' lines.
    Receiver,
    /// `K <= SSL < 2K-1`: under pressure; neither spill nor receive.
    Neutral,
    /// `SSL == 2K-1` (saturated): the set cannot hold its working set and
    /// spills last-copy victims.
    Spiller,
}

/// A table of SSL counters covering the sets of one cache at a given
/// granularity (`sets_per_counter` adjacent sets share one counter).
///
/// # Examples
///
/// ```
/// use ascc::{SetRole, SslTable};
/// // 8-way cache, 16 sets, finest granularity.
/// let mut t = SslTable::new(16, 8, 1);
/// assert_eq!(t.role(3), SetRole::Receiver); // starts at K-1 < K
/// for _ in 0..16 { t.on_miss(3, SslTable::ONE); }
/// assert_eq!(t.role(3), SetRole::Spiller);  // saturated at 2K-1
/// t.on_hit(3);
/// assert_eq!(t.role(3), SetRole::Neutral);
/// ```
#[derive(Clone, Debug)]
pub struct SslTable {
    counters: Vec<u16>,
    sets: u32,
    /// log2 of sets-per-counter (the paper's `D` for this table).
    gran_log2: u8,
    /// Receiver threshold in fixed point: `K << 3`.
    k_fixed: u16,
    /// Saturation value in fixed point: `(2K - 1) << 3` by default.
    max_fixed: u16,
    /// Spiller threshold in fixed point (= `max_fixed` for the paper's
    /// saturating counters; slightly below it for the EWMA metric, which
    /// only approaches the maximum asymptotically).
    spiller_fixed: u16,
    /// Update rule.
    metric: StressMetric,
}

impl SslTable {
    /// Fixed-point representation of 1.0.
    pub const ONE: u16 = 1 << 3;

    /// Creates a table for `sets` sets of a `k`-way cache, with
    /// `sets_per_counter` adjacent sets sharing a counter. Counters start at
    /// `K - 1` (the AVGCC re-initialisation value, just below the receiver
    /// threshold).
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `sets_per_counter` is not a nonzero power of two,
    /// `sets_per_counter > sets`, or `k == 0`.
    pub fn new(sets: u32, k: u16, sets_per_counter: u32) -> Self {
        Self::with_tuning(sets, k, sets_per_counter, SslTuning::default())
    }

    /// Like [`SslTable::new`] but with explicit saturation-range tuning
    /// (the paper's §9 future-work knob).
    ///
    /// # Panics
    ///
    /// See [`SslTable::new`]; additionally panics if the tuned maximum does
    /// not exceed `K`.
    pub fn with_tuning(sets: u32, k: u16, sets_per_counter: u32, tuning: SslTuning) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(
            sets_per_counter > 0 && sets_per_counter.is_power_of_two(),
            "sets_per_counter must be a power of two"
        );
        assert!(
            sets_per_counter <= sets,
            "cannot group more sets than exist"
        );
        assert!(k > 0, "associativity must be nonzero");
        let max = tuning.max_value(k);
        assert!(max > k, "saturation maximum must exceed K");
        if let StressMetric::Ewma { shift } = tuning.metric {
            assert!(
                (1..14).contains(&shift),
                "EWMA shift must be in 1..14 to stay meaningful in 4.3 fixed point"
            );
        }
        let gran_log2 = sets_per_counter.trailing_zeros() as u8;
        let n = (sets >> gran_log2) as usize;
        let max_fixed = max << 3;
        let spiller_fixed = match tuning.metric {
            StressMetric::Saturating => max_fixed,
            // The EWMA converges to max without reaching it: classify as
            // a spiller from 7/8 of the range up.
            StressMetric::Ewma { .. } => max_fixed - (max_fixed >> 3),
        };
        SslTable {
            counters: vec![(k - 1) << 3; n],
            sets,
            gran_log2,
            k_fixed: k << 3,
            max_fixed,
            spiller_fixed,
            metric: tuning.metric,
        }
    }

    /// Number of counters in the table.
    pub fn counters(&self) -> usize {
        self.counters.len()
    }

    /// Serialises the table — a shape fingerprint plus the counter values —
    /// into `w` (restored by [`load_state`](SslTable::load_state) on a
    /// table of identical shape).
    pub fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_u32(self.sets);
        w.put_u8(self.gran_log2);
        w.put_u16(self.k_fixed);
        w.put_u16(self.max_fixed);
        w.put_u16(self.spiller_fixed);
        w.put_u16_slice(&self.counters);
    }

    /// Restores counters captured by [`save_state`](SslTable::save_state).
    ///
    /// Fails with [`cmp_snap::SnapError::Mismatch`] on a shape difference
    /// and [`cmp_snap::SnapError::Corrupt`] on out-of-range counter values.
    pub fn load_state(
        &mut self,
        r: &mut cmp_snap::SnapReader<'_>,
    ) -> Result<(), cmp_snap::SnapError> {
        let shape = (
            r.get_u32()?,
            r.get_u8()?,
            r.get_u16()?,
            r.get_u16()?,
            r.get_u16()?,
        );
        let live = (
            self.sets,
            self.gran_log2,
            self.k_fixed,
            self.max_fixed,
            self.spiller_fixed,
        );
        if shape != live {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "SSL table shape: snapshot {shape:?}, live {live:?}"
            )));
        }
        let counters = r.get_u16_slice()?;
        if counters.len() != self.counters.len() {
            return Err(cmp_snap::SnapError::Corrupt(format!(
                "SSL counter count {} for a table of {}",
                counters.len(),
                self.counters.len()
            )));
        }
        if let Some(&v) = counters.iter().find(|&&v| v > self.max_fixed) {
            return Err(cmp_snap::SnapError::Corrupt(format!(
                "SSL counter {v} exceeds saturation maximum {}",
                self.max_fixed
            )));
        }
        self.counters = counters;
        Ok(())
    }

    /// Number of sets covered.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Sets per counter.
    pub fn sets_per_counter(&self) -> u32 {
        1 << self.gran_log2
    }

    /// The receiver threshold `K` in fixed point.
    pub fn k_fixed(&self) -> u16 {
        self.k_fixed
    }

    /// The saturation value in fixed point.
    pub fn max_fixed(&self) -> u16 {
        self.max_fixed
    }

    /// Index of the counter covering `set` (the paper's `I >> D`).
    #[inline]
    pub fn counter_of(&self, set: u32) -> usize {
        debug_assert!(set < self.sets);
        (set >> self.gran_log2) as usize
    }

    /// Fixed-point value of the counter covering `set`.
    #[inline]
    pub fn value(&self, set: u32) -> u16 {
        self.counters[self.counter_of(set)]
    }

    /// Fixed-point value of counter `idx` directly.
    #[inline]
    pub fn value_at(&self, idx: usize) -> u16 {
        self.counters[idx]
    }

    /// Overwrites counter `idx` (AVGCC re-initialisation). Clamps to the
    /// saturation range.
    pub fn set_value_at(&mut self, idx: usize, value_fixed: u16) {
        self.counters[idx] = value_fixed.min(self.max_fixed);
    }

    /// Miss update: saturating add of `inc_fixed` (use [`SslTable::ONE`]
    /// outside QoS mode) under the paper's metric; an upward EWMA step
    /// scaled by `inc_fixed` under [`StressMetric::Ewma`]. Returns
    /// `(old, new)` fixed-point values.
    pub fn on_miss(&mut self, set: u32, inc_fixed: u16) -> (u16, u16) {
        let idx = self.counter_of(set);
        let old = self.counters[idx];
        let new = match self.metric {
            StressMetric::Saturating => old.saturating_add(inc_fixed).min(self.max_fixed),
            StressMetric::Ewma { shift } => {
                // v += (max - v) >> shift, scaled by the (QoS) increment.
                let step =
                    ((self.max_fixed - old) as u32 >> shift) * inc_fixed as u32 / Self::ONE as u32;
                // A nonzero increment always makes progress.
                let step = if inc_fixed > 0 { step.max(1) } else { step };
                (old as u32 + step).min(self.max_fixed as u32) as u16
            }
        };
        self.counters[idx] = new;
        (old, new)
    }

    /// Hit update: saturating subtract of 1.0 (paper metric) or a downward
    /// EWMA step. Returns `(old, new)`.
    pub fn on_hit(&mut self, set: u32) -> (u16, u16) {
        let idx = self.counter_of(set);
        let old = self.counters[idx];
        let new = match self.metric {
            StressMetric::Saturating => old.saturating_sub(Self::ONE),
            StressMetric::Ewma { shift } => old - ((old >> shift).max(1)).min(old),
        };
        self.counters[idx] = new;
        (old, new)
    }

    /// Three-state classification of `set` (§3.1).
    pub fn role(&self, set: u32) -> SetRole {
        self.role_of_value(self.value(set))
    }

    /// Two-state classification (the ASCC-2S ablation of Fig. 5):
    /// spiller iff `SSL >= K`, receiver otherwise.
    pub fn role_two_state(&self, set: u32) -> SetRole {
        if self.value(set) < self.k_fixed {
            SetRole::Receiver
        } else {
            SetRole::Spiller
        }
    }

    /// The spiller threshold in fixed point (equals the saturation value
    /// for the paper's metric).
    pub fn spiller_fixed(&self) -> u16 {
        self.spiller_fixed
    }

    /// Classifies a raw fixed-point value.
    pub fn role_of_value(&self, v: u16) -> SetRole {
        if v < self.k_fixed {
            SetRole::Receiver
        } else if v >= self.spiller_fixed {
            SetRole::Spiller
        } else {
            SetRole::Neutral
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_just_below_receiver_threshold() {
        let t = SslTable::new(8, 4, 1);
        assert_eq!(t.counters(), 8);
        assert_eq!(t.value(0), 3 << 3);
        assert_eq!(t.role(0), SetRole::Receiver);
    }

    #[test]
    fn saturates_at_2k_minus_1() {
        let mut t = SslTable::new(4, 4, 1);
        for _ in 0..100 {
            t.on_miss(2, SslTable::ONE);
        }
        assert_eq!(t.value(2), 7 << 3);
        assert_eq!(t.role(2), SetRole::Spiller);
        // One hit drops to neutral.
        t.on_hit(2);
        assert_eq!(t.role(2), SetRole::Neutral);
    }

    #[test]
    fn floors_at_zero() {
        let mut t = SslTable::new(4, 4, 1);
        for _ in 0..100 {
            t.on_hit(1);
        }
        assert_eq!(t.value(1), 0);
        assert_eq!(t.role(1), SetRole::Receiver);
    }

    #[test]
    fn three_state_boundaries() {
        let t = SslTable::new(4, 8, 1);
        assert_eq!(t.role_of_value(0), SetRole::Receiver);
        assert_eq!(t.role_of_value((8 << 3) - 1), SetRole::Receiver);
        assert_eq!(t.role_of_value(8 << 3), SetRole::Neutral);
        assert_eq!(t.role_of_value((15 << 3) - 1), SetRole::Neutral);
        assert_eq!(t.role_of_value(15 << 3), SetRole::Spiller);
    }

    #[test]
    fn two_state_boundaries() {
        let mut t = SslTable::new(4, 8, 1);
        assert_eq!(t.role_two_state(0), SetRole::Receiver);
        for _ in 0..2 {
            t.on_miss(0, SslTable::ONE);
        }
        // value = 7+2 = 9 >= 8 -> spiller under two-state, neutral otherwise.
        assert_eq!(t.role_two_state(0), SetRole::Spiller);
        assert_eq!(t.role(0), SetRole::Neutral);
    }

    #[test]
    fn granularity_groups_adjacent_sets() {
        let mut t = SslTable::new(16, 4, 4);
        assert_eq!(t.counters(), 4);
        assert_eq!(t.counter_of(0), 0);
        assert_eq!(t.counter_of(3), 0);
        assert_eq!(t.counter_of(4), 1);
        t.on_miss(1, SslTable::ONE);
        // Sets 0..4 share the counter.
        assert_eq!(t.value(0), t.value(3));
        assert_ne!(t.value(0), t.value(4));
    }

    #[test]
    fn fractional_increments_accumulate() {
        let mut t = SslTable::new(4, 4, 1);
        // QoSRatio of 0.5 -> add 4 fixed-point units per miss.
        let start = t.value(0);
        t.on_miss(0, 4);
        t.on_miss(0, 4);
        assert_eq!(t.value(0), start + 8);
    }

    #[test]
    fn set_value_clamps() {
        let mut t = SslTable::new(4, 4, 1);
        t.set_value_at(0, u16::MAX);
        assert_eq!(t.value_at(0), t.max_fixed());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_grouping() {
        let _ = SslTable::new(16, 4, 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Counters always stay inside [0, max] and the role function is
        /// consistent with the thresholds, under any update sequence.
        #[test]
        fn counters_stay_bounded(
            k in 1u16..16,
            ops in prop::collection::vec((0u32..8, prop::bool::ANY, 1u16..12), 0..200),
        ) {
            let mut t = SslTable::new(8, k, 1);
            for (set, is_miss, inc) in ops {
                if is_miss {
                    t.on_miss(set, inc);
                } else {
                    t.on_hit(set);
                }
                let v = t.value(set);
                prop_assert!(v <= t.max_fixed());
                match t.role(set) {
                    SetRole::Receiver => prop_assert!(v < t.k_fixed()),
                    SetRole::Spiller => prop_assert!(v >= t.max_fixed()),
                    SetRole::Neutral => {
                        prop_assert!(v >= t.k_fixed() && v < t.max_fixed())
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod ewma_tests {
    use super::*;

    fn ewma_table(k: u16, shift: u8) -> SslTable {
        SslTable::with_tuning(8, k, 1, SslTuning::ewma(shift))
    }

    #[test]
    fn misses_converge_to_spiller() {
        let mut t = ewma_table(8, 3);
        for _ in 0..200 {
            t.on_miss(0, SslTable::ONE);
        }
        assert_eq!(t.role(0), SetRole::Spiller);
        assert!(t.value(0) >= t.spiller_fixed());
        assert!(t.value(0) <= t.max_fixed());
    }

    #[test]
    fn hits_converge_to_receiver() {
        let mut t = ewma_table(8, 3);
        for _ in 0..200 {
            t.on_miss(0, SslTable::ONE);
        }
        for _ in 0..200 {
            t.on_hit(0);
        }
        assert_eq!(t.role(0), SetRole::Receiver);
        assert_eq!(t.value(0), 0, "EWMA decays fully to zero");
    }

    #[test]
    fn reacts_faster_than_saturating_counter() {
        // After a long all-miss history, a burst of hits turns the EWMA
        // around in fewer events than the +-1 counter.
        let mut ewma = ewma_table(8, 2);
        let mut sat = SslTable::new(8, 8, 1);
        for _ in 0..200 {
            ewma.on_miss(0, SslTable::ONE);
            sat.on_miss(0, SslTable::ONE);
        }
        let mut ewma_steps = 0;
        while ewma.role(0) != SetRole::Receiver {
            ewma.on_hit(0);
            ewma_steps += 1;
        }
        let mut sat_steps = 0;
        while sat.role(0) != SetRole::Receiver {
            sat.on_hit(0);
            sat_steps += 1;
        }
        assert!(
            ewma_steps < sat_steps,
            "EWMA ({ewma_steps}) should flip faster than saturating ({sat_steps})"
        );
    }

    #[test]
    fn qos_scaled_increments_still_move() {
        let mut t = ewma_table(8, 3);
        // A QoS ratio of 1/8 scales the upward step but must not stall it.
        let before = t.value(0);
        t.on_miss(0, 1);
        assert!(t.value(0) > before);
        // A zero ratio freezes the counter on misses (full inhibition).
        let frozen = t.value(0);
        t.on_miss(0, 0);
        assert_eq!(t.value(0), frozen);
    }

    #[test]
    fn spiller_threshold_below_max_only_for_ewma() {
        let e = ewma_table(4, 3);
        assert!(e.spiller_fixed() < e.max_fixed());
        let s = SslTable::new(8, 4, 1);
        assert_eq!(s.spiller_fixed(), s.max_fixed());
    }

    #[test]
    #[should_panic(expected = "EWMA shift")]
    fn silly_shift_rejected() {
        let _ = SslTable::with_tuning(8, 8, 1, SslTuning::ewma(0));
    }

    #[test]
    fn metric_is_per_table() {
        // StressMetric::Ewma never exceeds max even with huge increments.
        let mut t = ewma_table(4, 1);
        for _ in 0..100 {
            t.on_miss(3, u16::MAX);
        }
        assert!(t.value(3) <= t.max_fixed());
        assert_eq!(t.role(3), SetRole::Spiller);
    }
}
