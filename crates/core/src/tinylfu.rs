//! **TinyLFU** admission filtering (Einziger, Friedman & Manes, ACM ToS
//! 2017) composable in front of any [`LlcPolicy`].
//!
//! TinyLFU is not a replacement policy: it is a *gate* on the off-chip fill
//! path. An approximate frequency sketch — here a 4-bit count-min sketch
//! fronted by a 1-bit *doorkeeper* bloom filter — observes every L2 access.
//! When a fetched line would evict a resident victim, the candidate is
//! admitted only if its estimated frequency strictly exceeds the victim's;
//! otherwise the fill is bypassed entirely (the engine skips both the L2
//! and L1 fills via [`LlcPolicy::admit_fill`]). Every `sample_period`
//! observations the sketch is *reset* by halving every counter and clearing
//! the doorkeeper, which ages out stale history exponentially.
//!
//! The sketch and doorkeeper live in [`SidecarSlab`] arenas (16 4-bit
//! counters per word; 64 doorkeeper bits per word), and all hashing is a
//! fixed SplitMix64 finalizer over per-row seed constants, so the policy is
//! deterministic and snapshot-exact.
//!
//! The wrapped eviction policy decides victims, insertion positions and
//! spill routing untouched — `TinyLfuPolicy` forwards every other
//! [`LlcPolicy`] hook to it.

use cmp_cache::{
    AccessOutcome, CoreId, FillKind, InsertPos, LineAddr, LlcPolicy, ObsEvent, PolicySnapshot,
    PrivateBaseline, SetIdx, SetRef, SpillDecision, SpillVictim, WayIdx,
};

use crate::storage::SidecarSlab;

/// Per-row seed constants for the count-min sketch rows.
const ROW_SEEDS: [u64; 8] = [
    0x9e37_79b9_7f4a_7c15,
    0xc2b2_ae3d_27d4_eb4f,
    0x1656_67b1_9e37_79f9,
    0x27d4_eb2f_1656_67c5,
    0xff51_afd7_ed55_8ccd,
    0xc4ce_b9fe_1a85_ec53,
    0x8538_ecb5_bd45_6ea3,
    0x2545_f491_4f6c_dd1d,
];

/// Seed for the doorkeeper bloom bit.
const DOORKEEPER_SEED: u64 = 0x5851_f42d_4c95_7f2d;

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Configuration of [`TinyLfuPolicy`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TinyLfuConfig {
    /// Counters per sketch row; must be a power of two.
    pub width: u32,
    /// Sketch rows (hash functions), `1..=8`.
    pub depth: u32,
    /// Observations between halving resets (the sample window `W`).
    pub sample_period: u64,
}

impl TinyLfuConfig {
    /// Sizes the sketch for a CMP of `cores` private LLCs of
    /// `sets` x `ways` lines each: 4 counters per cached line (rounded up
    /// to a power of two), depth 4, and a sample window of 8x the total
    /// line count — small enough to reset within a run, large enough to
    /// separate frequent from one-hit lines.
    pub fn for_geometry(cores: usize, sets: u32, ways: u16) -> Self {
        let lines = cores as u64 * sets as u64 * ways as u64;
        TinyLfuConfig {
            width: (lines.saturating_mul(4)).next_power_of_two().max(64) as u32,
            depth: 4,
            sample_period: (lines * 8).max(1024),
        }
    }

    /// Builds the filter in front of the plain private-LRU baseline
    /// (the classic "TinyLFU admission + LRU eviction" pairing).
    pub fn build(self) -> TinyLfuPolicy {
        self.wrap(Box::new(PrivateBaseline::new()))
    }

    /// Builds the filter in front of an arbitrary eviction policy.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not a power of two below 2^32, is under 64,
    /// or `depth` is outside `1..=8`.
    pub fn wrap(self, inner: Box<dyn LlcPolicy>) -> TinyLfuPolicy {
        assert!(
            self.width.is_power_of_two() && self.width >= 64,
            "sketch width must be a power of two >= 64, got {}",
            self.width
        );
        assert!(
            (1..=8).contains(&self.depth),
            "sketch depth must be 1..=8, got {}",
            self.depth
        );
        assert!(self.sample_period > 0, "sample period must be positive");
        let name = if inner.name() == "baseline" {
            "TinyLFU".to_string()
        } else {
            format!("TinyLFU+{}", inner.name())
        };
        TinyLfuPolicy {
            cfg: self,
            name,
            sketch: SidecarSlab::new(self.depth as usize, self.width as usize / 16),
            doorkeeper: SidecarSlab::new(1, self.width as usize / 64),
            samples: 0,
            resets: 0,
            admissions: 0,
            rejections: 0,
            inner,
        }
    }
}

/// A TinyLFU admission filter wrapped around an eviction policy (see the
/// [module docs](self)).
pub struct TinyLfuPolicy {
    cfg: TinyLfuConfig,
    name: String,
    /// Count-min sketch: row per hash function, 16 4-bit counters per word.
    sketch: SidecarSlab,
    /// Doorkeeper bloom filter: 64 bits per word, single row.
    doorkeeper: SidecarSlab,
    /// Observations since the last reset.
    samples: u64,
    /// Halving resets performed.
    resets: u64,
    admissions: u64,
    rejections: u64,
    inner: Box<dyn LlcPolicy>,
}

impl std::fmt::Debug for TinyLfuPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TinyLfuPolicy")
            .field("cfg", &self.cfg)
            .field("samples", &self.samples)
            .field("resets", &self.resets)
            .field("admissions", &self.admissions)
            .field("rejections", &self.rejections)
            .field("inner", &self.inner.name())
            .finish()
    }
}

impl TinyLfuPolicy {
    fn column(&self, row: usize, addr: LineAddr) -> usize {
        (mix(addr.raw() ^ ROW_SEEDS[row]) & (self.cfg.width as u64 - 1)) as usize
    }

    fn counter(&self, row: usize, col: usize) -> u8 {
        let word = self.sketch.row(row)[col / 16];
        ((word >> ((col % 16) * 4)) & 0xf) as u8
    }

    fn bump(&mut self, row: usize, col: usize) {
        let word = &mut self.sketch.row_mut(row)[col / 16];
        let shift = (col % 16) * 4;
        let nibble = (*word >> shift) & 0xf;
        if nibble < 15 {
            *word += 1 << shift;
        }
    }

    fn doorkeeper_bit(&self, addr: LineAddr) -> (usize, u64) {
        let bit = (mix(addr.raw() ^ DOORKEEPER_SEED) & (self.cfg.width as u64 - 1)) as usize;
        (bit / 64, 1u64 << (bit % 64))
    }

    /// Whether the doorkeeper has seen `addr` since the last reset.
    pub fn doorkeeper_contains(&self, addr: LineAddr) -> bool {
        let (word, mask) = self.doorkeeper_bit(addr);
        self.doorkeeper.row(0)[word] & mask != 0
    }

    /// The sketch's frequency estimate for `addr` (doorkeeper bit included).
    pub fn estimate(&self, addr: LineAddr) -> u32 {
        let sketch_min = (0..self.cfg.depth as usize)
            .map(|row| self.counter(row, self.column(row, addr)) as u32)
            .min()
            .unwrap_or(0);
        sketch_min + self.doorkeeper_contains(addr) as u32
    }

    fn observe(&mut self, addr: LineAddr) {
        let (word, mask) = self.doorkeeper_bit(addr);
        let seen = self.doorkeeper.row(0)[word] & mask != 0;
        if seen {
            // Recurring within the window: count in the sketch.
            for row in 0..self.cfg.depth as usize {
                let col = self.column(row, addr);
                self.bump(row, col);
            }
        } else {
            // First sight this window: the doorkeeper absorbs it, keeping
            // one-hit wonders out of the sketch counters.
            self.doorkeeper.row_mut(0)[word] |= mask;
        }
        self.samples += 1;
        if self.samples >= self.cfg.sample_period {
            self.reset();
        }
    }

    /// The periodic aging step: halve every sketch counter, clear the
    /// doorkeeper, restart the window.
    fn reset(&mut self) {
        for word in self.sketch.words_mut() {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.doorkeeper.clear();
        self.samples = 0;
        self.resets += 1;
    }

    /// Observations in the current sample window.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Halving resets performed since construction.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Fills admitted past a resident victim (invalid-way fills included).
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Fills rejected (bypassed) by the filter.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// The wrapped eviction policy.
    pub fn inner(&self) -> &dyn LlcPolicy {
        self.inner.as_ref()
    }

    /// Every sketch counter, `[row][col]` (diff-harness observability).
    pub fn sketch_counters(&self) -> Vec<Vec<u8>> {
        (0..self.cfg.depth as usize)
            .map(|row| {
                (0..self.cfg.width as usize)
                    .map(|col| self.counter(row, col))
                    .collect()
            })
            .collect()
    }

    /// Every doorkeeper bit (diff-harness observability).
    pub fn doorkeeper_bits(&self) -> Vec<bool> {
        (0..self.cfg.width as usize)
            .map(|bit| self.doorkeeper.row(0)[bit / 64] & (1u64 << (bit % 64)) != 0)
            .collect()
    }
}

impl LlcPolicy for TinyLfuPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut s = self.inner.snapshot();
        s.policy = self.name.clone();
        s.admission_rejections = Some(self.rejections);
        s.sketch_resets = Some(self.resets);
        s
    }

    fn set_observed(&mut self, observed: bool) {
        self.inner.set_observed(observed);
    }

    fn drain_events(&mut self, out: &mut Vec<ObsEvent>) {
        self.inner.drain_events(out);
    }

    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        self.inner.record_access(core, set, outcome);
    }

    fn note_access(
        &mut self,
        core: CoreId,
        line: LineAddr,
        set: SetIdx,
        outcome: AccessOutcome,
        way: Option<WayIdx>,
    ) {
        self.observe(line);
        self.inner.note_access(core, line, set, outcome, way);
    }

    fn admit_fill(
        &mut self,
        core: CoreId,
        set: SetIdx,
        line: LineAddr,
        contents: SetRef<'_>,
    ) -> bool {
        if !self.inner.admit_fill(core, set, line, contents) {
            self.rejections += 1;
            return false;
        }
        let Some(victim) = contents.line(contents.default_victim()) else {
            // A free way: admission costs nothing.
            self.admissions += 1;
            return true;
        };
        // The candidate must beat the line it would displace. Strict
        // inequality keeps churn out: a tie is not worth an eviction.
        if self.estimate(line) > self.estimate(victim.addr) {
            self.admissions += 1;
            true
        } else {
            self.rejections += 1;
            false
        }
    }

    fn demand_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        self.inner.demand_insert_pos(core, set)
    }

    fn spill_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        self.inner.spill_insert_pos(core, set)
    }

    fn spill_decision(&mut self, from: CoreId, set: SetIdx, victim: SpillVictim) -> SpillDecision {
        self.inner.spill_decision(from, set, victim)
    }

    fn swap_enabled(&self) -> bool {
        self.inner.swap_enabled()
    }

    fn choose_victim(
        &mut self,
        core: CoreId,
        set: SetIdx,
        kind: FillKind,
        contents: SetRef<'_>,
    ) -> WayIdx {
        self.inner.choose_victim(core, set, kind, contents)
    }

    fn note_remote_hit(&mut self, owner: CoreId, set: SetIdx, was_spilled: bool) {
        self.inner.note_remote_hit(owner, set, was_spilled);
    }

    fn on_cycle(&mut self, core: CoreId, cycles: u64) {
        self.inner.on_cycle(core, cycles);
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut out = self.inner.check_invariants();
        if self.samples >= self.cfg.sample_period {
            out.push(format!(
                "sample counter {} at or past the window {}",
                self.samples, self.cfg.sample_period
            ));
        }
        out
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_str(&self.name);
        w.put_u64(self.samples);
        w.put_u64(self.resets);
        w.put_u64(self.admissions);
        w.put_u64(self.rejections);
        self.sketch.save_state(w);
        self.doorkeeper.save_state(w);
        self.inner.save_state(w);
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        let name = r.get_str()?;
        if name != self.name {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "policy variant: snapshot \"{name}\", live \"{}\"",
                self.name
            )));
        }
        self.samples = r.get_u64()?;
        self.resets = r.get_u64()?;
        self.admissions = r.get_u64()?;
        self.rejections = r.get_u64()?;
        self.sketch.load_state(r)?;
        self.doorkeeper.load_state(r)?;
        self.inner.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_cache::{CacheLine, CacheSet, InsertPos, MesiState};

    fn tiny(window: u64) -> TinyLfuPolicy {
        TinyLfuConfig {
            width: 64,
            depth: 4,
            sample_period: window,
        }
        .build()
    }

    fn observe_n(p: &mut TinyLfuPolicy, addr: u64, n: usize) {
        for _ in 0..n {
            p.note_access(
                CoreId(0),
                LineAddr::new(addr),
                SetIdx(0),
                AccessOutcome::Miss,
                None,
            );
        }
    }

    #[test]
    fn doorkeeper_absorbs_first_touch() {
        let mut p = tiny(1_000);
        assert_eq!(p.estimate(LineAddr::new(0xabc)), 0);
        observe_n(&mut p, 0xabc, 1);
        assert!(p.doorkeeper_contains(LineAddr::new(0xabc)));
        assert_eq!(p.estimate(LineAddr::new(0xabc)), 1, "doorkeeper bit only");
        observe_n(&mut p, 0xabc, 3);
        assert_eq!(p.estimate(LineAddr::new(0xabc)), 4, "3 sketch + doorkeeper");
    }

    #[test]
    fn admission_requires_strictly_higher_estimate() {
        let mut p = tiny(1_000);
        let mut set = CacheSet::new(2);
        set.view_mut().fill(
            WayIdx(0),
            CacheLine {
                addr: LineAddr::new(0x10),
                state: MesiState::Exclusive,
                spilled: false,
            },
            InsertPos::Mru,
        );
        set.view_mut().fill(
            WayIdx(1),
            CacheLine {
                addr: LineAddr::new(0x20),
                state: MesiState::Exclusive,
                spilled: false,
            },
            InsertPos::Mru,
        );
        observe_n(&mut p, 0x10, 5); // victim candidate is hot
        observe_n(&mut p, 0x99, 1); // newcomer is cold
        assert!(
            !p.admit_fill(CoreId(0), SetIdx(0), LineAddr::new(0x99), set.view()),
            "cold line must not displace a hot victim"
        );
        assert_eq!(p.rejections(), 1);
        observe_n(&mut p, 0x99, 9);
        assert!(
            p.admit_fill(CoreId(0), SetIdx(0), LineAddr::new(0x99), set.view()),
            "now-hot line beats the victim"
        );
        assert_eq!(p.admissions(), 1);
    }

    #[test]
    fn invalid_way_always_admits() {
        let mut p = tiny(1_000);
        let set = CacheSet::new(2);
        assert!(p.admit_fill(CoreId(0), SetIdx(0), LineAddr::new(0x99), set.view()));
    }

    #[test]
    fn reset_halves_counters_and_clears_doorkeeper() {
        let mut p = tiny(10);
        observe_n(&mut p, 0x42, 9); // doorkeeper + 8 sketch increments
        assert_eq!(p.estimate(LineAddr::new(0x42)), 9);
        observe_n(&mut p, 0x42, 1); // 10th observation triggers the reset
        assert_eq!(p.resets(), 1);
        assert_eq!(p.samples(), 0);
        assert!(!p.doorkeeper_contains(LineAddr::new(0x42)));
        // 9 sketch increments halved: 4 remain, doorkeeper bit gone.
        assert_eq!(p.estimate(LineAddr::new(0x42)), 4);
    }

    #[test]
    fn counters_saturate_at_fifteen() {
        let mut p = tiny(1_000_000);
        observe_n(&mut p, 0x7, 40);
        assert_eq!(p.estimate(LineAddr::new(0x7)), 16, "15 sketch + doorkeeper");
    }

    #[test]
    fn save_load_round_trips_sketch_and_window() {
        let mut p = tiny(50);
        for a in 0..30u64 {
            observe_n(&mut p, 0x100 + a % 7, 1);
        }
        let mut w = cmp_snap::SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut q = tiny(50);
        let mut r = cmp_snap::SnapReader::new(&bytes);
        q.load_state(&mut r).expect("load");
        assert_eq!(p.samples(), q.samples());
        assert_eq!(p.resets(), q.resets());
        for a in 0..7u64 {
            assert_eq!(
                p.estimate(LineAddr::new(0x100 + a)),
                q.estimate(LineAddr::new(0x100 + a))
            );
        }
    }
}
