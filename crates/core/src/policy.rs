//! ASCC — Adaptive Set-Granular Cooperative Caching (§3) and its ablation
//! variants (Fig. 4 / Fig. 5 / Table 1).
//!
//! One [`AsccPolicy`] instance manages all private LLCs. Per cache it keeps
//! an [`SslTable`] (at a configurable static granularity) and one insertion
//! policy bit per counter. The configuration space covers every intermediate
//! design the paper evaluates:
//!
//! | Variant | Construction |
//! |---|---|
//! | ASCC | [`AsccConfig::ascc`] |
//! | LRS (local random spilling) | [`AsccConfig::lrs`] |
//! | LMS (local minimum spilling) | [`AsccConfig::lms`] |
//! | GMS (global minimum spilling) | [`AsccConfig::gms`] |
//! | LMS+BIP | [`AsccConfig::lms_bip`] |
//! | GMS+SABIP | [`AsccConfig::gms_sabip`] |
//! | ASCC-2S (two-state) | [`AsccConfig::ascc_2s`] |
//! | ASCCn (static granularity) | [`AsccConfig::ascc`] + [`AsccConfig::with_counters`] |

use crate::spill_alloc::{cluster_of, SpillAllocator, CLUSTER_CORES};
use crate::ssl::{SetRole, SslTable};
use crate::tuning::SslTuning;
use cmp_cache::{
    AccessOutcome, CoreId, CoreSnapshot, InsertPos, LlcPolicy, ObsEvent, PolicySnapshot,
    RoleHistogram, SetIdx, SpillDecision, SpillVictim,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a spiller picks among valid receiver candidates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReceiverSelection {
    /// The cache whose counter for the set has the lowest value; ties broken
    /// randomly (the paper's design, LMS and up).
    MinSsl,
    /// Uniformly random among valid candidates (the LRS ablation).
    Random,
}

/// What a spiller set does when no receiver candidate exists (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CapacityPolicy {
    /// Nothing: keep MRU insertion (LRS/LMS/GMS ablations).
    None,
    /// Switch the set to plain BIP (LRU insertion with probability
    /// `1 - eps`) — the LMS+BIP ablation.
    Bip,
    /// Switch to Spilling-Aware BIP (`LRU-1` insertion) — the paper's
    /// design.
    Sabip,
}

/// Configuration of an [`AsccPolicy`].
#[derive(Clone, Debug)]
pub struct AsccConfig {
    /// Number of cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// LLC associativity (`K`).
    pub ways: u16,
    /// Adjacent sets sharing one SSL counter (1 = finest; `sets` = GMS).
    pub sets_per_counter: u32,
    /// Receiver selection rule.
    pub receiver_selection: ReceiverSelection,
    /// Capacity-problem reaction.
    pub capacity_policy: CapacityPolicy,
    /// Use the 2-state classification (ASCC-2S) instead of 3-state.
    pub two_state: bool,
    /// Enable the requested/victim swap of §3.2.
    pub swap: bool,
    /// BIP/SABIP probability of MRU insertion (the paper uses 1/32).
    pub bip_epsilon: f64,
    /// SSL saturation-range tuning (§9 future work; default `2K-1`).
    pub tuning: SslTuning,
    /// Use the approximate hardware [`SpillAllocator`] instead of an exact
    /// minimum search.
    pub use_spill_allocator: bool,
    /// RNG seed (tie breaking and ε-insertions).
    pub seed: u64,
}

impl AsccConfig {
    /// The full ASCC design: per-set counters, minimum-SSL receiver, SABIP
    /// capacity reaction, 3 states, swap enabled.
    pub fn ascc(cores: usize, sets: u32, ways: u16) -> Self {
        AsccConfig {
            cores,
            sets,
            ways,
            sets_per_counter: 1,
            receiver_selection: ReceiverSelection::MinSsl,
            capacity_policy: CapacityPolicy::Sabip,
            two_state: false,
            swap: true,
            bip_epsilon: 1.0 / 32.0,
            tuning: SslTuning::default(),
            use_spill_allocator: false,
            seed: 0xA5CC,
        }
    }

    /// LRS: random receiver, no capacity policy (Fig. 4).
    pub fn lrs(cores: usize, sets: u32, ways: u16) -> Self {
        let mut c = Self::ascc(cores, sets, ways);
        c.receiver_selection = ReceiverSelection::Random;
        c.capacity_policy = CapacityPolicy::None;
        c
    }

    /// LMS: minimum-SSL receiver, no capacity policy (Fig. 4).
    pub fn lms(cores: usize, sets: u32, ways: u16) -> Self {
        let mut c = Self::ascc(cores, sets, ways);
        c.capacity_policy = CapacityPolicy::None;
        c
    }

    /// GMS: one counter per cache, minimum selection, no capacity policy
    /// (Fig. 4).
    pub fn gms(cores: usize, sets: u32, ways: u16) -> Self {
        let mut c = Self::lms(cores, sets, ways);
        c.sets_per_counter = sets;
        c
    }

    /// LMS+BIP (Fig. 4).
    pub fn lms_bip(cores: usize, sets: u32, ways: u16) -> Self {
        let mut c = Self::lms(cores, sets, ways);
        c.capacity_policy = CapacityPolicy::Bip;
        c
    }

    /// GMS+SABIP (Fig. 4).
    pub fn gms_sabip(cores: usize, sets: u32, ways: u16) -> Self {
        let mut c = Self::gms(cores, sets, ways);
        c.capacity_policy = CapacityPolicy::Sabip;
        c
    }

    /// ASCC-2S: two-state classification (Fig. 5).
    pub fn ascc_2s(cores: usize, sets: u32, ways: u16) -> Self {
        let mut c = Self::ascc(cores, sets, ways);
        c.two_state = true;
        c
    }

    /// Sets the number of counters (Table 1's ASCCn sweep). `counters` must
    /// divide `sets` into a power-of-two group size.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is zero or larger than `sets`.
    pub fn with_counters(mut self, counters: u32) -> Self {
        assert!(counters > 0 && counters <= self.sets, "bad counter count");
        self.sets_per_counter = self.sets / counters;
        self
    }

    /// Builds the policy.
    pub fn build(self) -> AsccPolicy {
        AsccPolicy::new(self)
    }

    fn derived_name(&self) -> String {
        let base = match (
            self.receiver_selection,
            self.capacity_policy,
            self.sets_per_counter == self.sets,
        ) {
            (ReceiverSelection::Random, CapacityPolicy::None, _) => "LRS".to_string(),
            (ReceiverSelection::MinSsl, CapacityPolicy::None, false) => "LMS".to_string(),
            (ReceiverSelection::MinSsl, CapacityPolicy::None, true) => "GMS".to_string(),
            (ReceiverSelection::MinSsl, CapacityPolicy::Bip, false) => "LMS+BIP".to_string(),
            (ReceiverSelection::MinSsl, CapacityPolicy::Sabip, true) => "GMS+SABIP".to_string(),
            (ReceiverSelection::MinSsl, CapacityPolicy::Sabip, false) => {
                if self.sets_per_counter == 1 {
                    "ASCC".to_string()
                } else {
                    format!("ASCC{}", self.sets / self.sets_per_counter)
                }
            }
            _ => "ASCC-variant".to_string(),
        };
        if self.two_state {
            format!("{base}-2S")
        } else {
            base
        }
    }
}

struct CacheState {
    ssl: SslTable,
    /// Insertion policy bit per counter: `true` = BIP/SABIP mode.
    bip: Vec<bool>,
}

/// The ASCC policy (and its ablation variants).
pub struct AsccPolicy {
    cfg: AsccConfig,
    name: String,
    caches: Vec<CacheState>,
    allocators: Vec<SpillAllocator>,
    rng: SmallRng,
    /// Capacity-mode activations (spiller found no candidate), for stats.
    capacity_activations: u64,
    /// Event buffering is enabled only while a probe observes the run.
    observed: bool,
    events: Vec<ObsEvent>,
}

impl std::fmt::Debug for AsccPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsccPolicy")
            .field("name", &self.name)
            .field("cores", &self.cfg.cores)
            .finish()
    }
}

impl AsccPolicy {
    /// Builds the policy from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero cores, bad
    /// power-of-two shapes — see [`SslTable::new`]).
    pub fn new(cfg: AsccConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(
            (0.0..=1.0).contains(&cfg.bip_epsilon),
            "epsilon must be a probability"
        );
        let name = cfg.derived_name();
        let caches = (0..cfg.cores)
            .map(|_| {
                let ssl =
                    SslTable::with_tuning(cfg.sets, cfg.ways, cfg.sets_per_counter, cfg.tuning);
                let n = ssl.counters();
                CacheState {
                    ssl,
                    bip: vec![false; n],
                }
            })
            .collect();
        let clusters = cfg.cores.div_ceil(CLUSTER_CORES) as u16;
        let allocators = (0..cfg.cores)
            .map(|_| SpillAllocator::clustered(cfg.sets, cfg.ways << 3, clusters))
            .collect();
        AsccPolicy {
            rng: SmallRng::seed_from_u64(cfg.seed),
            name,
            caches,
            allocators,
            cfg,
            capacity_activations: 0,
            observed: false,
            events: Vec::new(),
        }
    }

    /// The configuration this policy was built from.
    pub fn config(&self) -> &AsccConfig {
        &self.cfg
    }

    /// Current SSL (fixed point) of `core`'s counter covering `set`.
    pub fn ssl_value(&self, core: CoreId, set: SetIdx) -> u16 {
        self.caches[core.index()].ssl.value(set.0)
    }

    /// Current role of `core`'s `set`.
    pub fn role(&self, core: CoreId, set: SetIdx) -> SetRole {
        let c = &self.caches[core.index()];
        if self.cfg.two_state {
            c.ssl.role_two_state(set.0)
        } else {
            c.ssl.role(set.0)
        }
    }

    /// Whether `core`'s `set` is currently in BIP/SABIP insertion mode.
    pub fn in_capacity_mode(&self, core: CoreId, set: SetIdx) -> bool {
        let c = &self.caches[core.index()];
        c.bip[c.ssl.counter_of(set.0)]
    }

    /// How many times a spiller set failed to find a receiver and switched
    /// the insertion policy.
    pub fn capacity_activations(&self) -> u64 {
        self.capacity_activations
    }

    /// Fixed-point values of all SSL counters of `core`, counter order
    /// (differential-testing helper).
    pub fn ssl_values(&self, core: CoreId) -> Vec<u16> {
        let t = &self.caches[core.index()].ssl;
        (0..t.counters()).map(|i| t.value_at(i)).collect()
    }

    /// BIP/SABIP flags of all counters of `core`, counter order
    /// (differential-testing helper).
    pub fn bip_flags(&self, core: CoreId) -> Vec<bool> {
        self.caches[core.index()].bip.clone()
    }

    /// Picks a receiver core for a line evicted from `from`'s set `set`,
    /// exactly as the spill path would (min-SSL scan, cluster filtering,
    /// RNG tie-break — the draw sequence is shared with
    /// [`LlcPolicy::spill_decision`]).
    ///
    /// Exposed so refinements layered on top of ASCC — e.g. the
    /// reuse-distance copy-back policy ([`crate::RdcbPolicy`]) — can route
    /// extra lines through the same allocator instead of duplicating it.
    pub fn receiver_for(&mut self, from: CoreId, set: SetIdx) -> Option<CoreId> {
        self.find_receiver(from, set.0)
    }

    /// Role class counts over all of `core`'s sets.
    fn role_histogram(&self, core: usize) -> RoleHistogram {
        let mut h = RoleHistogram::default();
        for set in 0..self.cfg.sets {
            match self.role(CoreId(core as u8), SetIdx(set)) {
                SetRole::Receiver => h.receiver += 1,
                SetRole::Neutral => h.neutral += 1,
                SetRole::Spiller => h.spiller += 1,
            }
        }
        h
    }

    fn find_receiver(&mut self, from: CoreId, set: u32) -> Option<CoreId> {
        if self.cfg.use_spill_allocator {
            return self.allocators[from.index()].candidate_near(set, cluster_of(from));
        }
        let k_fixed = self.caches[0].ssl.k_fixed();
        let mut best: u16 = k_fixed;
        let mut candidates: Vec<CoreId> = Vec::with_capacity(self.cfg.cores);
        for (i, c) in self.caches.iter().enumerate() {
            if i == from.index() {
                continue;
            }
            let v = c.ssl.value(set);
            if v >= k_fixed {
                continue;
            }
            match self.cfg.receiver_selection {
                ReceiverSelection::Random => candidates.push(CoreId(i as u8)),
                ReceiverSelection::MinSsl => {
                    if v < best {
                        best = v;
                        candidates.clear();
                        candidates.push(CoreId(i as u8));
                    } else if v == best {
                        candidates.push(CoreId(i as u8));
                    }
                }
            }
        }
        // At scale, equally good receivers are not equally close: keep only
        // the spiller's own cluster among the tied candidates when it has
        // any, so spilled lines land a short hop away. Gated on the core
        // count so systems of one cluster keep the paper's exact behavior,
        // including the RNG draw sequence.
        if self.cfg.cores > CLUSTER_CORES && candidates.len() > 1 {
            let home = cluster_of(from);
            if candidates.iter().any(|&c| cluster_of(c) == home) {
                candidates.retain(|&c| cluster_of(c) == home);
            }
        }
        match candidates.len() {
            0 => None,
            1 => Some(candidates[0]),
            n => Some(candidates[self.rng.gen_range(0..n)]),
        }
    }

    fn bip_insert_pos(&mut self) -> InsertPos {
        let deep = match self.cfg.capacity_policy {
            CapacityPolicy::None => return InsertPos::Mru,
            CapacityPolicy::Bip => InsertPos::Lru,
            CapacityPolicy::Sabip => InsertPos::LruMinus1,
        };
        if self.rng.gen::<f64>() < self.cfg.bip_epsilon {
            InsertPos::Mru
        } else {
            deep
        }
    }
}

impl LlcPolicy for AsccPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        let hit = outcome.is_hit();
        let c = &mut self.caches[core.index()];
        let idx = c.ssl.counter_of(set.0);
        let (_, new) = if hit {
            c.ssl.on_hit(set.0)
        } else {
            c.ssl.on_miss(set.0, SslTable::ONE)
        };
        // §3.2: revert to MRU insertion once the capacity problem is gone.
        let mut reverted = false;
        if new < c.ssl.k_fixed() {
            reverted = std::mem::replace(&mut c.bip[idx], false);
        }
        if self.cfg.use_spill_allocator && !hit {
            // Peers' allocators observe this cache's miss updates.
            for (i, alloc) in self.allocators.iter_mut().enumerate() {
                if i != core.index() {
                    alloc.observe(core, set.0, new);
                }
            }
        }
        if reverted && self.observed {
            self.events.push(ObsEvent::InsertionModeSwitch {
                core,
                counter: idx as u32,
                deep: false,
            });
        }
    }

    fn demand_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        if self.in_capacity_mode(core, set) {
            self.bip_insert_pos()
        } else {
            InsertPos::Mru
        }
    }

    fn spill_decision(&mut self, from: CoreId, set: SetIdx, _victim: SpillVictim) -> SpillDecision {
        if self.role(from, set) != SetRole::Spiller {
            return SpillDecision::NotSpiller;
        }
        match self.find_receiver(from, set.0) {
            Some(to) => SpillDecision::Spill(to),
            None => {
                if self.cfg.capacity_policy != CapacityPolicy::None {
                    let c = &mut self.caches[from.index()];
                    let idx = c.ssl.counter_of(set.0);
                    if !c.bip[idx] {
                        c.bip[idx] = true;
                        self.capacity_activations += 1;
                        if self.observed {
                            self.events.push(ObsEvent::InsertionModeSwitch {
                                core: from,
                                counter: idx as u32,
                                deep: true,
                            });
                        }
                    }
                }
                SpillDecision::NoCandidate
            }
        }
    }

    fn swap_enabled(&self) -> bool {
        self.cfg.swap
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, c) in self.caches.iter().enumerate() {
            let t = &c.ssl;
            // Cross-check the public role() surface against raw counter
            // values through the coherence checker's own classification.
            let spiller = if self.cfg.two_state {
                t.k_fixed()
            } else {
                t.spiller_fixed()
            };
            let values: Vec<u16> = (0..t.counters()).map(|j| t.value_at(j)).collect();
            let reported: Vec<cmp_coherence::SslRole> = (0..t.counters())
                .map(|j| {
                    let set = (j as u32) * t.sets_per_counter();
                    match self.role(CoreId(i as u8), SetIdx(set)) {
                        SetRole::Receiver => cmp_coherence::SslRole::Receiver,
                        SetRole::Neutral => cmp_coherence::SslRole::Neutral,
                        SetRole::Spiller => cmp_coherence::SslRole::Spiller,
                    }
                })
                .collect();
            out.extend(
                cmp_coherence::check_ssl(
                    i,
                    &values,
                    t.k_fixed(),
                    spiller,
                    t.max_fixed(),
                    &reported,
                )
                .iter()
                .map(|v| v.to_string()),
            );
        }
        out
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut snap = PolicySnapshot::new(&self.name);
        snap.capacity_activations = Some(self.capacity_activations);
        snap.per_core = (0..self.cfg.cores)
            .map(|i| {
                let mut cs = CoreSnapshot::new(CoreId(i as u8));
                cs.roles = Some(self.role_histogram(i));
                let c = &self.caches[i];
                cs.sabip_sets = Some(
                    (0..self.cfg.sets)
                        .filter(|&s| c.bip[c.ssl.counter_of(s)])
                        .count() as u32,
                );
                cs.granularity_log2 = Some(self.cfg.sets_per_counter.trailing_zeros() as u8);
                cs.counters_in_use = Some(c.ssl.counters() as u32);
                cs
            })
            .collect();
        snap
    }

    fn set_observed(&mut self, observed: bool) {
        self.observed = observed;
        if !observed {
            self.events.clear();
        }
    }

    fn drain_events(&mut self, out: &mut Vec<ObsEvent>) {
        out.append(&mut self.events);
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_str(&self.name);
        w.put_u64_slice(&self.rng.state());
        w.put_u64(self.capacity_activations);
        w.put_u64(self.caches.len() as u64);
        for c in &self.caches {
            c.ssl.save_state(w);
            w.put_u64(c.bip.len() as u64);
            for &b in &c.bip {
                w.put_bool(b);
            }
        }
        for a in &self.allocators {
            a.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        let name = r.get_str()?;
        if name != self.name {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "policy variant: snapshot \"{name}\", live \"{}\"",
                self.name
            )));
        }
        let rng = r.get_u64_slice()?;
        let rng: [u64; 4] = rng
            .as_slice()
            .try_into()
            .map_err(|_| cmp_snap::SnapError::Corrupt("RNG state is not 4 words".into()))?;
        if rng == [0; 4] {
            return Err(cmp_snap::SnapError::Corrupt("all-zero RNG state".into()));
        }
        self.rng = SmallRng::from_state(rng);
        self.capacity_activations = r.get_u64()?;
        let n = r.get_u64()?;
        if n != self.caches.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "core count: snapshot {n}, live {}",
                self.caches.len()
            )));
        }
        for c in &mut self.caches {
            c.ssl.load_state(r)?;
            let len = r.get_u64()?;
            if len != c.bip.len() as u64 {
                return Err(cmp_snap::SnapError::Corrupt(format!(
                    "BIP flag count {len} for {} counters",
                    c.bip.len()
                )));
            }
            for b in &mut c.bip {
                *b = r.get_bool()?;
            }
        }
        for a in &mut self.allocators {
            a.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SETS: u32 = 16;
    const K: u16 = 4;

    fn saturate(p: &mut AsccPolicy, core: u8, set: u32) {
        for _ in 0..2 * K as u32 {
            p.record_access(CoreId(core), SetIdx(set), AccessOutcome::Miss);
        }
    }

    fn drain(p: &mut AsccPolicy, core: u8, set: u32) {
        for _ in 0..2 * K as u32 {
            p.record_access(
                CoreId(core),
                SetIdx(set),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
    }

    #[test]
    fn names_match_paper_variants() {
        assert_eq!(AsccConfig::ascc(4, SETS, K).build().name(), "ASCC");
        assert_eq!(AsccConfig::lrs(4, SETS, K).build().name(), "LRS");
        assert_eq!(AsccConfig::lms(4, SETS, K).build().name(), "LMS");
        assert_eq!(AsccConfig::gms(4, SETS, K).build().name(), "GMS");
        assert_eq!(AsccConfig::lms_bip(4, SETS, K).build().name(), "LMS+BIP");
        assert_eq!(
            AsccConfig::gms_sabip(4, SETS, K).build().name(),
            "GMS+SABIP"
        );
        assert_eq!(AsccConfig::ascc_2s(4, SETS, K).build().name(), "ASCC-2S");
        assert_eq!(
            AsccConfig::ascc(4, SETS, K).with_counters(4).build().name(),
            "ASCC4"
        );
    }

    #[test]
    fn roles_follow_ssl() {
        let mut p = AsccConfig::ascc(2, SETS, K).build();
        assert_eq!(p.role(CoreId(0), SetIdx(0)), SetRole::Receiver);
        saturate(&mut p, 0, 0);
        assert_eq!(p.role(CoreId(0), SetIdx(0)), SetRole::Spiller);
        p.record_access(
            CoreId(0),
            SetIdx(0),
            AccessOutcome::Hit {
                spilled: false,
                depth: 0,
            },
        );
        assert_eq!(p.role(CoreId(0), SetIdx(0)), SetRole::Neutral);
    }

    #[test]
    fn spills_to_minimum_ssl_receiver() {
        let mut p = AsccConfig::ascc(3, SETS, K).build();
        saturate(&mut p, 0, 5);
        // Cache 1: receiver with value K-1 (initial); cache 2: drain to 0.
        drain(&mut p, 2, 5);
        match p.spill_decision(CoreId(0), SetIdx(5), SpillVictim::default()) {
            SpillDecision::Spill(c) => assert_eq!(c, CoreId(2)),
            d => panic!("expected spill, got {d:?}"),
        }
    }

    #[test]
    fn neutral_peers_cannot_receive() {
        let mut p = AsccConfig::ascc(2, SETS, K).build();
        saturate(&mut p, 0, 1);
        // Push peer into neutral (K <= SSL < 2K-1).
        for _ in 0..2 {
            p.record_access(CoreId(1), SetIdx(1), AccessOutcome::Miss);
        }
        assert_eq!(p.role(CoreId(1), SetIdx(1)), SetRole::Neutral);
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(1), SpillVictim::default()),
            SpillDecision::NoCandidate
        );
    }

    #[test]
    fn non_spiller_set_does_not_spill() {
        let mut p = AsccConfig::ascc(2, SETS, K).build();
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::NotSpiller
        );
        // Neutral is not a spiller either (the design's key point, Fig. 5).
        p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::NotSpiller
        );
    }

    #[test]
    fn two_state_spills_from_neutral_band() {
        let mut p = AsccConfig::ascc_2s(2, SETS, K).build();
        // One miss pushes SSL to K: a spiller in 2-state mode.
        p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        assert_eq!(p.role(CoreId(0), SetIdx(0)), SetRole::Spiller);
        assert!(matches!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::Spill(_)
        ));
    }

    #[test]
    fn capacity_problem_switches_to_sabip_and_back() {
        let mut p = AsccConfig::ascc(2, SETS, K).build();
        saturate(&mut p, 0, 3);
        saturate(&mut p, 1, 3); // peer also saturated: no candidate
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default()),
            SpillDecision::NoCandidate
        );
        assert!(p.in_capacity_mode(CoreId(0), SetIdx(3)));
        assert_eq!(p.capacity_activations(), 1);
        // Insertion is now deep (LRU-1) most of the time.
        let deep = (0..200)
            .filter(|_| p.demand_insert_pos(CoreId(0), SetIdx(3)) == InsertPos::LruMinus1)
            .count();
        assert!(deep > 150, "only {deep}/200 deep insertions");
        // Hits bring SSL below K: reverts to MRU.
        drain(&mut p, 0, 3);
        assert!(!p.in_capacity_mode(CoreId(0), SetIdx(3)));
        assert_eq!(p.demand_insert_pos(CoreId(0), SetIdx(3)), InsertPos::Mru);
    }

    #[test]
    fn snapshot_and_events_reflect_capacity_mode() {
        let mut p = AsccConfig::ascc(2, SETS, K).build();
        p.set_observed(true);
        saturate(&mut p, 0, 3);
        saturate(&mut p, 1, 3);
        p.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default());

        let snap = p.snapshot();
        assert_eq!(snap.policy, "ASCC");
        assert_eq!(snap.capacity_activations, Some(1));
        assert_eq!(snap.per_core.len(), 2);
        let c0 = &snap.per_core[0];
        assert_eq!(c0.sabip_sets, Some(1));
        assert_eq!(c0.granularity_log2, Some(0));
        assert_eq!(c0.counters_in_use, Some(SETS));
        let roles = c0.roles.unwrap();
        assert_eq!(roles.total(), SETS);
        assert_eq!(roles.spiller, 1);

        let mut events = Vec::new();
        p.drain_events(&mut events);
        assert_eq!(
            events,
            vec![ObsEvent::InsertionModeSwitch {
                core: CoreId(0),
                counter: 3,
                deep: true
            }]
        );
        // Draining empties the buffer.
        events.clear();
        p.drain_events(&mut events);
        assert!(events.is_empty());

        // Hits revert the set to MRU: a deep=false switch is emitted.
        drain(&mut p, 0, 3);
        p.drain_events(&mut events);
        assert!(events.contains(&ObsEvent::InsertionModeSwitch {
            core: CoreId(0),
            counter: 3,
            deep: false
        }));

        // Unobserved policies buffer nothing.
        p.set_observed(false);
        saturate(&mut p, 0, 3);
        saturate(&mut p, 1, 3);
        p.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default());
        events.clear();
        p.drain_events(&mut events);
        assert!(events.is_empty());
    }

    #[test]
    fn lms_never_enters_capacity_mode() {
        let mut p = AsccConfig::lms(2, SETS, K).build();
        saturate(&mut p, 0, 3);
        saturate(&mut p, 1, 3);
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default()),
            SpillDecision::NoCandidate
        );
        assert!(!p.in_capacity_mode(CoreId(0), SetIdx(3)));
        assert_eq!(p.demand_insert_pos(CoreId(0), SetIdx(3)), InsertPos::Mru);
    }

    #[test]
    fn bip_variant_inserts_at_lru() {
        let mut p = AsccConfig::lms_bip(2, SETS, K).build();
        saturate(&mut p, 0, 3);
        saturate(&mut p, 1, 3);
        p.spill_decision(CoreId(0), SetIdx(3), SpillVictim::default());
        let lru = (0..200)
            .filter(|_| p.demand_insert_pos(CoreId(0), SetIdx(3)) == InsertPos::Lru)
            .count();
        assert!(lru > 150, "only {lru}/200 LRU insertions under BIP");
    }

    #[test]
    fn gms_uses_one_counter_per_cache() {
        let mut p = AsccConfig::gms(2, SETS, K).build();
        saturate(&mut p, 0, 0); // saturate via set 0
                                // Any other set of cache 0 is now also a spiller.
        assert_eq!(p.role(CoreId(0), SetIdx(9)), SetRole::Spiller);
        assert!(matches!(
            p.spill_decision(CoreId(0), SetIdx(9), SpillVictim::default()),
            SpillDecision::Spill(CoreId(1))
        ));
    }

    #[test]
    fn granularity_grouping() {
        let p = AsccConfig::ascc(2, SETS, K).with_counters(4).build();
        // 16 sets / 4 counters = groups of 4.
        assert_eq!(p.config().sets_per_counter, 4);
    }

    #[test]
    fn swap_enabled_by_default_in_ascc() {
        let p = AsccConfig::ascc(2, SETS, K).build();
        assert!(p.swap_enabled());
    }

    #[test]
    fn random_selection_spreads_receivers() {
        let mut p = AsccConfig::lrs(4, SETS, K).build();
        saturate(&mut p, 0, 2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            if let SpillDecision::Spill(c) =
                p.spill_decision(CoreId(0), SetIdx(2), SpillVictim::default())
            {
                seen.insert(c.0);
            }
        }
        assert!(seen.len() >= 2, "random selection never varied: {seen:?}");
    }

    #[test]
    fn minssl_ties_prefer_the_spillers_cluster_at_scale() {
        // 16 cores, two clusters. Two receivers drained to the same SSL
        // value, one per cluster: the spiller always picks its neighbor.
        let mut p = AsccConfig::ascc(16, SETS, K).build();
        saturate(&mut p, 0, 2);
        drain(&mut p, 5, 2); // cluster 0, value 0
        drain(&mut p, 12, 2); // cluster 1, value 0
        for _ in 0..50 {
            match p.spill_decision(CoreId(0), SetIdx(2), SpillVictim::default()) {
                SpillDecision::Spill(c) => assert_eq!(c, CoreId(5)),
                d => panic!("expected spill, got {d:?}"),
            }
        }
        // A spiller in cluster 1 prefers its own neighbor symmetrically.
        saturate(&mut p, 15, 2);
        match p.spill_decision(CoreId(15), SetIdx(2), SpillVictim::default()) {
            SpillDecision::Spill(c) => assert_eq!(c, CoreId(12)),
            d => panic!("expected spill, got {d:?}"),
        }
    }

    #[test]
    fn far_cluster_still_receives_when_home_has_no_candidate() {
        let mut p = AsccConfig::ascc(32, SETS, K).build();
        saturate(&mut p, 0, 2);
        drain(&mut p, 29, 2); // only valid receiver lives in cluster 3
        match p.spill_decision(CoreId(0), SetIdx(2), SpillVictim::default()) {
            SpillDecision::Spill(c) => assert_eq!(c, CoreId(29)),
            d => panic!("expected spill, got {d:?}"),
        }
    }

    #[test]
    fn allocator_mode_prefers_the_spillers_cluster_at_scale() {
        let mut cfg = AsccConfig::ascc(16, SETS, K);
        cfg.use_spill_allocator = true;
        let mut p = cfg.build();
        saturate(&mut p, 0, 7);
        // Both peers advertise validity through an observed miss; the far
        // one is strictly better, the near one still wins.
        drain(&mut p, 12, 7);
        p.record_access(CoreId(12), SetIdx(7), AccessOutcome::Miss); // cluster 1, value ONE
        drain(&mut p, 3, 7);
        drain(&mut p, 3, 7);
        p.record_access(CoreId(3), SetIdx(7), AccessOutcome::Miss); // cluster 0
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(7), SpillVictim::default()),
            SpillDecision::Spill(CoreId(3))
        );
        // And cluster-1 spillers pick the cluster-1 candidate.
        saturate(&mut p, 15, 7);
        assert_eq!(
            p.spill_decision(CoreId(15), SetIdx(7), SpillVictim::default()),
            SpillDecision::Spill(CoreId(12))
        );
    }

    #[test]
    fn allocator_mode_finds_candidates_via_observed_misses() {
        let mut cfg = AsccConfig::ascc(3, SETS, K);
        cfg.use_spill_allocator = true;
        let mut p = cfg.build();
        saturate(&mut p, 0, 7);
        // Cache 2 misses once in set 7 (value K) -> not a candidate; then
        // hits bring it below K, but hits do not update peer allocators, so
        // the spiller relies on miss observations only.
        p.record_access(CoreId(2), SetIdx(7), AccessOutcome::Miss);
        // Its observed value is K (= 4<<3 after one miss from K-1): invalid.
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(7), SpillVictim::default()),
            SpillDecision::NoCandidate
        );
        // A peer miss that leaves the counter below K is observable.
        drain(&mut p, 1, 7); // value 0, but via hits -> unobserved
        p.record_access(CoreId(1), SetIdx(7), AccessOutcome::Miss); // one miss: observed, value ONE
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(7), SpillVictim::default()),
            SpillDecision::Spill(CoreId(1))
        );
    }
}
