//! The Spill Allocator — the paper's scalable candidate-tracking structure.
//!
//! §3.1: *"In order to scale the design, an intermediate structure per cache
//! similar to the Spill Allocator proposed in [ECC] can be easily adapted.
//! It would only require one entry per set and it would store the saturation
//! counter value, which must be lower than K (or K when there is no valid
//! candidate), and the index of the current candidate cache. It should be
//! updated with every miss in the other caches."*
//!
//! Unlike the exact minimum search the simulator can afford, the hardware
//! structure is *approximate*: it only observes peer counter updates, so the
//! stored candidate can be stale (e.g. after the candidate's SSL drifts up
//! through hits it never reports). ASCC exposes both modes so the
//! `ablation_allocator` bench can quantify the difference.

use cmp_cache::CoreId;

/// One cache's spill-allocator: the best-known receiver candidate per set.
#[derive(Clone, Debug)]
pub struct SpillAllocator {
    /// `(candidate_value_fixed, candidate_cache)`; value `>= k_fixed` means
    /// "no valid candidate".
    entries: Vec<(u16, CoreId)>,
    k_fixed: u16,
}

impl SpillAllocator {
    /// Creates an allocator for `sets` sets with receiver threshold
    /// `k_fixed` (fixed-point `K`). All entries start invalid.
    pub fn new(sets: u32, k_fixed: u16) -> Self {
        SpillAllocator {
            entries: vec![(k_fixed, CoreId(0)); sets as usize],
            k_fixed,
        }
    }

    /// Observes that peer `cache`'s counter covering `set` changed to
    /// `value_fixed` (called on every miss — and, in our implementation,
    /// every update — in the other caches).
    pub fn observe(&mut self, cache: CoreId, set: u32, value_fixed: u16) {
        let e = &mut self.entries[set as usize];
        if value_fixed < e.0 {
            *e = (value_fixed, cache);
        } else if e.1 == cache {
            // Our candidate got worse; keep it if still valid, else drop.
            if value_fixed < self.k_fixed {
                e.0 = value_fixed;
            } else {
                *e = (self.k_fixed, cache);
            }
        }
    }

    /// The current candidate receiver for `set`, if any.
    pub fn candidate(&self, set: u32) -> Option<CoreId> {
        let (v, c) = self.entries[set as usize];
        (v < self.k_fixed).then_some(c)
    }

    /// Invalidate every entry (used when SSL tables are re-initialised).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            e.0 = self.k_fixed;
        }
    }

    /// Serialises the candidate entries into `w` (restored by
    /// [`load_state`](SpillAllocator::load_state) on an allocator of
    /// identical shape).
    pub fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_u16(self.k_fixed);
        w.put_u64(self.entries.len() as u64);
        for &(v, c) in &self.entries {
            w.put_u16(v);
            w.put_u8(c.0);
        }
    }

    /// Restores entries captured by [`save_state`](SpillAllocator::save_state).
    pub fn load_state(
        &mut self,
        r: &mut cmp_snap::SnapReader<'_>,
    ) -> Result<(), cmp_snap::SnapError> {
        let k_fixed = r.get_u16()?;
        let n = r.get_u64()?;
        if k_fixed != self.k_fixed || n != self.entries.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "spill allocator shape: snapshot K={k_fixed}/{n} sets, live K={}/{} sets",
                self.k_fixed,
                self.entries.len()
            )));
        }
        for e in &mut self.entries {
            *e = (r.get_u16()?, CoreId(r.get_u8()?));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: u16 = 8 << 3;

    #[test]
    fn starts_with_no_candidate() {
        let a = SpillAllocator::new(4, K);
        assert_eq!(a.candidate(0), None);
    }

    #[test]
    fn tracks_the_minimum_seen() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, 5 << 3);
        a.observe(CoreId(2), 0, 3 << 3);
        a.observe(CoreId(3), 0, 4 << 3);
        assert_eq!(a.candidate(0), Some(CoreId(2)));
    }

    #[test]
    fn ignores_values_at_or_above_k() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, K);
        assert_eq!(a.candidate(0), None);
        a.observe(CoreId(1), 0, K + 8);
        assert_eq!(a.candidate(0), None);
    }

    #[test]
    fn candidate_drops_out_when_it_saturates() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, 2 << 3);
        assert_eq!(a.candidate(0), Some(CoreId(1)));
        a.observe(CoreId(1), 0, K + 8);
        assert_eq!(a.candidate(0), None);
    }

    #[test]
    fn candidate_value_updates_in_place() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, 2 << 3);
        a.observe(CoreId(1), 0, 6 << 3); // worse but still valid
        assert_eq!(a.candidate(0), Some(CoreId(1)));
        // A better peer now wins.
        a.observe(CoreId(2), 0, 5 << 3);
        assert_eq!(a.candidate(0), Some(CoreId(2)));
    }

    #[test]
    fn clear_invalidates() {
        let mut a = SpillAllocator::new(2, K);
        a.observe(CoreId(1), 1, 0);
        a.clear();
        assert_eq!(a.candidate(1), None);
    }

    #[test]
    fn entries_are_per_set() {
        let mut a = SpillAllocator::new(2, K);
        a.observe(CoreId(1), 0, 0);
        assert_eq!(a.candidate(0), Some(CoreId(1)));
        assert_eq!(a.candidate(1), None);
    }
}
