//! The Spill Allocator — the paper's scalable candidate-tracking structure.
//!
//! §3.1: *"In order to scale the design, an intermediate structure per cache
//! similar to the Spill Allocator proposed in [ECC] can be easily adapted.
//! It would only require one entry per set and it would store the saturation
//! counter value, which must be lower than K (or K when there is no valid
//! candidate), and the index of the current candidate cache. It should be
//! updated with every miss in the other caches."*
//!
//! Unlike the exact minimum search the simulator can afford, the hardware
//! structure is *approximate*: it only observes peer counter updates, so the
//! stored candidate can be stale (e.g. after the candidate's SSL drifts up
//! through hits it never reports). ASCC exposes both modes so the
//! `ablation_allocator` bench can quantify the difference.

use cmp_cache::CoreId;

/// Cores per cluster: receivers inside the spiller's cluster are
/// topologically "near" (one crossbar / mesh quadrant hop), everything
/// else is "far". Systems with at most this many cores have exactly one
/// cluster and see no cluster logic at all.
pub const CLUSTER_CORES: usize = 8;

/// The cluster a core belongs to.
pub fn cluster_of(core: CoreId) -> u16 {
    (core.index() / CLUSTER_CORES) as u16
}

/// One cache's spill-allocator: the best-known receiver candidate per set
/// — and, on many-core systems, per cluster of peers, so a spiller can
/// prefer a nearby receiver and still fall back to a distant one.
#[derive(Clone, Debug)]
pub struct SpillAllocator {
    /// `(candidate_value_fixed, candidate_cache)` at
    /// `[set * clusters + cluster]`; value `>= k_fixed` means "no valid
    /// candidate" for that set/cluster.
    entries: Vec<(u16, CoreId)>,
    k_fixed: u16,
    clusters: u16,
}

impl SpillAllocator {
    /// Creates a single-cluster allocator for `sets` sets with receiver
    /// threshold `k_fixed` (fixed-point `K`). All entries start invalid.
    pub fn new(sets: u32, k_fixed: u16) -> Self {
        Self::clustered(sets, k_fixed, 1)
    }

    /// Creates an allocator tracking one candidate per set *per cluster*
    /// of [`CLUSTER_CORES`] peers. `clustered(sets, k, 1)` is identical to
    /// [`new`](SpillAllocator::new).
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn clustered(sets: u32, k_fixed: u16, clusters: u16) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        SpillAllocator {
            entries: vec![(k_fixed, CoreId(0)); sets as usize * clusters as usize],
            k_fixed,
            clusters,
        }
    }

    fn slot(&self, set: u32, cluster: u16) -> usize {
        set as usize * self.clusters as usize + cluster.min(self.clusters - 1) as usize
    }

    /// Observes that peer `cache`'s counter covering `set` changed to
    /// `value_fixed` (called on every miss — and, in our implementation,
    /// every update — in the other caches).
    pub fn observe(&mut self, cache: CoreId, set: u32, value_fixed: u16) {
        let slot = self.slot(
            set,
            if self.clusters == 1 {
                0
            } else {
                cluster_of(cache)
            },
        );
        let e = &mut self.entries[slot];
        if value_fixed < e.0 {
            *e = (value_fixed, cache);
        } else if e.1 == cache {
            // Our candidate got worse; keep it if still valid, else drop.
            if value_fixed < self.k_fixed {
                e.0 = value_fixed;
            } else {
                *e = (self.k_fixed, cache);
            }
        }
    }

    /// The current candidate receiver for `set`, if any (cluster 0 first —
    /// use [`candidate_near`](SpillAllocator::candidate_near) on clustered
    /// allocators).
    pub fn candidate(&self, set: u32) -> Option<CoreId> {
        self.candidate_near(set, 0)
    }

    /// The current candidate receiver for `set`, preferring the spiller's
    /// `home` cluster and falling back to the others in increasing
    /// cluster-index distance (ties: lower cluster first — deterministic).
    pub fn candidate_near(&self, set: u32, home: u16) -> Option<CoreId> {
        let home = home.min(self.clusters - 1);
        let pick = |cluster: u16| -> Option<CoreId> {
            let (v, c) = self.entries[self.slot(set, cluster)];
            (v < self.k_fixed).then_some(c)
        };
        if let Some(c) = pick(home) {
            return Some(c);
        }
        for d in 1..self.clusters {
            if let Some(lo) = home.checked_sub(d) {
                if let Some(c) = pick(lo) {
                    return Some(c);
                }
            }
            let hi = home + d;
            if hi < self.clusters {
                if let Some(c) = pick(hi) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Invalidate every entry (used when SSL tables are re-initialised).
    pub fn clear(&mut self) {
        for e in &mut self.entries {
            e.0 = self.k_fixed;
        }
    }

    /// Serialises the candidate entries into `w` (restored by
    /// [`load_state`](SpillAllocator::load_state) on an allocator of
    /// identical shape).
    pub fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_u16(self.k_fixed);
        w.put_u16(self.clusters);
        w.put_u64(self.entries.len() as u64);
        for &(v, c) in &self.entries {
            w.put_u16(v);
            w.put_u8(c.0);
        }
    }

    /// Restores entries captured by [`save_state`](SpillAllocator::save_state).
    pub fn load_state(
        &mut self,
        r: &mut cmp_snap::SnapReader<'_>,
    ) -> Result<(), cmp_snap::SnapError> {
        let k_fixed = r.get_u16()?;
        let clusters = r.get_u16()?;
        let n = r.get_u64()?;
        if k_fixed != self.k_fixed || clusters != self.clusters || n != self.entries.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "spill allocator shape: snapshot K={k_fixed}/{clusters} clusters/{n} slots, \
                 live K={}/{} clusters/{} slots",
                self.k_fixed,
                self.clusters,
                self.entries.len()
            )));
        }
        for e in &mut self.entries {
            *e = (r.get_u16()?, CoreId(r.get_u8()?));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: u16 = 8 << 3;

    #[test]
    fn starts_with_no_candidate() {
        let a = SpillAllocator::new(4, K);
        assert_eq!(a.candidate(0), None);
    }

    #[test]
    fn tracks_the_minimum_seen() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, 5 << 3);
        a.observe(CoreId(2), 0, 3 << 3);
        a.observe(CoreId(3), 0, 4 << 3);
        assert_eq!(a.candidate(0), Some(CoreId(2)));
    }

    #[test]
    fn ignores_values_at_or_above_k() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, K);
        assert_eq!(a.candidate(0), None);
        a.observe(CoreId(1), 0, K + 8);
        assert_eq!(a.candidate(0), None);
    }

    #[test]
    fn candidate_drops_out_when_it_saturates() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, 2 << 3);
        assert_eq!(a.candidate(0), Some(CoreId(1)));
        a.observe(CoreId(1), 0, K + 8);
        assert_eq!(a.candidate(0), None);
    }

    #[test]
    fn candidate_value_updates_in_place() {
        let mut a = SpillAllocator::new(4, K);
        a.observe(CoreId(1), 0, 2 << 3);
        a.observe(CoreId(1), 0, 6 << 3); // worse but still valid
        assert_eq!(a.candidate(0), Some(CoreId(1)));
        // A better peer now wins.
        a.observe(CoreId(2), 0, 5 << 3);
        assert_eq!(a.candidate(0), Some(CoreId(2)));
    }

    #[test]
    fn clear_invalidates() {
        let mut a = SpillAllocator::new(2, K);
        a.observe(CoreId(1), 1, 0);
        a.clear();
        assert_eq!(a.candidate(1), None);
    }

    #[test]
    fn entries_are_per_set() {
        let mut a = SpillAllocator::new(2, K);
        a.observe(CoreId(1), 0, 0);
        assert_eq!(a.candidate(0), Some(CoreId(1)));
        assert_eq!(a.candidate(1), None);
    }

    #[test]
    fn clustered_allocator_prefers_the_home_cluster() {
        // 32 cores = 4 clusters of 8. A far candidate is strictly better,
        // but the near one (same cluster) still wins the spiller's pick.
        let mut a = SpillAllocator::clustered(4, K, 4);
        a.observe(CoreId(25), 0, 1 << 3); // cluster 3, value 1
        a.observe(CoreId(9), 0, 3 << 3); // cluster 1, value 3
        assert_eq!(a.candidate_near(0, 1), Some(CoreId(9)));
        assert_eq!(a.candidate_near(0, 3), Some(CoreId(25)));
    }

    #[test]
    fn clustered_allocator_falls_back_by_distance() {
        let mut a = SpillAllocator::clustered(1, K, 4);
        a.observe(CoreId(0), 0, 2 << 3); // cluster 0
        a.observe(CoreId(30), 0, 2 << 3); // cluster 3
                                          // Home cluster 1 is empty: cluster 0 (distance 1) beats cluster 3.
        assert_eq!(a.candidate_near(0, 1), Some(CoreId(0)));
        // Home cluster 2: cluster 1 (empty), then 3 at distance 1.
        assert_eq!(a.candidate_near(0, 2), Some(CoreId(30)));
    }

    #[test]
    fn cluster_of_splits_every_eight_cores() {
        assert_eq!(cluster_of(CoreId(0)), 0);
        assert_eq!(cluster_of(CoreId(7)), 0);
        assert_eq!(cluster_of(CoreId(8)), 1);
        assert_eq!(cluster_of(CoreId(63)), 7);
    }

    #[test]
    fn clustered_state_round_trips_and_rejects_shape_changes() {
        let mut a = SpillAllocator::clustered(2, K, 2);
        a.observe(CoreId(9), 0, 1 << 3);
        a.observe(CoreId(1), 1, 2 << 3);
        let mut w = cmp_snap::SnapWriter::new();
        a.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut b = SpillAllocator::clustered(2, K, 2);
        b.load_state(&mut cmp_snap::SnapReader::new(&bytes))
            .unwrap();
        assert_eq!(b.candidate_near(0, 1), Some(CoreId(9)));
        assert_eq!(b.candidate_near(1, 0), Some(CoreId(1)));

        let mut wrong = SpillAllocator::clustered(2, K, 4);
        assert!(wrong
            .load_state(&mut cmp_snap::SnapReader::new(&bytes))
            .is_err());
    }
}
