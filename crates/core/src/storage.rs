//! Analytical storage-cost model (Table 5 and the §7 cost study).
//!
//! The paper accounts a 1 MB/8-way/32 B baseline cache at 42-bit addresses:
//! 30-bit tag-store entries (5 bits MESI+LRU state, 25-bit tag), a 1 MB data
//! store, and for AVGCC 5 extra bits per set (4-bit SSL + insertion policy
//! bit) plus the `A`/`B`/`D` counters (12+12+4 bits). The QoS extension adds
//! 3 fractional bits per SSL counter and a few per-core counters.

use cmp_cache::CacheGeometry;

/// Storage accounting for one private LLC under a given design.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StorageCost {
    /// Tag store, in bits.
    pub tag_store_bits: u64,
    /// Data store, in bits.
    pub data_store_bits: u64,
    /// Additional structures required by the design, in bits.
    pub extra_bits: u64,
}

impl StorageCost {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.tag_store_bits + self.data_store_bits + self.extra_bits
    }

    /// Extra storage as a fraction of the baseline (tag + data) storage.
    pub fn overhead_fraction(&self) -> f64 {
        self.extra_bits as f64 / (self.tag_store_bits + self.data_store_bits) as f64
    }

    /// Extra storage in bytes (rounded up).
    pub fn extra_bytes(&self) -> u64 {
        self.extra_bits.div_ceil(8)
    }
}

/// The storage model of Table 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StorageModel {
    geometry: CacheGeometry,
    /// Physical address width (the paper assumes 42).
    pub addr_bits: u32,
    /// State bits per tag-store entry (MESI + LRU; the paper uses 5).
    pub state_bits: u32,
}

impl StorageModel {
    /// Model for the paper's assumptions (42-bit addresses, 5 state bits).
    pub fn paper(geometry: CacheGeometry) -> Self {
        StorageModel {
            geometry,
            addr_bits: 42,
            state_bits: 5,
        }
    }

    /// Tag bits per entry: `addr_bits - log2(sets) - log2(line_bytes)`.
    pub fn tag_bits(&self) -> u32 {
        self.addr_bits - self.geometry.index_bits() - self.geometry.offset_bits()
    }

    /// Baseline cost: tag store + data store, no extras.
    pub fn baseline(&self) -> StorageCost {
        let entries = self.geometry.lines();
        StorageCost {
            tag_store_bits: entries * (self.tag_bits() + self.state_bits) as u64,
            data_store_bits: entries * self.geometry.line_bytes() as u64 * 8,
            extra_bits: 0,
        }
    }

    /// ASCC at a given counter count: 4-bit SSL + 1 insertion-policy bit per
    /// counter (§7: 128 counters cost ~83 B, 2048 cost 1284 B with the AVGCC
    /// counters included).
    pub fn ascc(&self, counters: u64) -> StorageCost {
        let mut c = self.baseline();
        c.extra_bits = counters * 5;
        c
    }

    /// AVGCC: ASCC's per-counter bits at the finest granularity in use plus
    /// the `A` (12), `B` (12) and `D` (4) counters.
    pub fn avgcc(&self, max_counters: u64) -> StorageCost {
        let mut c = self.ascc(max_counters);
        c.extra_bits += 12 + 12 + 4;
        c
    }

    /// QoS-aware AVGCC (§8): 3 extra fractional bits per SSL counter, plus
    /// per-cache 2×8-bit miss counters, a 4-bit ratio and a 12-bit
    /// sampled-set count.
    pub fn qos_avgcc(&self, max_counters: u64) -> StorageCost {
        let mut c = self.avgcc(max_counters);
        c.extra_bits += max_counters * 3 + 16 + 4 + 12;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> StorageModel {
        StorageModel::paper(CacheGeometry::from_capacity(1 << 20, 8, 32).unwrap())
    }

    #[test]
    fn table5_tag_entry_is_30_bits() {
        let m = paper_model();
        assert_eq!(m.tag_bits(), 25);
        assert_eq!(m.tag_bits() + m.state_bits, 30);
    }

    #[test]
    fn table5_baseline_sizes() {
        let b = paper_model().baseline();
        // 32768 entries * 30 bits = 120 kB tag store.
        assert_eq!(b.tag_store_bits, 32768 * 30);
        assert_eq!(b.tag_store_bits / 8 / 1024, 120);
        assert_eq!(b.data_store_bits / 8, 1 << 20);
    }

    #[test]
    fn table5_avgcc_extras() {
        let c = paper_model().avgcc(4096);
        // 4096 * 5 bits = 2560 B plus ~4 B of A/B/D counters.
        assert_eq!(c.extra_bytes(), 2560 + 4);
        // Small overhead, under half a percent (the paper quotes 0.17%).
        assert!(c.overhead_fraction() < 0.005);
        assert!(c.overhead_fraction() > 0.001);
    }

    #[test]
    fn section7_limited_counter_costs() {
        let m = paper_model();
        // "...from 6.8% when limiting the number of counters to 128 (which
        // only requires 83B) to 7.1% using 2048 counters at the most (1284B)"
        assert_eq!(m.avgcc(128).extra_bytes(), 84); // paper rounds to 83 B
        assert_eq!(m.avgcc(2048).extra_bytes(), 1284);
    }

    #[test]
    fn qos_overhead_is_roughly_double() {
        let m = paper_model();
        let plain = m.avgcc(4096);
        let qos = m.qos_avgcc(4096);
        // 0.35% claimed vs 0.17% for plain AVGCC: about 2x.
        let ratio = qos.overhead_fraction() / plain.overhead_fraction();
        assert!((1.5..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn overhead_independent_of_cache_size_scaling() {
        // Table 4: overhead fraction stays ~constant as capacity scales
        // (counters scale with sets).
        for cap in [1u64 << 20, 2 << 20, 4 << 20] {
            let g = CacheGeometry::from_capacity(cap, 8, 32).unwrap();
            let m = StorageModel::paper(g);
            let frac = m.avgcc(g.sets() as u64).overhead_fraction();
            assert!((0.001..0.005).contains(&frac), "cap {cap}: {frac}");
        }
    }
}
