//! Analytical storage-cost model (Table 5 and the §7 cost study) and the
//! sidecar metadata arena the post-2012 policies allocate from.
//!
//! The paper accounts a 1 MB/8-way/32 B baseline cache at 42-bit addresses:
//! 30-bit tag-store entries (5 bits MESI+LRU state, 25-bit tag), a 1 MB data
//! store, and for AVGCC 5 extra bits per set (4-bit SSL + insertion policy
//! bit) plus the `A`/`B`/`D` counters (12+12+4 bits). The QoS extension adds
//! 3 fractional bits per SSL counter and a few per-core counters.
//!
//! The SoA set arena of `cmp-cache` packs recency as one nibble per way,
//! which caps metadata at 16 ways and leaves no room for variable-length
//! per-set state. Policies that need more — ARC's ghost lists, TinyLFU's
//! counting sketch, reuse-distance tables — allocate a [`SidecarSlab`]: a
//! flat `rows × words` u64 arena indexed the same way the set arena is, so
//! the per-set metadata stays contiguous, snapshot-friendly (one
//! `put_u64_slice`) and free of per-set heap boxes.

use cmp_cache::CacheGeometry;

/// A flat sidecar metadata arena: `rows` rows of `words` u64 words each.
///
/// Rows are whatever granularity the owning policy indexes by — (core, set)
/// pairs for ARC's per-set ghost state, sketch rows for TinyLFU, hash
/// buckets for reuse-distance tables. The slab itself is policy-agnostic:
/// it hands out `&[u64]` / `&mut [u64]` row views and serialises as a
/// single word vector.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SidecarSlab {
    words_per_row: usize,
    data: Vec<u64>,
}

impl SidecarSlab {
    /// An all-zero slab of `rows` rows with `words` u64 words per row.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero (a row must hold something).
    pub fn new(rows: usize, words: usize) -> Self {
        assert!(words > 0, "sidecar rows must be at least one word");
        SidecarSlab {
            words_per_row: words,
            data: vec![0; rows * words],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.words_per_row
    }

    /// Words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Read-only view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn row(&self, row: usize) -> &[u64] {
        let base = row * self.words_per_row;
        &self.data[base..base + self.words_per_row]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [u64] {
        let base = row * self.words_per_row;
        &mut self.data[base..base + self.words_per_row]
    }

    /// The whole arena as one word slice (bulk scans, halving sweeps).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.data
    }

    /// Mutable view of the whole arena.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Zeroes every word (sketch/doorkeeper resets).
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Serialises the arena (shape + contents).
    pub fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_u64(self.words_per_row as u64);
        w.put_u64_slice(&self.data);
    }

    /// Restores an arena saved by [`save_state`](SidecarSlab::save_state);
    /// the shape must match this slab's.
    pub fn load_state(
        &mut self,
        r: &mut cmp_snap::SnapReader<'_>,
    ) -> Result<(), cmp_snap::SnapError> {
        let words = r.get_u64()?;
        if words != self.words_per_row as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "sidecar row width: snapshot {words}, live {}",
                self.words_per_row
            )));
        }
        let data = r.get_u64_slice()?;
        if data.len() != self.data.len() {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "sidecar word count: snapshot {}, live {}",
                data.len(),
                self.data.len()
            )));
        }
        self.data = data;
        Ok(())
    }
}

/// Storage accounting for one private LLC under a given design.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StorageCost {
    /// Tag store, in bits.
    pub tag_store_bits: u64,
    /// Data store, in bits.
    pub data_store_bits: u64,
    /// Additional structures required by the design, in bits.
    pub extra_bits: u64,
}

impl StorageCost {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.tag_store_bits + self.data_store_bits + self.extra_bits
    }

    /// Extra storage as a fraction of the baseline (tag + data) storage.
    pub fn overhead_fraction(&self) -> f64 {
        self.extra_bits as f64 / (self.tag_store_bits + self.data_store_bits) as f64
    }

    /// Extra storage in bytes (rounded up).
    pub fn extra_bytes(&self) -> u64 {
        self.extra_bits.div_ceil(8)
    }
}

/// The storage model of Table 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StorageModel {
    geometry: CacheGeometry,
    /// Physical address width (the paper assumes 42).
    pub addr_bits: u32,
    /// State bits per tag-store entry (MESI + LRU; the paper uses 5).
    pub state_bits: u32,
}

impl StorageModel {
    /// Model for the paper's assumptions (42-bit addresses, 5 state bits).
    pub fn paper(geometry: CacheGeometry) -> Self {
        StorageModel {
            geometry,
            addr_bits: 42,
            state_bits: 5,
        }
    }

    /// Tag bits per entry: `addr_bits - log2(sets) - log2(line_bytes)`.
    pub fn tag_bits(&self) -> u32 {
        self.addr_bits - self.geometry.index_bits() - self.geometry.offset_bits()
    }

    /// Baseline cost: tag store + data store, no extras.
    pub fn baseline(&self) -> StorageCost {
        let entries = self.geometry.lines();
        StorageCost {
            tag_store_bits: entries * (self.tag_bits() + self.state_bits) as u64,
            data_store_bits: entries * self.geometry.line_bytes() as u64 * 8,
            extra_bits: 0,
        }
    }

    /// ASCC at a given counter count: 4-bit SSL + 1 insertion-policy bit per
    /// counter (§7: 128 counters cost ~83 B, 2048 cost 1284 B with the AVGCC
    /// counters included).
    pub fn ascc(&self, counters: u64) -> StorageCost {
        let mut c = self.baseline();
        c.extra_bits = counters * 5;
        c
    }

    /// AVGCC: ASCC's per-counter bits at the finest granularity in use plus
    /// the `A` (12), `B` (12) and `D` (4) counters.
    pub fn avgcc(&self, max_counters: u64) -> StorageCost {
        let mut c = self.ascc(max_counters);
        c.extra_bits += 12 + 12 + 4;
        c
    }

    /// QoS-aware AVGCC (§8): 3 extra fractional bits per SSL counter, plus
    /// per-cache 2×8-bit miss counters, a 4-bit ratio and a 12-bit
    /// sampled-set count.
    pub fn qos_avgcc(&self, max_counters: u64) -> StorageCost {
        let mut c = self.avgcc(max_counters);
        c.extra_bits += max_counters * 3 + 16 + 4 + 12;
        c
    }

    /// ARC: per set a target `p` plus a T2 membership bit per way and two
    /// ghost lists of up to `ways` tags each (with 1+log2(ways) length
    /// fields). Ghost entries store only tags — no data, no state.
    pub fn arc(&self) -> StorageCost {
        let mut c = self.baseline();
        let ways = self.geometry.ways() as u64;
        let sets = self.geometry.sets() as u64;
        let len_bits = 64 - u64::from(ways.leading_zeros()); // log2(ways)+1
        let p_bits = len_bits;
        c.extra_bits = sets * (p_bits + ways + 2 * (ways * self.tag_bits() as u64 + len_bits));
        c
    }

    /// TinyLFU admission: a `depth × width` count-min sketch of 4-bit
    /// counters, a 1-bit doorkeeper per sketch column and a 32-bit sample
    /// counter. Shared across all private LLCs, so the per-cache share is
    /// `1/cores` of it; this accounts the whole structure.
    pub fn tinylfu(&self, depth: u64, width: u64) -> StorageCost {
        let mut c = self.baseline();
        c.extra_bits = depth * width * 4 + width + 32;
        c
    }

    /// Reuse-distance copy-back: per core a direct-mapped predictor of
    /// `entries` rows, each a partial tag (16 bits), last-access timestamp
    /// (32 bits) and predicted distance (32 bits).
    pub fn rdcb(&self, entries: u64) -> StorageCost {
        let mut c = self.baseline();
        c.extra_bits = entries * (16 + 32 + 32);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> StorageModel {
        StorageModel::paper(CacheGeometry::from_capacity(1 << 20, 8, 32).unwrap())
    }

    #[test]
    fn table5_tag_entry_is_30_bits() {
        let m = paper_model();
        assert_eq!(m.tag_bits(), 25);
        assert_eq!(m.tag_bits() + m.state_bits, 30);
    }

    #[test]
    fn table5_baseline_sizes() {
        let b = paper_model().baseline();
        // 32768 entries * 30 bits = 120 kB tag store.
        assert_eq!(b.tag_store_bits, 32768 * 30);
        assert_eq!(b.tag_store_bits / 8 / 1024, 120);
        assert_eq!(b.data_store_bits / 8, 1 << 20);
    }

    #[test]
    fn table5_avgcc_extras() {
        let c = paper_model().avgcc(4096);
        // 4096 * 5 bits = 2560 B plus ~4 B of A/B/D counters.
        assert_eq!(c.extra_bytes(), 2560 + 4);
        // Small overhead, under half a percent (the paper quotes 0.17%).
        assert!(c.overhead_fraction() < 0.005);
        assert!(c.overhead_fraction() > 0.001);
    }

    #[test]
    fn section7_limited_counter_costs() {
        let m = paper_model();
        // "...from 6.8% when limiting the number of counters to 128 (which
        // only requires 83B) to 7.1% using 2048 counters at the most (1284B)"
        assert_eq!(m.avgcc(128).extra_bytes(), 84); // paper rounds to 83 B
        assert_eq!(m.avgcc(2048).extra_bytes(), 1284);
    }

    #[test]
    fn qos_overhead_is_roughly_double() {
        let m = paper_model();
        let plain = m.avgcc(4096);
        let qos = m.qos_avgcc(4096);
        // 0.35% claimed vs 0.17% for plain AVGCC: about 2x.
        let ratio = qos.overhead_fraction() / plain.overhead_fraction();
        assert!((1.5..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sidecar_rows_are_isolated_and_round_trip() {
        let mut s = SidecarSlab::new(4, 3);
        assert_eq!(s.rows(), 4);
        assert_eq!(s.words_per_row(), 3);
        s.row_mut(1).copy_from_slice(&[7, 8, 9]);
        s.row_mut(3)[2] = 0xDEAD;
        assert_eq!(s.row(0), &[0, 0, 0]);
        assert_eq!(s.row(1), &[7, 8, 9]);
        assert_eq!(s.row(3), &[0, 0, 0xDEAD]);

        let mut w = cmp_snap::SnapWriter::new();
        s.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut restored = SidecarSlab::new(4, 3);
        let mut r = cmp_snap::SnapReader::new(&bytes);
        restored.load_state(&mut r).unwrap();
        assert_eq!(restored, s);

        // Shape mismatches are rejected, not silently truncated.
        let mut wrong = SidecarSlab::new(4, 2);
        let mut r = cmp_snap::SnapReader::new(&bytes);
        assert!(wrong.load_state(&mut r).is_err());
        let mut wrong_rows = SidecarSlab::new(5, 3);
        let mut r = cmp_snap::SnapReader::new(&bytes);
        assert!(wrong_rows.load_state(&mut r).is_err());

        s.clear();
        assert!(s.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn new_policy_costs_stay_small() {
        let m = paper_model();
        // ARC's ghost directory holds a full tag per resident way (B1+B2),
        // roughly doubling the tag store — by far the most expensive of the
        // frontier, and the honest contrast with AVGCC's ~0.1% counters.
        let arc = m.arc();
        assert!(
            arc.overhead_fraction() < 0.25,
            "{}",
            arc.overhead_fraction()
        );
        assert!(arc.extra_bits > m.avgcc(4096).extra_bits);
        // A 4x16384 sketch of nibbles plus doorkeeper is ~34 kB on a 1 MB
        // cache: a few percent, an order cheaper than ARC's ghosts.
        let t = m.tinylfu(4, 16384);
        assert_eq!(t.extra_bits, 4 * 16384 * 4 + 16384 + 32);
        assert!(t.overhead_fraction() < 0.05);
        assert!(t.extra_bits < arc.extra_bits / 4);
        // A 4096-entry reuse-distance table is 40 kB.
        let r = m.rdcb(4096);
        assert_eq!(r.extra_bytes(), 4096 * 10);
    }

    #[test]
    fn overhead_independent_of_cache_size_scaling() {
        // Table 4: overhead fraction stays ~constant as capacity scales
        // (counters scale with sets).
        for cap in [1u64 << 20, 2 << 20, 4 << 20] {
            let g = CacheGeometry::from_capacity(cap, 8, 32).unwrap();
            let m = StorageModel::paper(g);
            let frac = m.avgcc(g.sets() as u64).overhead_fraction();
            assert!((0.001..0.005).contains(&frac), "cap {cap}: {frac}");
        }
    }
}
