//! Tuning knobs for the SSL stress metric (§9 future work).
//!
//! The paper closes by proposing "tuning the size and limits of saturation
//! counters, as well as exploring other metrics" as future work.
//! [`SslTuning`] exposes both: the saturation maximum as a multiple of the
//! associativity `K` (the default reproduces the paper's `2K - 1` range),
//! and the update rule ([`StressMetric`]) — the paper's saturating ±1
//! counter or an exponentially-weighted moving average of the miss ratio.
//! The `ablations` bench sweeps these knobs.

/// How the per-set stress counter reacts to hits and misses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StressMetric {
    /// The paper's rule: saturating `+1` on a miss, `-1` on a hit.
    #[default]
    Saturating,
    /// An EWMA of the miss indicator: `v += (max - v) >> shift` on a miss,
    /// `v -= v >> shift` on a hit. Reacts faster to behaviour changes and
    /// never forgets a mixed history entirely — one of the "other metrics"
    /// the paper leaves for future work.
    Ewma {
        /// Smoothing shift; larger = slower (3 is a reasonable default).
        shift: u8,
    },
}

/// Stress-metric tuning of the SSL counters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SslTuning {
    /// The saturation maximum is `ceil(K * max_multiplier) - 1`.
    /// The paper uses 2.0, giving `2K - 1`.
    pub max_multiplier: f64,
    /// The update rule.
    pub metric: StressMetric,
}

impl Default for SslTuning {
    fn default() -> Self {
        SslTuning {
            max_multiplier: 2.0,
            metric: StressMetric::Saturating,
        }
    }
}

impl SslTuning {
    /// The paper's configuration (`2K - 1`, saturating counter).
    pub fn paper() -> Self {
        SslTuning::default()
    }

    /// An EWMA variant with the given smoothing shift.
    pub fn ewma(shift: u8) -> Self {
        SslTuning {
            max_multiplier: 2.0,
            metric: StressMetric::Ewma { shift },
        }
    }

    /// Saturation maximum (integer SSL units) for associativity `k`.
    ///
    /// # Panics
    ///
    /// Panics if the multiplier is not finite and positive.
    pub fn max_value(&self, k: u16) -> u16 {
        assert!(
            self.max_multiplier.is_finite() && self.max_multiplier > 0.0,
            "max_multiplier must be positive and finite"
        );
        let m = (k as f64 * self.max_multiplier).ceil() as u32;
        (m.max(k as u32 + 2) - 1).min(u16::MAX as u32) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_2k_minus_1() {
        let t = SslTuning::default();
        assert_eq!(t.max_value(8), 15);
        assert_eq!(t.max_value(4), 7);
        assert_eq!(t, SslTuning::paper());
        assert_eq!(t.metric, StressMetric::Saturating);
    }

    #[test]
    fn wider_range() {
        let t = SslTuning {
            max_multiplier: 4.0,
            ..SslTuning::default()
        };
        assert_eq!(t.max_value(8), 31);
    }

    #[test]
    fn never_collapses_below_k_plus_1() {
        // Even with a tiny multiplier the range keeps a neutral band.
        let t = SslTuning {
            max_multiplier: 1.01,
            ..SslTuning::default()
        };
        assert!(t.max_value(8) > 8);
    }

    #[test]
    fn ewma_constructor() {
        let t = SslTuning::ewma(3);
        assert_eq!(t.metric, StressMetric::Ewma { shift: 3 });
        assert_eq!(t.max_value(8), 15);
    }
}
