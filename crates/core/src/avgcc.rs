//! AVGCC — Adaptive Variable-Granularity Cooperative Caching (§4) and its
//! Quality-of-Service extension (§8).
//!
//! AVGCC is ASCC whose *granularity* (sets per SSL counter) adapts at run
//! time. Per cache it keeps the three hardware counters of §4.1:
//!
//! * `D` — log2 of the current sets-per-counter (counter `I >> D` covers
//!   set `I`);
//! * `A` — how many adjacent counter pairs are *similar* (absolute value
//!   difference of at most 2 and the same insertion policy), maintained by
//!   evaluating the pair condition before and after every counter update;
//! * `B` — how many counters in use are below `K`, maintained on every
//!   `K`-boundary crossing.
//!
//! Every `epoch_accesses` accesses (the paper uses 100 000) the cache
//! doubles its counters (`D -= 1`) when `B > (S >> D) / 2` — more than half
//! the counters signal spare capacity, so finer tracking pays — or halves
//! them (`D += 1`) when `A == (S >> D) / 2` — every pair is redundant. After
//! a change the new counters are initialised to `K - 1` and the insertion
//! policies reset to MRU. Different caches may run at different
//! granularities.
//!
//! The QoS extension estimates the baseline's misses from sets that are in
//! MRU mode with `SSL > K-1` (they neither receive nor insert deep), and
//! every 100 000 cycles updates `QoSRatio = MBC / max(MBC, MissesWithAVGCC)`
//! (1.3 fixed point). Each miss then adds `QoSRatio` instead of 1 to the
//! SSL, throttling the whole mechanism when it is hurting.

use crate::ssl::{SetRole, SslTable};
use crate::tuning::SslTuning;
use cmp_cache::{
    AccessOutcome, CoreId, CoreSnapshot, InsertPos, LlcPolicy, ObsEvent, PolicySnapshot,
    RoleHistogram, SetIdx, SpillDecision, SpillVictim,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of an [`AvgccPolicy`].
#[derive(Clone, Debug)]
pub struct AvgccConfig {
    /// Number of cores / private LLCs.
    pub cores: usize,
    /// Sets per LLC.
    pub sets: u32,
    /// LLC associativity (`K`).
    pub ways: u16,
    /// Accesses per cache between granularity recalculations (§5: 100 000).
    pub epoch_accesses: u64,
    /// Enable the §8 QoS extension.
    pub qos: bool,
    /// Cycles between QoS ratio recalculations (§8: 100 000).
    pub qos_epoch_cycles: u64,
    /// Cap on the number of counters (the §7 cost study limits to 128 or
    /// 2048); `None` allows the finest one-counter-per-set granularity.
    pub max_counters: Option<u32>,
    /// BIP/SABIP probability of MRU insertion.
    pub bip_epsilon: f64,
    /// Enable the requested/victim swap of §3.2.
    pub swap: bool,
    /// SSL saturation-range tuning.
    pub tuning: SslTuning,
    /// RNG seed.
    pub seed: u64,
}

impl AvgccConfig {
    /// The paper's AVGCC.
    ///
    /// # Examples
    ///
    /// ```
    /// use ascc::AvgccConfig;
    /// use cmp_cache::CoreId;
    ///
    /// // 4 cores with the paper's 4096-set, 8-way LLCs.
    /// let policy = AvgccConfig::avgcc(4, 4096, 8).build();
    /// // Every cache starts with a single counter for the whole cache.
    /// assert_eq!(policy.counters_in_use(CoreId(0)), 1);
    /// ```
    pub fn avgcc(cores: usize, sets: u32, ways: u16) -> Self {
        AvgccConfig {
            cores,
            sets,
            ways,
            epoch_accesses: 100_000,
            qos: false,
            qos_epoch_cycles: 100_000,
            max_counters: None,
            bip_epsilon: 1.0 / 32.0,
            swap: true,
            tuning: SslTuning::default(),
            seed: 0xA26CC,
        }
    }

    /// The QoS-aware AVGCC of §8.
    pub fn qos_avgcc(cores: usize, sets: u32, ways: u16) -> Self {
        let mut c = Self::avgcc(cores, sets, ways);
        c.qos = true;
        c
    }

    /// Limits the maximum number of counters (§7 cost study).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, not a power of two, or exceeds `sets`.
    pub fn with_max_counters(mut self, n: u32) -> Self {
        assert!(
            n > 0 && n.is_power_of_two() && n <= self.sets,
            "max counters must be a power of two within the set count"
        );
        self.max_counters = Some(n);
        self
    }

    /// Builds the policy.
    pub fn build(self) -> AvgccPolicy {
        AvgccPolicy::new(self)
    }
}

/// Fixed-point 1.0 for the 1.3-format QoS ratio.
const QOS_ONE: u16 = 1 << 3;

#[derive(Clone, Debug, Default)]
struct QosState {
    misses_with: u64,
    sampled_misses: u64,
    last_cycle: u64,
    ratio_fixed: u16,
}

struct AvgccCache {
    ssl: SslTable,
    bip: Vec<bool>,
    d: u8,
    a: u32,
    b: u32,
    accesses: u64,
    qos: QosState,
}

impl AvgccCache {
    fn in_use(&self) -> u32 {
        self.ssl.counters() as u32
    }

    /// Whether the pair containing counter `idx` is "similar": values within
    /// 2 SSL units and the same insertion policy (§4).
    fn pair_similar(&self, idx: usize) -> bool {
        let j = idx ^ 1;
        if j >= self.ssl.counters() {
            return false;
        }
        let vi = self.ssl.value_at(idx) as i32;
        let vj = self.ssl.value_at(j) as i32;
        (vi - vj).abs() <= 2 * SslTable::ONE as i32 && self.bip[idx] == self.bip[j]
    }

    /// Applies a counter mutation while maintaining `A` and `B` exactly as
    /// the hardware of §4.1 does (evaluate-before / evaluate-after).
    fn mutate(&mut self, idx: usize, new_value: Option<u16>, new_bip: Option<bool>) {
        let before = self.pair_similar(idx);
        if let Some(nv) = new_value {
            let old = self.ssl.value_at(idx);
            let k = self.ssl.k_fixed();
            if old >= k && nv < k {
                self.b += 1;
            } else if old < k && nv >= k {
                self.b -= 1;
            }
            self.ssl.set_value_at(idx, nv);
        }
        if let Some(nb) = new_bip {
            self.bip[idx] = nb;
        }
        let after = self.pair_similar(idx);
        match (before, after) {
            (false, true) => self.a += 1,
            (true, false) => self.a -= 1,
            _ => {}
        }
    }

    /// Recomputes `A`/`B` from scratch (used after re-initialisation and by
    /// the consistency tests).
    fn recount_ab(&self) -> (u32, u32) {
        let n = self.ssl.counters();
        let a = (0..n / 2).filter(|&m| self.pair_similar(2 * m)).count() as u32;
        let b = (0..n)
            .filter(|&i| self.ssl.value_at(i) < self.ssl.k_fixed())
            .count() as u32;
        (a, b)
    }

    fn reinit(&mut self, sets: u32, k: u16, tuning: SslTuning) {
        self.ssl = SslTable::with_tuning(sets, k, 1 << self.d, tuning);
        self.bip = vec![false; self.ssl.counters()];
        let (a, b) = self.recount_ab();
        self.a = a;
        self.b = b;
    }
}

/// The AVGCC / QoS-AVGCC policy.
pub struct AvgccPolicy {
    cfg: AvgccConfig,
    name: String,
    caches: Vec<AvgccCache>,
    rng: SmallRng,
    d_min: u8,
    d_max: u8,
    granularity_changes: u64,
    /// Event buffering is enabled only while a probe observes the run.
    observed: bool,
    events: Vec<ObsEvent>,
}

impl std::fmt::Debug for AvgccPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AvgccPolicy")
            .field("name", &self.name)
            .field("cores", &self.cfg.cores)
            .finish()
    }
}

impl AvgccPolicy {
    /// Builds the policy. Every cache starts at the coarsest granularity —
    /// "our proposal entails starting with one counter for the whole cache"
    /// (§4).
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration (zero cores, non-power-of-two
    /// shapes, epsilon outside `[0, 1]`).
    pub fn new(cfg: AvgccConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(
            (0.0..=1.0).contains(&cfg.bip_epsilon),
            "epsilon must be a probability"
        );
        assert!(cfg.epoch_accesses > 0, "epoch must be nonzero");
        let d_max = cfg.sets.trailing_zeros() as u8;
        let d_min = cfg
            .max_counters
            .map(|mc| d_max - mc.trailing_zeros() as u8)
            .unwrap_or(0);
        let name = match (cfg.qos, cfg.max_counters) {
            (true, _) => "QoS-AVGCC".to_string(),
            (false, Some(mc)) => format!("AVGCC-c{mc}"),
            (false, None) => "AVGCC".to_string(),
        };
        let caches = (0..cfg.cores)
            .map(|_| {
                let mut c = AvgccCache {
                    ssl: SslTable::with_tuning(cfg.sets, cfg.ways, cfg.sets, cfg.tuning),
                    bip: vec![false],
                    d: d_max,
                    a: 0,
                    b: 0,
                    accesses: 0,
                    qos: QosState {
                        ratio_fixed: QOS_ONE,
                        ..QosState::default()
                    },
                };
                let (a, b) = c.recount_ab();
                c.a = a;
                c.b = b;
                c
            })
            .collect();
        AvgccPolicy {
            rng: SmallRng::seed_from_u64(cfg.seed),
            name,
            caches,
            d_min,
            d_max,
            granularity_changes: 0,
            observed: false,
            events: Vec::new(),
            cfg,
        }
    }

    /// The configuration this policy was built from.
    pub fn config(&self) -> &AvgccConfig {
        &self.cfg
    }

    /// Current `D` (log2 sets-per-counter) of a cache.
    pub fn granularity_log2(&self, core: CoreId) -> u8 {
        self.caches[core.index()].d
    }

    /// Number of counters a cache currently uses.
    pub fn counters_in_use(&self, core: CoreId) -> u32 {
        self.caches[core.index()].in_use()
    }

    /// Total granularity changes across all caches (behaviour stats).
    pub fn granularity_changes(&self) -> u64 {
        self.granularity_changes
    }

    /// Current QoS ratio of a cache as a float in `[0, 1]`.
    pub fn qos_ratio(&self, core: CoreId) -> f64 {
        self.caches[core.index()].qos.ratio_fixed as f64 / QOS_ONE as f64
    }

    /// Current role of `core`'s `set`.
    pub fn role(&self, core: CoreId, set: SetIdx) -> SetRole {
        self.caches[core.index()].ssl.role(set.0)
    }

    /// Whether `core`'s `set` is in SABIP mode.
    pub fn in_capacity_mode(&self, core: CoreId, set: SetIdx) -> bool {
        let c = &self.caches[core.index()];
        c.bip[c.ssl.counter_of(set.0)]
    }

    /// Fixed-point values of all in-use SSL counters of `core`, counter
    /// order (differential-testing helper).
    pub fn ssl_values(&self, core: CoreId) -> Vec<u16> {
        let t = &self.caches[core.index()].ssl;
        (0..t.counters()).map(|i| t.value_at(i)).collect()
    }

    /// SABIP flags of all in-use counters of `core`, counter order
    /// (differential-testing helper).
    pub fn bip_flags(&self, core: CoreId) -> Vec<bool> {
        self.caches[core.index()].bip.clone()
    }

    /// The incremental `(A, B)` epoch counters of `core`
    /// (differential-testing helper).
    pub fn ab_counters(&self, core: CoreId) -> (u32, u32) {
        let c = &self.caches[core.index()];
        (c.a, c.b)
    }

    /// Verifies the incremental `A`/`B` counters against a recount
    /// (debug/test helper).
    ///
    /// # Panics
    ///
    /// Panics if the incremental state diverged.
    pub fn assert_ab_consistent(&self) {
        for (i, c) in self.caches.iter().enumerate() {
            let (a, b) = c.recount_ab();
            assert_eq!((c.a, c.b), (a, b), "cache {i}: A/B diverged from recount");
        }
    }

    fn epoch(&mut self, core: usize) {
        let (sets, ways, tuning) = (self.cfg.sets, self.cfg.ways, self.cfg.tuning);
        let c = &mut self.caches[core];
        let in_use = c.in_use();
        // Refine (duplicate the counters) when more than half signal spare
        // capacity; coarsen (halve) when every adjacent pair is redundant.
        // Refinement is checked first: capacity that can be shared at a
        // finer grain is the mechanism's raison d'être.
        if c.b > in_use / 2 && c.d > self.d_min {
            c.d -= 1;
            c.reinit(sets, ways, tuning);
            let (d, n) = (c.d, c.in_use());
            self.granularity_changes += 1;
            self.note_regranularized(core, d, n);
        } else if in_use >= 2 && c.a == in_use / 2 && c.d < self.d_max {
            c.d += 1;
            c.reinit(sets, ways, tuning);
            let (d, n) = (c.d, c.in_use());
            self.granularity_changes += 1;
            self.note_regranularized(core, d, n);
        }
    }

    fn note_regranularized(&mut self, core: usize, d: u8, counters: u32) {
        if self.observed {
            self.events.push(ObsEvent::Regranularized {
                core: CoreId(core as u8),
                granularity_log2: d,
                counters,
            });
        }
    }

    fn sabip_pos(&mut self) -> InsertPos {
        if self.rng.gen::<f64>() < self.cfg.bip_epsilon {
            InsertPos::Mru
        } else {
            InsertPos::LruMinus1
        }
    }
}

impl LlcPolicy for AvgccPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn record_access(&mut self, core: CoreId, set: SetIdx, outcome: AccessOutcome) {
        let hit = outcome.is_hit();
        let qos_on = self.cfg.qos;
        let c = &mut self.caches[core.index()];
        let idx = c.ssl.counter_of(set.0);
        let old = c.ssl.value_at(idx);
        let k = c.ssl.k_fixed();
        let reverted = if hit {
            let new = old.saturating_sub(SslTable::ONE);
            let revert = new < k && c.bip[idx];
            c.mutate(idx, Some(new), revert.then_some(false));
            revert
        } else {
            if qos_on {
                c.qos.misses_with += 1;
                // Sampled sets: MRU policy and SSL > K-1 (cannot receive).
                if !c.bip[idx] && old >= k {
                    c.qos.sampled_misses += 1;
                }
            }
            let inc = if qos_on {
                c.qos.ratio_fixed
            } else {
                SslTable::ONE
            };
            let new = old.saturating_add(inc).min(c.ssl.max_fixed());
            let revert = new < k && c.bip[idx];
            c.mutate(idx, Some(new), revert.then_some(false));
            revert
        };
        c.accesses += 1;
        let epoch_due = c.accesses.is_multiple_of(self.cfg.epoch_accesses);
        if reverted && self.observed {
            self.events.push(ObsEvent::InsertionModeSwitch {
                core,
                counter: idx as u32,
                deep: false,
            });
        }
        if epoch_due {
            self.epoch(core.index());
        }
    }

    fn demand_insert_pos(&mut self, core: CoreId, set: SetIdx) -> InsertPos {
        if self.in_capacity_mode(core, set) {
            self.sabip_pos()
        } else {
            InsertPos::Mru
        }
    }

    fn spill_decision(&mut self, from: CoreId, set: SetIdx, _victim: SpillVictim) -> SpillDecision {
        if self.cfg.qos && self.caches[from.index()].qos.ratio_fixed == 0 {
            // Fully inhibited: behave like the baseline (no spilling).
            return SpillDecision::NotSpiller;
        }
        if self.role(from, set) != SetRole::Spiller {
            return SpillDecision::NotSpiller;
        }
        // Minimum-SSL receiver among the peers, each evaluated at its own
        // current granularity; ties broken randomly. Under QoS, a cache
        // whose ratio dropped below 1 is being *harmed* by the mechanism
        // (its misses exceed the baseline estimate): inhibiting AVGCC for
        // it means it neither spills nor accepts further spills until its
        // ratio recovers (§8's "losing performance may be unacceptable").
        let k = self.caches[from.index()].ssl.k_fixed();
        let mut best = k;
        let mut candidates: Vec<CoreId> = Vec::with_capacity(self.cfg.cores);
        for (i, c) in self.caches.iter().enumerate() {
            if i == from.index() {
                continue;
            }
            if self.cfg.qos && c.qos.ratio_fixed < QOS_ONE {
                continue;
            }
            let v = c.ssl.value(set.0);
            if v < best {
                best = v;
                candidates.clear();
                candidates.push(CoreId(i as u8));
            } else if v < k && v == best {
                candidates.push(CoreId(i as u8));
            }
        }
        match candidates.len() {
            0 => {
                let c = &mut self.caches[from.index()];
                let idx = c.ssl.counter_of(set.0);
                if !c.bip[idx] {
                    c.mutate(idx, None, Some(true));
                    if self.observed {
                        self.events.push(ObsEvent::InsertionModeSwitch {
                            core: from,
                            counter: idx as u32,
                            deep: true,
                        });
                    }
                }
                SpillDecision::NoCandidate
            }
            1 => SpillDecision::Spill(candidates[0]),
            n => SpillDecision::Spill(candidates[self.rng.gen_range(0..n)]),
        }
    }

    fn swap_enabled(&self) -> bool {
        self.cfg.swap
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (i, c) in self.caches.iter().enumerate() {
            let t = &c.ssl;
            let values: Vec<u16> = (0..t.counters()).map(|j| t.value_at(j)).collect();
            let reported: Vec<cmp_coherence::SslRole> = (0..t.counters())
                .map(|j| {
                    let set = (j as u32) * t.sets_per_counter();
                    match self.role(CoreId(i as u8), SetIdx(set)) {
                        SetRole::Receiver => cmp_coherence::SslRole::Receiver,
                        SetRole::Neutral => cmp_coherence::SslRole::Neutral,
                        SetRole::Spiller => cmp_coherence::SslRole::Spiller,
                    }
                })
                .collect();
            out.extend(
                cmp_coherence::check_ssl(
                    i,
                    &values,
                    t.k_fixed(),
                    t.spiller_fixed(),
                    t.max_fixed(),
                    &reported,
                )
                .iter()
                .map(|v| v.to_string()),
            );
            out.extend(
                cmp_coherence::check_granularity(
                    i,
                    self.cfg.sets,
                    c.in_use(),
                    self.cfg.max_counters,
                )
                .iter()
                .map(|v| v.to_string()),
            );
            // The incremental A/B bookkeeping must agree with a recount.
            let (a, b) = c.recount_ab();
            if (c.a, c.b) != (a, b) {
                out.push(format!(
                    "core {i}: incremental A/B ({}, {}) diverged from recount ({a}, {b})",
                    c.a, c.b
                ));
            }
        }
        out
    }

    fn on_cycle(&mut self, core: CoreId, cycles: u64) {
        if !self.cfg.qos {
            return;
        }
        let sets = self.cfg.sets;
        let c = &mut self.caches[core.index()];
        if cycles.saturating_sub(c.qos.last_cycle) < self.cfg.qos_epoch_cycles {
            return;
        }
        c.qos.last_cycle = cycles;
        // Estimate the baseline's misses from the sampled sets (Eq. 1).
        let spc = c.ssl.sets_per_counter() as u64;
        let k = c.ssl.k_fixed();
        let sampled_counters = (0..c.ssl.counters())
            .filter(|&i| !c.bip[i] && c.ssl.value_at(i) >= k)
            .count() as u64;
        let sampled_sets = sampled_counters * spc;
        let ratio = if sampled_sets == 0 || c.qos.misses_with == 0 {
            1.0
        } else {
            let mbc = sets as f64 * (c.qos.sampled_misses as f64 / sampled_sets as f64);
            mbc / mbc.max(c.qos.misses_with as f64)
        };
        c.qos.ratio_fixed = ((ratio * QOS_ONE as f64).round() as u16).min(QOS_ONE);
        c.qos.misses_with = 0;
        c.qos.sampled_misses = 0;
        let ratio = c.qos.ratio_fixed as f64 / QOS_ONE as f64;
        if self.observed {
            self.events.push(ObsEvent::QosRatioUpdate { core, ratio });
        }
    }

    fn snapshot(&self) -> PolicySnapshot {
        let mut snap = PolicySnapshot::new(&self.name);
        snap.granularity_changes = Some(self.granularity_changes);
        snap.ab_consistent = Some(self.caches.iter().all(|c| c.recount_ab() == (c.a, c.b)));
        snap.per_core = self
            .caches
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let mut cs = CoreSnapshot::new(CoreId(i as u8));
                let mut h = RoleHistogram::default();
                for set in 0..self.cfg.sets {
                    match c.ssl.role(set) {
                        SetRole::Receiver => h.receiver += 1,
                        SetRole::Neutral => h.neutral += 1,
                        SetRole::Spiller => h.spiller += 1,
                    }
                }
                cs.roles = Some(h);
                cs.sabip_sets = Some(
                    (0..self.cfg.sets)
                        .filter(|&s| c.bip[c.ssl.counter_of(s)])
                        .count() as u32,
                );
                cs.granularity_log2 = Some(c.d);
                cs.counters_in_use = Some(c.in_use());
                if self.cfg.qos {
                    cs.qos_ratio = Some(c.qos.ratio_fixed as f64 / QOS_ONE as f64);
                }
                cs
            })
            .collect();
        snap
    }

    fn set_observed(&mut self, observed: bool) {
        self.observed = observed;
        if !observed {
            self.events.clear();
        }
    }

    fn drain_events(&mut self, out: &mut Vec<ObsEvent>) {
        out.append(&mut self.events);
    }

    fn save_state(&self, w: &mut cmp_snap::SnapWriter) {
        w.put_str(&self.name);
        w.put_u64_slice(&self.rng.state());
        w.put_u64(self.granularity_changes);
        w.put_u64(self.caches.len() as u64);
        for c in &self.caches {
            w.put_u8(c.d);
            c.ssl.save_state(w);
            w.put_u64(c.bip.len() as u64);
            for &b in &c.bip {
                w.put_bool(b);
            }
            w.put_u32(c.a);
            w.put_u32(c.b);
            w.put_u64(c.accesses);
            w.put_u64(c.qos.misses_with);
            w.put_u64(c.qos.sampled_misses);
            w.put_u64(c.qos.last_cycle);
            w.put_u16(c.qos.ratio_fixed);
        }
    }

    fn load_state(&mut self, r: &mut cmp_snap::SnapReader<'_>) -> Result<(), cmp_snap::SnapError> {
        let name = r.get_str()?;
        if name != self.name {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "policy variant: snapshot \"{name}\", live \"{}\"",
                self.name
            )));
        }
        let rng = r.get_u64_slice()?;
        let rng: [u64; 4] = rng
            .as_slice()
            .try_into()
            .map_err(|_| cmp_snap::SnapError::Corrupt("RNG state is not 4 words".into()))?;
        if rng == [0; 4] {
            return Err(cmp_snap::SnapError::Corrupt("all-zero RNG state".into()));
        }
        self.rng = SmallRng::from_state(rng);
        self.granularity_changes = r.get_u64()?;
        let n = r.get_u64()?;
        if n != self.caches.len() as u64 {
            return Err(cmp_snap::SnapError::Mismatch(format!(
                "core count: snapshot {n}, live {}",
                self.caches.len()
            )));
        }
        let (sets, ways, tuning) = (self.cfg.sets, self.cfg.ways, self.cfg.tuning);
        for c in &mut self.caches {
            let d = r.get_u8()?;
            if !(self.d_min..=self.d_max).contains(&d) {
                return Err(cmp_snap::SnapError::Corrupt(format!(
                    "granularity D={d} outside [{}, {}]",
                    self.d_min, self.d_max
                )));
            }
            // Rebuild the table at the snapshot's granularity first: the
            // SSL shape (and the BIP flag count) depends on `D`, then the
            // saved counter values overwrite the reinitialised ones and
            // `A`/`B` are taken from the snapshot (they were maintained
            // incrementally and must continue bit-exactly).
            c.d = d;
            c.reinit(sets, ways, tuning);
            c.ssl.load_state(r)?;
            let len = r.get_u64()?;
            if len != c.bip.len() as u64 {
                return Err(cmp_snap::SnapError::Corrupt(format!(
                    "BIP flag count {len} for {} counters",
                    c.bip.len()
                )));
            }
            for b in &mut c.bip {
                *b = r.get_bool()?;
            }
            c.a = r.get_u32()?;
            c.b = r.get_u32()?;
            c.accesses = r.get_u64()?;
            c.qos = QosState {
                misses_with: r.get_u64()?,
                sampled_misses: r.get_u64()?,
                last_cycle: r.get_u64()?,
                ratio_fixed: r.get_u16()?,
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SETS: u32 = 16;
    const K: u16 = 4;

    fn quick(cores: usize) -> AvgccConfig {
        let mut c = AvgccConfig::avgcc(cores, SETS, K);
        c.epoch_accesses = 64; // fast epochs for tests
        c
    }

    #[test]
    fn starts_with_one_counter() {
        let p = quick(2).build();
        assert_eq!(p.counters_in_use(CoreId(0)), 1);
        assert_eq!(p.granularity_log2(CoreId(0)), 4); // log2(16)
        assert_eq!(p.name(), "AVGCC");
    }

    #[test]
    fn refines_under_spare_capacity() {
        let mut p = quick(2).build();
        // All hits: the single counter drops below K; B = 1 > 1/2 = 0 -> refine.
        for i in 0..200u32 {
            p.record_access(
                CoreId(0),
                SetIdx(i % SETS),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        assert!(
            p.counters_in_use(CoreId(0)) > 1,
            "cache with spare capacity should refine; in use: {}",
            p.counters_in_use(CoreId(0))
        );
        p.assert_ab_consistent();
    }

    #[test]
    fn coarsens_when_counters_agree() {
        let mut cfg = quick(1);
        cfg.epoch_accesses = 32;
        let mut p = cfg.build();
        // Refine a few times first.
        for i in 0..200u32 {
            p.record_access(
                CoreId(0),
                SetIdx(i % SETS),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        let fine = p.counters_in_use(CoreId(0));
        assert!(fine > 1);
        // Uniform misses keep all counters equal and >= K: A = pairs -> coarsen.
        for round in 0..40 {
            for i in 0..SETS {
                let _ = round;
                p.record_access(CoreId(0), SetIdx(i), AccessOutcome::Miss);
            }
        }
        assert!(
            p.counters_in_use(CoreId(0)) < fine,
            "uniform pressure should coarsen: {} -> {}",
            fine,
            p.counters_in_use(CoreId(0))
        );
        p.assert_ab_consistent();
    }

    #[test]
    fn granularity_stays_within_bounds() {
        let mut p = quick(1).build();
        for i in 0..10_000u32 {
            let hit = (i / 32) % 3 != 0;
            p.record_access(
                CoreId(0),
                SetIdx(i % SETS),
                if hit {
                    AccessOutcome::Hit {
                        spilled: false,
                        depth: 0,
                    }
                } else {
                    AccessOutcome::Miss
                },
            );
            let d = p.granularity_log2(CoreId(0));
            assert!(d <= 4, "d={d} exceeded log2(sets)");
        }
        p.assert_ab_consistent();
    }

    #[test]
    fn max_counters_caps_refinement() {
        let mut cfg = quick(1).with_max_counters(4);
        cfg.epoch_accesses = 16;
        let mut p = cfg.build();
        assert_eq!(p.name(), "AVGCC-c4");
        for i in 0..5_000u32 {
            p.record_access(
                CoreId(0),
                SetIdx(i % SETS),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        assert!(p.counters_in_use(CoreId(0)) <= 4);
    }

    #[test]
    fn ab_match_recount_under_mixed_traffic() {
        let mut p = quick(3).build();
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let core = (x >> 60) as usize % 3;
            let set = ((x >> 20) % SETS as u64) as u32;
            let hit = (x >> 40) % 5 < 3;
            p.record_access(
                CoreId(core as u8),
                SetIdx(set),
                if hit {
                    AccessOutcome::Hit {
                        spilled: false,
                        depth: 0,
                    }
                } else {
                    AccessOutcome::Miss
                },
            );
            let _ = p.spill_decision(CoreId(core as u8), SetIdx(set), SpillVictim::default());
        }
        p.assert_ab_consistent();
    }

    #[test]
    fn spiller_switches_to_sabip_without_candidates() {
        let mut p = quick(2).build();
        // Saturate both caches (single global counter each).
        for _ in 0..200 {
            p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
            p.record_access(CoreId(1), SetIdx(0), AccessOutcome::Miss);
        }
        assert_eq!(p.role(CoreId(0), SetIdx(0)), SetRole::Spiller);
        assert_eq!(
            p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()),
            SpillDecision::NoCandidate
        );
        assert!(
            p.in_capacity_mode(CoreId(0), SetIdx(5)),
            "global counter: every set"
        );
        assert_ne!(p.demand_insert_pos(CoreId(0), SetIdx(0)), InsertPos::Mru);
        p.assert_ab_consistent();
    }

    #[test]
    fn spills_to_the_lower_ssl_peer() {
        let mut p = quick(3).build();
        for _ in 0..200 {
            p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        }
        for _ in 0..10 {
            p.record_access(
                CoreId(2),
                SetIdx(0),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        // Cache 1 sits at K-1; cache 2 is lower.
        match p.spill_decision(CoreId(0), SetIdx(0), SpillVictim::default()) {
            SpillDecision::Spill(c) => assert_eq!(c, CoreId(2)),
            d => panic!("expected spill, got {d:?}"),
        }
    }

    #[test]
    fn qos_ratio_drops_when_avgcc_miss_count_exceeds_estimate() {
        let mut cfg = AvgccConfig::qos_avgcc(1, SETS, K);
        cfg.qos_epoch_cycles = 100;
        let mut p = cfg.build();
        assert_eq!(p.name(), "QoS-AVGCC");
        assert!((p.qos_ratio(CoreId(0)) - 1.0).abs() < 1e-9);
        // Misses taken while the counter looks like a receiver (SSL < K) are
        // *not* sampled — they are misses the baseline estimator does not
        // see. Oscillate miss/hit so every miss lands below K.
        for _ in 0..50 {
            p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
            p.record_access(
                CoreId(0),
                SetIdx(0),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        // Leave the counter at K in MRU mode so it *is* sampled at the
        // epoch, with zero sampled misses against 51 total misses.
        p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        p.on_cycle(CoreId(0), 1_000);
        // MBC = 16 * 0/16 = 0 << MissesWithAVGCC = 51 -> ratio collapses.
        let r = p.qos_ratio(CoreId(0));
        assert!(r < 1.0, "ratio should drop, got {r}");
        // With the ratio at 0, further misses leave the SSL untouched: the
        // mechanism is inhibited (no spilling can start).
        let v0 = p.caches[0].ssl.value(0);
        p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        assert_eq!(p.caches[0].ssl.value(0), v0);
    }

    #[test]
    fn qos_ratio_recovers() {
        let mut cfg = AvgccConfig::qos_avgcc(1, SETS, K);
        cfg.qos_epoch_cycles = 100;
        let mut p = cfg.build();
        for _ in 0..50 {
            p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        }
        p.on_cycle(CoreId(0), 1_000);
        let low = p.qos_ratio(CoreId(0));
        // A quiet epoch with no misses resets to 1.0.
        p.on_cycle(CoreId(0), 2_000);
        assert!((p.qos_ratio(CoreId(0)) - 1.0).abs() < 1e-9, "was {low}");
    }

    #[test]
    fn snapshot_and_events_track_adaptation() {
        let mut p = quick(2).build();
        p.set_observed(true);
        // All hits: spare capacity refines the granularity.
        for i in 0..200u32 {
            p.record_access(
                CoreId(0),
                SetIdx(i % SETS),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        let mut events = Vec::new();
        p.drain_events(&mut events);
        let regrans: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, ObsEvent::Regranularized { .. }))
            .collect();
        assert!(!regrans.is_empty(), "refinement must emit events");
        if let ObsEvent::Regranularized {
            core,
            granularity_log2,
            counters,
        } = regrans[0]
        {
            assert_eq!(*core, CoreId(0));
            assert!(*granularity_log2 < 4);
            assert!(*counters > 1);
        }

        let snap = p.snapshot();
        assert_eq!(snap.policy, "AVGCC");
        assert_eq!(snap.granularity_changes, Some(p.granularity_changes()));
        assert_eq!(snap.ab_consistent, Some(true));
        let c0 = &snap.per_core[0];
        assert_eq!(c0.granularity_log2, Some(p.granularity_log2(CoreId(0))));
        assert_eq!(c0.counters_in_use, Some(p.counters_in_use(CoreId(0))));
        assert_eq!(c0.roles.unwrap().total(), SETS);
        assert!(c0.qos_ratio.is_none(), "plain AVGCC has no QoS ratio");
    }

    #[test]
    fn qos_snapshot_and_ratio_events() {
        let mut cfg = AvgccConfig::qos_avgcc(1, SETS, K);
        cfg.qos_epoch_cycles = 100;
        let mut p = cfg.build();
        p.set_observed(true);
        for _ in 0..50 {
            p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
            p.record_access(
                CoreId(0),
                SetIdx(0),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            );
        }
        p.record_access(CoreId(0), SetIdx(0), AccessOutcome::Miss);
        p.on_cycle(CoreId(0), 1_000);
        let mut events = Vec::new();
        p.drain_events(&mut events);
        let ratios: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::QosRatioUpdate { ratio, .. } => Some(*ratio),
                _ => None,
            })
            .collect();
        assert_eq!(ratios.len(), 1);
        assert!(ratios[0] < 1.0);
        let snap = p.snapshot();
        assert_eq!(snap.policy, "QoS-AVGCC");
        assert_eq!(snap.per_core[0].qos_ratio, Some(ratios[0]));
    }

    #[test]
    fn different_caches_adapt_independently() {
        let mut p = quick(2).build();
        for i in 0..2_000u32 {
            p.record_access(
                CoreId(0),
                SetIdx(i % SETS),
                AccessOutcome::Hit {
                    spilled: false,
                    depth: 0,
                },
            ); // spare
            p.record_access(CoreId(1), SetIdx(i % SETS), AccessOutcome::Miss); // pressured
        }
        assert!(p.counters_in_use(CoreId(0)) > p.counters_in_use(CoreId(1)));
        assert!(p.granularity_changes() > 0);
    }
}
