//! Long-horizon behavioural properties of AVGCC under randomized traffic.

use ascc::{AvgccConfig, SetRole};
use cmp_cache::{AccessOutcome, CoreId, LlcPolicy, SetIdx, SpillDecision, SpillVictim};
use proptest::prelude::*;

const SETS: u32 = 64;
const WAYS: u16 = 8;

fn drive(policy: &mut ascc::AvgccPolicy, ops: &[(u8, u32, bool)], cores: usize) {
    for &(core, set, hit) in ops {
        let core = CoreId(core % cores as u8);
        let set = SetIdx(set % SETS);
        let outcome = if hit {
            AccessOutcome::Hit {
                spilled: false,
                depth: 0,
            }
        } else {
            AccessOutcome::Miss
        };
        policy.record_access(core, set, outcome);
        // Exercise the spill path as the simulator would.
        let _ = policy.spill_decision(core, set, SpillVictim::default());
        policy.on_cycle(core, (set.0 as u64) << 8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn granularity_always_within_bounds(
        ops in prop::collection::vec((0u8..4, 0u32..SETS, prop::bool::ANY), 1..3000),
        max_counters in prop_oneof![Just(None), Just(Some(4u32)), Just(Some(16u32))],
    ) {
        let mut cfg = AvgccConfig::avgcc(3, SETS, WAYS);
        cfg.epoch_accesses = 32;
        if let Some(mc) = max_counters {
            cfg = cfg.with_max_counters(mc);
        }
        let mut p = cfg.build();
        drive(&mut p, &ops, 3);
        for c in 0..3u8 {
            let in_use = p.counters_in_use(CoreId(c));
            let d = p.granularity_log2(CoreId(c));
            prop_assert_eq!(in_use, SETS >> d, "counters must equal sets >> D");
            prop_assert!(in_use >= 1);
            if let Some(mc) = max_counters {
                prop_assert!(in_use <= mc, "counter cap violated: {in_use} > {mc}");
            } else {
                prop_assert!(in_use <= SETS);
            }
        }
        p.assert_ab_consistent();
    }

    #[test]
    fn spill_decisions_match_roles(
        ops in prop::collection::vec((0u8..2, 0u32..SETS, prop::bool::ANY), 1..1500),
    ) {
        let mut cfg = AvgccConfig::avgcc(2, SETS, WAYS);
        cfg.epoch_accesses = 64;
        let mut p = cfg.build();
        drive(&mut p, &ops, 2);
        for core in 0..2u8 {
            for set in 0..SETS {
                let d = p.spill_decision(CoreId(core), SetIdx(set), SpillVictim::default());
                match d {
                    SpillDecision::NotSpiller => {
                        prop_assert_ne!(p.role(CoreId(core), SetIdx(set)), SetRole::Spiller);
                    }
                    SpillDecision::Spill(to) => {
                        prop_assert_ne!(to, CoreId(core));
                        prop_assert_eq!(p.role(CoreId(core), SetIdx(set)), SetRole::Spiller);
                        prop_assert_eq!(p.role(to, SetIdx(set)), SetRole::Receiver);
                    }
                    SpillDecision::NoCandidate => {
                        prop_assert_eq!(p.role(CoreId(core), SetIdx(set)), SetRole::Spiller);
                        // Capacity reaction: the set is now in SABIP mode.
                        prop_assert!(p.in_capacity_mode(CoreId(core), SetIdx(set)));
                    }
                }
            }
        }
    }

    #[test]
    fn qos_ratio_stays_in_unit_range(
        ops in prop::collection::vec((0u8..2, 0u32..SETS, prop::bool::ANY), 1..2000),
    ) {
        let mut cfg = AvgccConfig::qos_avgcc(2, SETS, WAYS);
        cfg.epoch_accesses = 64;
        cfg.qos_epoch_cycles = 500;
        let mut p = cfg.build();
        let mut clock = 0u64;
        for &(core, set, hit) in &ops {
            let core = CoreId(core % 2);
            let set = SetIdx(set % SETS);
            let outcome = if hit {
                AccessOutcome::Hit { spilled: false, depth: 0 }
            } else {
                AccessOutcome::Miss
            };
            p.record_access(core, set, outcome);
            clock += 97;
            p.on_cycle(core, clock);
            let r = p.qos_ratio(core);
            prop_assert!((0.0..=1.0).contains(&r), "ratio {r} out of range");
        }
        p.assert_ab_consistent();
    }
}
