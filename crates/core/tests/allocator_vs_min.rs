//! The hardware Spill Allocator (§3.1) against the exact minimum search:
//! when every counter update is a miss (all updates observable on the
//! broadcast network), the allocator's candidate must be *value-equivalent*
//! to the exact minimum; with hits in the stream it may go stale, but only
//! ever conservatively (a stale candidate still satisfied `SSL < K` at its
//! last observation).

use ascc::{AsccConfig, AsccPolicy};
use cmp_cache::{AccessOutcome, CoreId, LlcPolicy, SetIdx, SpillDecision, SpillVictim};
use proptest::prelude::*;

const CORES: usize = 4;
const SETS: u32 = 16;
const WAYS: u16 = 4;

fn pair() -> (AsccPolicy, AsccPolicy) {
    let exact = AsccConfig::ascc(CORES, SETS, WAYS).build();
    let mut acfg = AsccConfig::ascc(CORES, SETS, WAYS);
    acfg.use_spill_allocator = true;
    (exact, acfg.build())
}

proptest! {
    #[test]
    fn miss_only_streams_give_value_equivalent_candidates(
        misses in prop::collection::vec((0u8..CORES as u8, 0u32..SETS), 1..300),
    ) {
        let (mut exact, mut alloc) = pair();
        for &(core, set) in &misses {
            exact.record_access(CoreId(core), SetIdx(set), AccessOutcome::Miss);
            alloc.record_access(CoreId(core), SetIdx(set), AccessOutcome::Miss);
        }
        for &(core, set) in &misses {
            let e = exact.spill_decision(CoreId(core), SetIdx(set), SpillVictim::default());
            let a = alloc.spill_decision(CoreId(core), SetIdx(set), SpillVictim::default());
            match (e, a) {
                (SpillDecision::Spill(ej), SpillDecision::Spill(aj)) => {
                    // Possibly different caches, but equally good ones —
                    // modulo the allocator not observing the *first* miss
                    // of a candidate it already tracks at an equal value.
                    let ev = exact.ssl_value(ej, SetIdx(set));
                    let av = exact.ssl_value(aj, SetIdx(set));
                    prop_assert!(av <= ev + ascc::SslTable::ONE,
                        "allocator candidate {aj} (v={av}) much worse than exact {ej} (v={ev})");
                }
                // The allocator may lack a candidate the exact search sees
                // (it never observed that cache missing in this set), but
                // never the other way around.
                (SpillDecision::NoCandidate, SpillDecision::NoCandidate)
                | (SpillDecision::NotSpiller, SpillDecision::NotSpiller)
                | (SpillDecision::Spill(_), SpillDecision::NoCandidate) => {}
                other => prop_assert!(false, "inconsistent decisions {other:?}"),
            }
        }
    }

    #[test]
    fn allocator_candidates_always_looked_valid(
        ops in prop::collection::vec(
            ((0u8..CORES as u8), (0u32..SETS), prop::bool::ANY),
            1..400,
        ),
    ) {
        let (_, mut alloc) = pair();
        for &(core, set, hit) in &ops {
            let outcome = if hit {
                AccessOutcome::Hit { spilled: false, depth: 0 }
            } else {
                AccessOutcome::Miss
            };
            alloc.record_access(CoreId(core), SetIdx(set), outcome);
        }
        // Whatever the allocator proposes must at least be a peer.
        for core in 0..CORES as u8 {
            for set in 0..SETS {
                if let SpillDecision::Spill(j) =
                    alloc.spill_decision(CoreId(core), SetIdx(set), SpillVictim::default())
                {
                    prop_assert_ne!(j, CoreId(core), "never spill to self");
                }
            }
        }
    }
}
