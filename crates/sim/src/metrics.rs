//! Run results and the paper's evaluation metrics.
//!
//! §6: performance is the **weighted speedup** (sum of per-application IPC
//! normalised to the application running alone), fairness is the **harmonic
//! mean** of the normalised IPCs, and §6.2 analyses the **average memory
//! latency** assuming sequential (non-overlapped) accesses, broken down by
//! where L2 accesses are served (local L2, remote L2, memory).
//!
//! The private-LLC baseline isolates co-scheduled applications, so a
//! baseline multiprogrammed run doubles as the "alone" run used for
//! normalisation.

/// Per-core measurement of one simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct CoreResult {
    /// Workload label (e.g. `"473.astar"`).
    pub label: String,
    /// Instructions committed in the measured window.
    pub instrs: u64,
    /// Cycles elapsed in the measured window.
    pub cycles: f64,
    /// L2 accesses (L1 misses plus store write-throughs).
    pub l2_accesses: u64,
    /// L2 accesses served by the local L2.
    pub l2_local_hits: u64,
    /// L2 accesses served by a peer L2 (cache-to-cache transfer).
    pub l2_remote_hits: u64,
    /// L2 accesses served by main memory.
    pub l2_mem: u64,
    /// Demand + prefetch lines fetched from memory.
    pub offchip_fetches: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// L1 accesses.
    pub l1_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
}

impl CoreResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        self.cycles / self.instrs.max(1) as f64
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instrs as f64 / self.cycles.max(1.0)
    }

    /// L2 misses (remote hits count as misses of the local L2, matching the
    /// paper's L2 MPKI which is per private cache).
    pub fn l2_misses(&self) -> u64 {
        self.l2_remote_hits + self.l2_mem
    }

    /// L2 misses per 1000 instructions.
    pub fn l2_mpki(&self) -> f64 {
        self.l2_misses() as f64 * 1000.0 / self.instrs.max(1) as f64
    }

    /// Off-chip accesses (fetches + writebacks), the Table 4 metric.
    pub fn offchip_accesses(&self) -> u64 {
        self.offchip_fetches + self.writebacks
    }
}

/// Outcome of one multiprogrammed simulation run.
#[derive(Clone, PartialEq, Debug)]
pub struct RunResult {
    /// Name of the LLC policy that produced this run.
    pub policy: String,
    /// Per-core results, in core order.
    pub cores: Vec<CoreResult>,
    /// Lines spilled between caches.
    pub spills: u64,
    /// Requested/victim swaps performed (§3.2).
    pub swaps: u64,
    /// Hits (local or remote) on lines that had been spilled.
    pub spill_hits: u64,
}

impl RunResult {
    /// Total off-chip accesses across cores.
    pub fn offchip_accesses(&self) -> u64 {
        self.cores.iter().map(|c| c.offchip_accesses()).sum()
    }

    /// Hits per spilled line (§6.4); 0 when nothing was spilled.
    pub fn hits_per_spill(&self) -> f64 {
        if self.spills == 0 {
            0.0
        } else {
            self.spill_hits as f64 / self.spills as f64
        }
    }

    /// Average memory latency over L2 accesses, sequential assumption
    /// (§6.2), for the given latencies.
    pub fn aml(&self, lat_local: u32, lat_remote: u32, lat_mem: u32) -> f64 {
        let mut num = 0.0;
        let mut den = 0u64;
        for c in &self.cores {
            num += c.l2_local_hits as f64 * lat_local as f64
                + c.l2_remote_hits as f64 * lat_remote as f64
                + c.l2_mem as f64 * lat_mem as f64;
            den += c.l2_accesses;
        }
        if den == 0 {
            0.0
        } else {
            num / den as f64
        }
    }

    /// Fractions of L2 accesses served locally / remotely / by memory.
    pub fn access_breakdown(&self) -> (f64, f64, f64) {
        let total: u64 = self.cores.iter().map(|c| c.l2_accesses).sum();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let local: u64 = self.cores.iter().map(|c| c.l2_local_hits).sum();
        let remote: u64 = self.cores.iter().map(|c| c.l2_remote_hits).sum();
        let mem: u64 = self.cores.iter().map(|c| c.l2_mem).sum();
        (
            local as f64 / total as f64,
            remote as f64 / total as f64,
            mem as f64 / total as f64,
        )
    }
}

/// Weighted-speedup improvement of `run` over `base`:
/// `(Σ IPC_run,i / IPC_base,i) / N - 1` (§6.1).
///
/// The private baseline isolates applications, so its multiprogrammed run
/// doubles as the "alone" run the weighted speedup normalises against.
///
/// # Panics
///
/// Panics if the runs have different core counts.
pub fn weighted_speedup_improvement(run: &RunResult, base: &RunResult) -> f64 {
    assert_eq!(run.cores.len(), base.cores.len(), "core count mismatch");
    let n = run.cores.len() as f64;
    let sum: f64 = run
        .cores
        .iter()
        .zip(&base.cores)
        .map(|(r, b)| r.ipc() / b.ipc())
        .sum();
    sum / n - 1.0
}

/// Fairness improvement of `run` over `base`: the harmonic mean of the
/// normalised IPCs, minus 1 (§6.1, after Luo et al.).
///
/// # Panics
///
/// Panics if the runs have different core counts.
pub fn fairness_improvement(run: &RunResult, base: &RunResult) -> f64 {
    assert_eq!(run.cores.len(), base.cores.len(), "core count mismatch");
    let n = run.cores.len() as f64;
    let inv_sum: f64 = run
        .cores
        .iter()
        .zip(&base.cores)
        .map(|(r, b)| b.ipc() / r.ipc())
        .sum();
    n / inv_sum - 1.0
}

/// Geometric mean of `1 + x` over the slice, minus 1 — how the paper
/// aggregates per-workload improvement percentages into its "geomean"
/// columns.
///
/// # Examples
///
/// ```
/// use cmp_sim::geomean_improvement;
/// let g = geomean_improvement(&[0.10, 0.10]);
/// assert!((g - 0.10).abs() < 1e-12);
/// ```
pub fn geomean_improvement(improvements: &[f64]) -> f64 {
    if improvements.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = improvements.iter().map(|&x| (1.0 + x).max(1e-9).ln()).sum();
    (log_sum / improvements.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(label: &str, instrs: u64, cycles: f64) -> CoreResult {
        CoreResult {
            label: label.to_string(),
            instrs,
            cycles,
            l2_accesses: 100,
            l2_local_hits: 60,
            l2_remote_hits: 10,
            l2_mem: 30,
            offchip_fetches: 30,
            writebacks: 5,
            l1_accesses: 1000,
            l1_hits: 900,
        }
    }

    fn run(policy: &str, cpis: &[f64]) -> RunResult {
        RunResult {
            policy: policy.to_string(),
            cores: cpis
                .iter()
                .enumerate()
                .map(|(i, &cpi)| core(&format!("b{i}"), 1_000_000, cpi * 1_000_000.0))
                .collect(),
            spills: 10,
            swaps: 1,
            spill_hits: 5,
        }
    }

    #[test]
    fn cpi_ipc_mpki() {
        let c = core("x", 1000, 2000.0);
        assert!((c.cpi() - 2.0).abs() < 1e-12);
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert_eq!(c.l2_misses(), 40);
        assert!((c.l2_mpki() - 40.0).abs() < 1e-12);
        assert_eq!(c.offchip_accesses(), 35);
    }

    #[test]
    fn identical_runs_have_zero_improvement() {
        let a = run("base", &[1.0, 2.0]);
        let b = run("base", &[1.0, 2.0]);
        assert!(weighted_speedup_improvement(&a, &b).abs() < 1e-12);
        assert!(fairness_improvement(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn faster_run_improves() {
        let base = run("base", &[2.0, 2.0]);
        let fast = run("p", &[1.0, 2.0]); // core 0 twice as fast
        let ws = weighted_speedup_improvement(&fast, &base);
        assert!((ws - 0.5).abs() < 1e-12, "ws {ws}");
        // Harmonic mean rewards balance less: improvement below arithmetic.
        let f = fairness_improvement(&fast, &base);
        assert!(f > 0.0 && f < ws, "fairness {f} vs ws {ws}");
    }

    #[test]
    fn slowdowns_show_as_negative() {
        let base = run("base", &[1.0]);
        let slow = run("p", &[2.0]);
        assert!(weighted_speedup_improvement(&slow, &base) < 0.0);
        assert!(fairness_improvement(&slow, &base) < 0.0);
    }

    #[test]
    fn aml_weights_latencies() {
        let r = run("p", &[1.0]);
        // 60*9 + 10*25 + 30*460 = 540 + 250 + 13800 = 14590 over 100.
        assert!((r.aml(9, 25, 460) - 145.9).abs() < 1e-9);
        let (l, rm, m) = r.access_breakdown();
        assert!((l - 0.6).abs() < 1e-12);
        assert!((rm - 0.1).abs() < 1e-12);
        assert!((m - 0.3).abs() < 1e-12);
    }

    #[test]
    fn hits_per_spill() {
        let r = run("p", &[1.0]);
        assert!((r.hits_per_spill() - 0.5).abs() < 1e-12);
        let mut r2 = r.clone();
        r2.spills = 0;
        assert_eq!(r2.hits_per_spill(), 0.0);
    }

    #[test]
    fn geomean_of_improvements() {
        assert_eq!(geomean_improvement(&[]), 0.0);
        let g = geomean_improvement(&[0.1, 0.1]);
        assert!((g - 0.1).abs() < 1e-9);
        // Mixes of gains and losses.
        let g = geomean_improvement(&[0.5, -0.25]);
        assert!((g - ((1.5f64 * 0.75).sqrt() - 1.0)).abs() < 1e-12);
    }
}
